"""Quality measures of explanation summaries (Figures 8, 9, 21)."""

from __future__ import annotations

from repro.core.patterns import ExplanationSummary


def coverage_of(summary: ExplanationSummary) -> float:
    """Fraction of the view's groups covered by the summary."""
    return summary.coverage


def total_explainability_of(summary: ExplanationSummary) -> float:
    """The optimisation objective value achieved by the summary."""
    return summary.total_explainability


def summary_quality(summary: ExplanationSummary) -> dict:
    """A dictionary of the quality measures reported across the evaluation."""
    return {
        "n_patterns": len(summary),
        "n_candidates": summary.n_candidates,
        "coverage": summary.coverage,
        "total_explainability": summary.total_explainability,
        "satisfies_constraints": summary.satisfies_constraints(),
        "feasible": summary.feasible,
        "runtime_grouping": summary.timings.get("grouping_patterns", 0.0),
        "runtime_treatments": summary.timings.get("treatment_patterns", 0.0),
        "runtime_selection": summary.timings.get("selection", 0.0),
        "runtime_total": sum(summary.timings.values()),
    }
