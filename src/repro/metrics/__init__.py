"""Evaluation metrics: coverage, explainability, mining accuracy, rank agreement."""

from repro.metrics.quality import summary_quality, coverage_of, total_explainability_of
from repro.metrics.accuracy import (
    tuple_set_precision_recall,
    grouping_accuracy,
    treatment_accuracy,
)
from repro.metrics.ranking import kendall_tau, top_k_overlap

__all__ = [
    "summary_quality",
    "coverage_of",
    "total_explainability_of",
    "tuple_set_precision_recall",
    "grouping_accuracy",
    "treatment_accuracy",
    "kendall_tau",
    "top_k_overlap",
]
