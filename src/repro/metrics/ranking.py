"""Rank-agreement metrics (Kendall's tau) used in Figures 15/22 and 16/23."""

from __future__ import annotations

from typing import Hashable, Sequence

from scipy import stats


def kendall_tau(reference_scores: dict, other_scores: dict) -> float:
    """Kendall's tau between two scorings of the same items.

    Items present in only one of the dictionaries are ignored.  Returns 1.0 for
    fewer than two shared items (nothing to disagree about).
    """
    shared = sorted(set(reference_scores) & set(other_scores), key=repr)
    if len(shared) < 2:
        return 1.0
    a = [reference_scores[item] for item in shared]
    b = [other_scores[item] for item in shared]
    tau, _ = stats.kendalltau(a, b)
    if tau != tau:  # nan when one list is constant
        return 0.0
    return float(tau)


def top_k_overlap(reference_ranking: Sequence[Hashable],
                  other_ranking: Sequence[Hashable], k: int) -> float:
    """Fraction of the reference's top-k items present in the other's top-k."""
    if k <= 0:
        raise ValueError("k must be positive")
    top_ref = set(list(reference_ranking)[:k])
    top_other = set(list(other_ranking)[:k])
    if not top_ref:
        return 1.0
    return len(top_ref & top_other) / len(top_ref)
