"""Precision / recall of the mining stages against Brute-Force (Figure 10).

Both metrics compare *tuple sets*: for grouping patterns, the tuples covered by
the patterns selected by each algorithm; for treatment patterns, the tuples
assigned to the treated group by each algorithm.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.dataframe import Pattern, Table


def tuple_set_precision_recall(predicted: Iterable[int], truth: Iterable[int]
                               ) -> tuple[float, float]:
    """Precision and recall of a predicted tuple-index set against a ground-truth set."""
    predicted = set(predicted)
    truth = set(truth)
    if not predicted and not truth:
        return 1.0, 1.0
    intersection = len(predicted & truth)
    precision = intersection / len(predicted) if predicted else 0.0
    recall = intersection / len(truth) if truth else 1.0
    return precision, recall


def _covered_tuples(table: Table, patterns: Sequence[Pattern]) -> set[int]:
    covered: set[int] = set()
    for pattern in patterns:
        covered |= set(np.nonzero(pattern.evaluate(table))[0].tolist())
    return covered


def grouping_accuracy(table: Table, predicted_patterns: Sequence[Pattern],
                      truth_patterns: Sequence[Pattern]) -> dict:
    """Precision/recall of tuples covered by mined vs Brute-Force grouping patterns."""
    precision, recall = tuple_set_precision_recall(
        _covered_tuples(table, predicted_patterns),
        _covered_tuples(table, truth_patterns),
    )
    return {"precision": precision, "recall": recall}


def treatment_accuracy(table: Table, predicted_treatments: Sequence[Pattern],
                       truth_treatments: Sequence[Pattern]) -> dict:
    """Average precision/recall of treated-tuple sets across pattern pairs.

    The i-th predicted treatment is compared against the i-th ground-truth
    treatment (both lists correspond to the same grouping patterns).
    """
    if len(predicted_treatments) != len(truth_treatments):
        raise ValueError("treatment lists must have equal length")
    if not predicted_treatments:
        return {"precision": 1.0, "recall": 1.0}
    precisions, recalls = [], []
    for predicted, truth in zip(predicted_treatments, truth_treatments):
        p, r = tuple_set_precision_recall(
            set(np.nonzero(predicted.evaluate(table))[0].tolist()),
            set(np.nonzero(truth.evaluate(table))[0].tolist()),
        )
        precisions.append(p)
        recalls.append(r)
    return {"precision": float(np.mean(precisions)), "recall": float(np.mean(recalls))}
