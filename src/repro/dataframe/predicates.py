"""Simple predicates and conjunctive patterns over tables (Definition 4.1)."""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np


class Op(str, enum.Enum):
    """Comparison operators allowed in simple predicates."""

    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    @classmethod
    def parse(cls, text: str) -> "Op":
        text = text.strip()
        aliases = {"=": cls.EQ, "==": cls.EQ, "!=": cls.NE, "<>": cls.NE,
                   "<": cls.LT, ">": cls.GT, "<=": cls.LE, ">=": cls.GE}
        if text not in aliases:
            raise ValueError(f"unknown operator {text!r}")
        return aliases[text]


class Predicate:
    """A simple predicate ``attribute op value``."""

    __slots__ = ("attribute", "op", "value")

    def __init__(self, attribute: str, op: Op | str, value):
        self.attribute = attribute
        self.op = op if isinstance(op, Op) else Op.parse(op)
        self.value = value

    # ------------------------------------------------------------------ dunder

    def __repr__(self) -> str:
        return f"{self.attribute} {self.op.value} {self.value!r}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return (self.attribute, self.op, self.value) == (
            other.attribute, other.op, other.value)

    def __hash__(self) -> int:
        return hash((self.attribute, self.op, self.value))

    def __lt__(self, other: "Predicate") -> bool:
        return (self.attribute, self.op.value, repr(self.value)) < (
            other.attribute, other.op.value, repr(other.value))

    # ------------------------------------------------------------------ eval

    def evaluate(self, table) -> np.ndarray:
        """Return a boolean mask of rows of ``table`` satisfying this predicate.

        Missing values never satisfy a predicate.  Both column kinds evaluate
        as pure numpy kernels: numeric columns compare the float storage
        directly; categorical columns compare dictionary codes — equality is a
        single ``codes == code`` comparison, and ordered operators evaluate
        once per *vocabulary entry* (not per row) and fancy-index the result.
        """
        column = table.column(self.attribute)
        if column.numeric:
            return self._evaluate_values(column.values)
        return self._evaluate_codes(column.codes, column)

    def evaluate_at(self, table, indices: np.ndarray) -> np.ndarray:
        """Evaluate over a candidate subset: ``evaluate(table)[indices]``.

        The short-circuit scan executor (:mod:`repro.plan.execute`) calls
        this for every conjunct after the first, so a selective leading
        predicate shrinks the kernel work of everything behind it.  The
        kernels are the same as :meth:`evaluate`, applied to the fancy-indexed
        storage — the result is exactly the full mask restricted to
        ``indices``.
        """
        column = table.column(self.attribute)
        if column.numeric:
            return self._evaluate_values(column.values[indices])
        return self._evaluate_codes(column.codes[indices], column)

    def _evaluate_values(self, values: np.ndarray) -> np.ndarray:
        target = float(self.value)
        valid = ~np.isnan(values)
        with np.errstate(invalid="ignore"):
            comparison = _numeric_compare(values, self.op, target)
        return comparison & valid

    def _evaluate_codes(self, codes: np.ndarray, column) -> np.ndarray:
        if self.op is Op.EQ:
            code = column.vocab_code(self.value)
            if code is None:  # value absent from the vocabulary: nothing matches
                return np.zeros(len(codes), dtype=bool)
            return codes == code
        if self.op is Op.NE:
            code = column.vocab_code(self.value)
            valid = codes >= 0
            if code is None:  # every non-missing value differs
                return valid
            return (codes != code) & valid
        # Ordered comparison: decide once per *present* vocabulary value, then
        # broadcast to rows through the code array.  Only present values are
        # compared so a sliced column whose inherited parent vocabulary holds
        # un-orderable absent values behaves like the per-row evaluation did.
        # The sentinel slot stays False so missing values never match.
        vocab = column.vocab
        satisfied = np.zeros(len(vocab) + 1, dtype=bool)
        for code in np.unique(codes):
            if code >= 0:
                satisfied[code] = _ordered_compare(vocab[code], self.op, self.value)
        return satisfied[codes]

    def evaluate_value(self, value) -> bool:
        """Evaluate the predicate against a single scalar value.

        Booleans follow the numeric path, matching column storage: a column of
        ``bool`` values is numeric (``True``/``False`` stored as 1.0/0.0), so
        scalar evaluation compares them as floats too and
        ``evaluate_value(row[a])`` always agrees with ``evaluate(table)``.
        """
        if value is None:
            return False
        if isinstance(value, float) and np.isnan(value):
            return False
        if isinstance(value, (bool, int, float, np.integer, np.floating)):
            try:
                target = float(self.value)
            except (TypeError, ValueError):
                # Non-numeric target: a numeric-kind scalar can only live in a
                # mixed-type categorical column, where the column kernel
                # compares by generic equality — do the same here.
                pass
            else:
                return bool(_numeric_compare(np.asarray([float(value)]),
                                             self.op, target)[0])
        if self.op is Op.EQ:
            return value == self.value
        if self.op is Op.NE:
            return value != self.value
        return _ordered_compare(value, self.op, self.value)


class Pattern:
    """A conjunction of simple predicates (Definition 4.1).

    The empty pattern is allowed and matches every tuple.
    """

    __slots__ = ("predicates",)

    def __init__(self, predicates: Iterable[Predicate] = ()):
        preds = tuple(sorted(predicates))
        seen = set()
        unique = []
        for p in preds:
            if p not in seen:
                seen.add(p)
                unique.append(p)
        self.predicates = tuple(unique)

    # ------------------------------------------------------------------ construction

    @classmethod
    def of(cls, *specs) -> "Pattern":
        """Build a pattern from ``(attribute, op, value)`` triples or Predicates."""
        preds = []
        for spec in specs:
            if isinstance(spec, Predicate):
                preds.append(spec)
            else:
                attribute, op, value = spec
                preds.append(Predicate(attribute, op, value))
        return cls(preds)

    @classmethod
    def equalities(cls, assignment: dict) -> "Pattern":
        """Build a conjunctive equality pattern from ``{attribute: value}``."""
        return cls(Predicate(a, Op.EQ, v) for a, v in sorted(assignment.items()))

    def extend(self, predicate: Predicate) -> "Pattern":
        return Pattern(self.predicates + (predicate,))

    # ------------------------------------------------------------------ dunder

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self):
        return iter(self.predicates)

    def __bool__(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.predicates == other.predicates

    def __hash__(self) -> int:
        return hash(self.predicates)

    def __repr__(self) -> str:
        if not self.predicates:
            return "Pattern(TRUE)"
        return " AND ".join(repr(p) for p in self.predicates)

    # ------------------------------------------------------------------ properties

    @property
    def attributes(self) -> tuple:
        """Attributes mentioned by the pattern, in sorted order."""
        return tuple(sorted({p.attribute for p in self.predicates}))

    def is_empty(self) -> bool:
        return not self.predicates

    # ------------------------------------------------------------------ eval

    def evaluate(self, table) -> np.ndarray:
        """Boolean mask of rows satisfying every predicate of the conjunction."""
        mask = np.ones(table.n_rows, dtype=bool)
        for predicate in self.predicates:
            mask &= predicate.evaluate(table)
        return mask

    def evaluate_row(self, row: dict) -> bool:
        """Evaluate against a single row given as ``{attribute: value}``."""
        return all(p.evaluate_value(row.get(p.attribute)) for p in self.predicates)

    def support(self, table) -> int:
        """Number of tuples of ``table`` satisfying the pattern."""
        return int(self.evaluate(table).sum())

    def conflicts_with(self, other: "Pattern") -> bool:
        """True if two equality patterns assign different values to an attribute."""
        mine = {p.attribute: p.value for p in self.predicates if p.op is Op.EQ}
        for p in other.predicates:
            if p.op is Op.EQ and p.attribute in mine and mine[p.attribute] != p.value:
                return True
        return False


def _numeric_compare(values: np.ndarray, op: Op, target: float) -> np.ndarray:
    if op is Op.EQ:
        return values == target
    if op is Op.NE:
        return values != target
    if op is Op.LT:
        return values < target
    if op is Op.GT:
        return values > target
    if op is Op.LE:
        return values <= target
    return values >= target


def _ordered_compare(value, op: Op, target) -> bool:
    if op is Op.LT:
        return value < target
    if op is Op.GT:
        return value > target
    if op is Op.LE:
        return value <= target
    if op is Op.GE:
        return value >= target
    raise ValueError(f"unsupported ordered comparison {op}")
