"""Design-matrix encoding of table attributes for regression-based estimators.

Categorical attributes are one-hot encoded straight from their dictionary
codes: the indicator column of each row is found by fancy-indexing a
``vocab code -> matrix column`` lookup table, so no per-row dictionary lookups
run.  ``CATEEstimator`` binds sub-populations through these kernels, which
makes design-matrix construction vectorized end-to-end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataframe.table import Table


def one_hot(table: Table, attribute: str, drop_first: bool = True) -> tuple[np.ndarray, list[str]]:
    """One-hot encode an attribute.

    Returns the encoded matrix and the generated feature names.  With
    ``drop_first`` the first category is used as the reference level to avoid
    perfect collinearity in regressions.  Categories are the values *present*
    in the column (in sorted/vocabulary order), so sliced tables produce the
    same layout the row-at-a-time encoder did.
    """
    column = table.column(attribute)
    categories = column.unique()
    if drop_first and len(categories) > 1:
        categories = categories[1:]
    matrix = np.zeros((table.n_rows, len(categories)), dtype=np.float64)
    names = [f"{attribute}={c}" for c in categories]
    _one_hot_into(column, categories, matrix)
    return matrix, names


def _one_hot_into(column, categories: list, out: np.ndarray) -> None:
    """Write one-hot indicator columns for ``categories`` into ``out`` in place."""
    if not categories:
        return
    if column.numeric:
        # Exact-match indicators against the sorted category values.
        cats = np.asarray(categories, dtype=np.float64)
        values = column.values
        with np.errstate(invalid="ignore"):
            positions = np.searchsorted(cats, values)
        positions = np.clip(positions, 0, len(cats) - 1)
        rows = np.flatnonzero(values == cats[positions])
        out[rows, positions[rows]] = 1.0
        return
    # Map vocab codes to matrix columns; unselected codes (reference level)
    # and the missing sentinel (-1, wrapping to the extra last slot) stay -1.
    lookup = np.full(len(column.vocab) + 1, -1, dtype=np.int64)
    for j, category in enumerate(categories):
        lookup[column.vocab_code(category)] = j
    positions = lookup[column.codes]
    rows = np.flatnonzero(positions >= 0)
    out[rows, positions[rows]] = 1.0


def design_matrix(table: Table, attributes: Sequence[str], drop_first: bool = True,
                  add_intercept: bool = False) -> tuple[np.ndarray, list[str]]:
    """Build a regression design matrix from a mix of numeric/categorical attributes.

    Numeric attributes are passed through (missing values imputed with the
    column mean); categorical attributes are one-hot encoded from their
    dictionary codes.  The output matrix is allocated once and every block is
    written into it in place — no intermediate block list or ``hstack`` copy.
    """
    n_rows = table.n_rows
    plan: list[tuple] = []  # (column, categories-or-None)
    names: list[str] = []
    width = 0
    if add_intercept:
        plan.append((None, None))
        names.append("intercept")
        width += 1
    for attribute in attributes:
        column = table.column(attribute)
        if column.numeric:
            plan.append((column, None))
            names.append(attribute)
            width += 1
        else:
            categories = column.unique()
            if drop_first and len(categories) > 1:
                categories = categories[1:]
            if not categories:
                continue
            plan.append((column, categories))
            names.extend(f"{attribute}={c}" for c in categories)
            width += len(categories)
    matrix = np.zeros((n_rows, width), dtype=np.float64)
    offset = 0
    for column, categories in plan:
        if column is None:  # intercept
            matrix[:, offset] = 1.0
            offset += 1
        elif categories is None:  # numeric pass-through with mean imputation
            values = column.values
            missing = np.isnan(values)
            if missing.any():
                fill = values[~missing].mean() if (~missing).any() else 0.0
                matrix[:, offset] = np.where(missing, fill, values)
            else:
                matrix[:, offset] = values
            offset += 1
        else:
            _one_hot_into(column, categories,
                          matrix[:, offset:offset + len(categories)])
            offset += len(categories)
    return matrix, names
