"""Design-matrix encoding of table attributes for regression-based estimators."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataframe.table import Table


def one_hot(table: Table, attribute: str, drop_first: bool = True) -> tuple[np.ndarray, list[str]]:
    """One-hot encode a categorical attribute.

    Returns the encoded matrix and the generated feature names.  With
    ``drop_first`` the first category is used as the reference level to avoid
    perfect collinearity in regressions.
    """
    column = table.column(attribute)
    categories = column.unique()
    if drop_first and len(categories) > 1:
        categories = categories[1:]
    matrix = np.zeros((table.n_rows, len(categories)), dtype=np.float64)
    index = {c: j for j, c in enumerate(categories)}
    for i, value in enumerate(column.values):
        j = index.get(value)
        if j is not None:
            matrix[i, j] = 1.0
    names = [f"{attribute}={c}" for c in categories]
    return matrix, names


def design_matrix(table: Table, attributes: Sequence[str], drop_first: bool = True,
                  add_intercept: bool = False) -> tuple[np.ndarray, list[str]]:
    """Build a regression design matrix from a mix of numeric/categorical attributes.

    Numeric attributes are passed through (missing values imputed with the
    column mean); categorical attributes are one-hot encoded.
    """
    blocks: list[np.ndarray] = []
    names: list[str] = []
    if add_intercept:
        blocks.append(np.ones((table.n_rows, 1)))
        names.append("intercept")
    for attribute in attributes:
        column = table.column(attribute)
        if column.numeric:
            values = column.values.astype(np.float64).copy()
            missing = np.isnan(values)
            if missing.any():
                fill = values[~missing].mean() if (~missing).any() else 0.0
                values[missing] = fill
            blocks.append(values.reshape(-1, 1))
            names.append(attribute)
        else:
            encoded, feature_names = one_hot(table, attribute, drop_first=drop_first)
            if encoded.shape[1]:
                blocks.append(encoded)
                names.extend(feature_names)
    if not blocks:
        return np.zeros((table.n_rows, 0)), []
    return np.hstack(blocks), names
