"""Factorized group-by index over composite keys.

``GroupByIndex`` assigns every row a dense integer *group id* by combining the
per-attribute dictionary codes of the grouping attributes (categorical columns
contribute their cached codes directly; numeric columns are factorized once
with ``np.unique``) and collapsing the composite codes with
``np.unique(..., return_inverse=True)``.  All group-level operations —
membership lists, sizes, averages, and the "every row of the group satisfies a
mask" coverage test — then become ``np.bincount``/fancy-indexing kernels over
the inverse array instead of per-row Python dictionary updates.

The index preserves the exact semantics of the previous dict-based
implementation:

* group keys are tuples of the raw column values of the group's first row, so
  key types (``str``, ``np.float64``, ``None``) match row-at-a-time grouping;
* groups are ordered by first occurrence (dict insertion order of the old
  code), with :meth:`sorted_by_repr` providing the ``repr``-sorted order used
  by ``Table.groupby_avg``;
* rows with a ``NaN`` numeric key each form their own singleton group, which
  is what a Python dict keyed on fresh ``nan`` scalars produced.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataframe.column import MISSING_CODE

# Mixed-radix combination of per-attribute codes must not overflow int64.
_MAX_RADIX = np.int64(2) ** 62


class GroupByIndex:
    """A factorized index of the groups of ``table`` under ``attributes``.

    Attributes
    ----------
    inverse:
        ``int64`` array of length ``n_rows`` mapping each row to its dense
        group id.
    n_groups:
        Number of distinct groups.
    keys:
        Group keys (tuples of raw values) indexed by group id, in first
        occurrence order.
    sizes:
        ``int64`` array of group sizes indexed by group id.
    """

    def __init__(self, table, attributes: Sequence[str]):
        self.table = table
        self.attributes = tuple(attributes)
        n = table.n_rows
        code_arrays = [_attribute_codes(table.column(a)) for a in self.attributes]
        raw = _combine_codes(code_arrays, n)
        _, first_row, inverse_first = np.unique(raw, return_index=True,
                                                return_inverse=True)
        inverse_first = inverse_first.reshape(-1).astype(np.int64, copy=False)
        first_row = first_row.astype(np.int64, copy=False)
        # Renumber group ids into first-occurrence order (np.unique numbers
        # them by sorted composite code instead).
        n_groups = len(first_row)
        order = np.argsort(first_row, kind="stable")
        renumber = np.empty(n_groups, dtype=np.int64)
        renumber[order] = np.arange(n_groups, dtype=np.int64)
        self.inverse = renumber[inverse_first] if n else inverse_first
        self.n_groups = n_groups
        self._first_row = first_row[order]
        self.sizes = np.bincount(self.inverse, minlength=n_groups)
        self.keys: list[tuple] = [
            tuple(table.column(a).values[row] for a in self.attributes)
            for row in self._first_row
        ]
        self._indices: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ membership

    def group_indices(self) -> list[np.ndarray]:
        """Row indices of each group (ascending), indexed by group id."""
        if self._indices is None:
            if self.n_groups == 0:
                self._indices = []
            else:
                order = np.argsort(self.inverse, kind="stable")
                boundaries = np.cumsum(self.sizes)[:-1]
                self._indices = np.split(order, boundaries)
        return self._indices

    def indices_by_key(self) -> dict:
        """Map each group key to its (ascending) row-index array."""
        return dict(zip(self.keys, self.group_indices()))

    # ------------------------------------------------------------------ orderings

    def sorted_by_repr(self) -> list[int]:
        """Group ids sorted by ``repr`` of the key (Table.groupby_avg order)."""
        return sorted(range(self.n_groups), key=lambda g: repr(self.keys[g]))

    # ------------------------------------------------------------------ aggregation

    def averages(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-group mean of ``values`` ignoring ``NaN`` entries.

        Returns ``(averages, valid_counts)`` indexed by group id; a group with
        no valid value averages to ``NaN``.  Sums run over rows in ascending
        index order per group (matching the row-at-a-time accumulation).
        """
        averages = np.full(self.n_groups, np.nan, dtype=np.float64)
        counts = np.zeros(self.n_groups, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        for gid, rows in enumerate(self.group_indices()):
            group_values = values[rows]
            valid = group_values[~np.isnan(group_values)]
            counts[gid] = valid.size
            if valid.size:
                averages[gid] = float(valid.mean())
        return averages, counts

    def all_true(self, mask: np.ndarray) -> np.ndarray:
        """Boolean array per group id: does ``mask`` hold on *every* group row?"""
        mask = np.asarray(mask, dtype=bool)
        true_per_group = np.bincount(self.inverse, weights=mask,
                                     minlength=self.n_groups)
        return true_per_group.astype(np.int64) == self.sizes

    def __len__(self) -> int:
        return self.n_groups

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"GroupByIndex({list(self.attributes)!r}, "
                f"groups={self.n_groups}, rows={len(self.inverse)})")


def _attribute_codes(column) -> np.ndarray:
    """Non-negative factor codes for one grouping attribute.

    Categorical columns reuse their dictionary codes (shifted so the missing
    sentinel becomes 0).  Numeric columns are factorized with ``np.unique``;
    every ``NaN`` row gets a unique code so each forms a singleton group,
    mirroring dict-based grouping where ``nan`` keys never compare equal.
    """
    if not column.numeric:
        codes = column.codes.astype(np.int64, copy=False) - MISSING_CODE
        return codes
    values = column.values
    nan_mask = np.isnan(values)
    codes = np.empty(len(values), dtype=np.int64)
    uniques, inv = np.unique(values[~nan_mask], return_inverse=True)
    codes[~nan_mask] = inv.reshape(-1)
    n_nan = int(nan_mask.sum())
    if n_nan:
        codes[nan_mask] = len(uniques) + np.arange(n_nan, dtype=np.int64)
    return codes


def _combine_codes(code_arrays: list[np.ndarray], n_rows: int) -> np.ndarray:
    """Collapse per-attribute codes into one comparable array of composite ids."""
    if not code_arrays:
        return np.zeros(n_rows, dtype=np.int64)
    if len(code_arrays) == 1:
        return code_arrays[0]
    cardinalities = [int(codes.max()) + 1 if n_rows else 1 for codes in code_arrays]
    total = np.int64(1)
    fits = True
    for cardinality in cardinalities:
        if int(total) * cardinality > int(_MAX_RADIX):
            fits = False
            break
        total = np.int64(int(total) * cardinality)
    if fits:
        combined = np.zeros(n_rows, dtype=np.int64)
        multiplier = 1
        for codes, cardinality in zip(reversed(code_arrays),
                                      reversed(cardinalities)):
            combined += codes * multiplier
            multiplier *= cardinality
        return combined
    # Astronomically wide key space: fall back to hashing row tuples of codes.
    stacked = np.stack(code_arrays, axis=1)
    seen: dict[bytes, int] = {}
    combined = np.empty(n_rows, dtype=np.int64)
    for i in range(n_rows):
        key = stacked[i].tobytes()
        combined[i] = seen.setdefault(key, len(seen))
    return combined
