"""Functional-dependency detection over table instances.

Grouping patterns (Definition 4.2) may only use attributes ``W`` such that the
functional dependency ``A_gb -> W`` holds in the database instance.  These
helpers detect the set of such attributes and perform the grouping/treatment
attribute partition described in Section 4.1.
"""

from __future__ import annotations

from typing import Sequence

from repro.dataframe.table import Table


def fd_holds(table: Table, lhs: Sequence[str], rhs: str) -> bool:
    """Return True iff the functional dependency ``lhs -> rhs`` holds in ``table``.

    Every combination of ``lhs`` values must map to exactly one ``rhs`` value.
    Missing values on the right-hand side are treated as a regular value.
    """
    if rhs in lhs:
        return True
    lhs_columns = [table.column(a).values for a in lhs]
    rhs_column = table.column(rhs).values
    seen: dict[tuple, object] = {}
    for i in range(table.n_rows):
        key = tuple(col[i] for col in lhs_columns)
        value = rhs_column[i]
        if key in seen:
            if seen[key] != value and not _both_nan(seen[key], value):
                return False
        else:
            seen[key] = value
    return True


def fd_closure(table: Table, group_by: Sequence[str],
               exclude: Sequence[str] = ()) -> list[str]:
    """Attributes ``W`` (other than the grouping attributes) with ``A_gb -> W``.

    These are the attributes eligible for grouping patterns.  ``exclude`` can
    be used to keep the outcome attribute out of consideration.
    """
    excluded = set(group_by) | set(exclude)
    closure = []
    for attr in table.attributes:
        if attr in excluded:
            continue
        if fd_holds(table, group_by, attr):
            closure.append(attr)
    return closure


def grouping_attribute_partition(table: Table, group_by: Sequence[str],
                                 outcome: str) -> tuple[list[str], list[str]]:
    """Partition attributes into grouping-eligible and treatment-eligible sets.

    Attributes functionally determined by the group-by attributes are eligible
    for grouping patterns; every other attribute (except the group-by attributes
    themselves and the outcome) is eligible for treatment patterns (Section 4.1).
    """
    grouping = fd_closure(table, group_by, exclude=[outcome])
    blocked = set(grouping) | set(group_by) | {outcome}
    treatment = [a for a in table.attributes if a not in blocked]
    return grouping, treatment


def _both_nan(a, b) -> bool:
    try:
        return a != a and b != b  # nan != nan
    except TypeError:
        return False
