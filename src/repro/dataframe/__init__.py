"""Lightweight columnar table engine used as the data substrate for CauSumX.

The original prototype relies on pandas; this package provides the subset of
relational functionality the algorithms need — typed columns, predicate
evaluation, selection, projection, group-by-average, functional-dependency
detection, sampling, and design-matrix encoding — implemented on numpy.

Categorical data is *dictionary-encoded* throughout: each categorical
:class:`Column` stores an ``int32`` code array plus an immutable sorted
vocabulary, and every consumer (predicate kernels, one-hot encoding, the
:class:`GroupByIndex` behind group-by aggregation, candidate-value
enumeration) operates on the codes.  Slicing preserves encodings, so
sub-populations inherit their parent's codes for free.
"""

from repro.dataframe.column import Column, LazyColumn, MISSING_CODE
from repro.dataframe.predicates import Op, Pattern, Predicate
from repro.dataframe.groupby import GroupByIndex
from repro.dataframe.maskcache import CacheStats, MaskCache
from repro.dataframe.table import Table
from repro.dataframe.functional_deps import fd_holds, fd_closure, grouping_attribute_partition
from repro.dataframe.encoding import design_matrix, one_hot
from repro.dataframe.binning import bin_edges, bin_label, discretize, discretize_column
from repro.dataframe.io import read_csv, write_csv

__all__ = [
    "bin_edges",
    "bin_label",
    "discretize",
    "discretize_column",
    "CacheStats",
    "Column",
    "GroupByIndex",
    "LazyColumn",
    "MISSING_CODE",
    "MaskCache",
    "Op",
    "Pattern",
    "Predicate",
    "Table",
    "fd_holds",
    "fd_closure",
    "grouping_attribute_partition",
    "design_matrix",
    "one_hot",
    "read_csv",
    "write_csv",
]
