"""Lightweight columnar table engine used as the data substrate for CauSumX.

The original prototype relies on pandas; this package provides the subset of
relational functionality the algorithms need — typed columns, predicate
evaluation, selection, projection, group-by-average, functional-dependency
detection, sampling, and design-matrix encoding — implemented on numpy.
"""

from repro.dataframe.column import Column
from repro.dataframe.predicates import Op, Pattern, Predicate
from repro.dataframe.maskcache import CacheStats, MaskCache
from repro.dataframe.table import Table
from repro.dataframe.functional_deps import fd_holds, fd_closure, grouping_attribute_partition
from repro.dataframe.encoding import design_matrix, one_hot
from repro.dataframe.binning import bin_edges, bin_label, discretize, discretize_column
from repro.dataframe.io import read_csv, write_csv

__all__ = [
    "bin_edges",
    "bin_label",
    "discretize",
    "discretize_column",
    "CacheStats",
    "Column",
    "MaskCache",
    "Op",
    "Pattern",
    "Predicate",
    "Table",
    "fd_holds",
    "fd_closure",
    "grouping_attribute_partition",
    "design_matrix",
    "one_hot",
    "read_csv",
    "write_csv",
]
