"""CSV import/export for tables.

``read_csv`` streams the file once and dictionary-encodes every column as it
goes: each cell is parsed, looked up in a per-column first-seen dictionary and
appended to an ``int32`` code buffer — the raw per-column Python lists the old
implementation accumulated (one str per cell, then one parsed value per cell)
never exist.  At the end a numeric column rebuilds its ``float64`` storage by
fancy-indexing a tiny per-distinct-value lookup through the codes, and a
categorical column remaps its first-seen codes to the sorted vocabulary —
exactly the encoding :func:`~repro.dataframe.column._factorize` produces.

``write_csv`` emits missing *numeric* cells as ``nan`` (and missing
categorical cells as the empty string), so a ``write_csv`` → ``read_csv``
round trip preserves the numeric-vs-categorical kind of every column — in
particular all-missing columns, which carry no other type evidence.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.dataframe.column import MISSING_CODE, Column, sorted_code_remap
from repro.dataframe.table import Table

#: Number of code slots grown at a time while streaming rows.
_CHUNK = 4096


class _ColumnBuilder:
    """Streaming dictionary encoder for one CSV column."""

    def __init__(self, name: str):
        self.name = name
        self.first_seen: dict = {}   # parsed value -> first-seen code
        self.codes = np.empty(_CHUNK, dtype=np.int32)
        self.n = 0
        self.numeric = True          # falsified by the first non-float cell
        self.saw_value = False
        self.saw_nan = False         # a literal "nan" cell: missing, but numeric

    def add(self, cell: str) -> None:
        value = _parse_cell(cell)
        if value is None or (isinstance(value, float) and np.isnan(value)):
            self.saw_nan = self.saw_nan or value is not None
            code = MISSING_CODE
        else:
            self.saw_value = True
            if self.numeric and not isinstance(value, (int, float)):
                self.numeric = False
            code = self.first_seen.get(value)
            if code is None:
                code = len(self.first_seen)
                self.first_seen[value] = code
        if self.n == len(self.codes):
            self.codes = np.resize(self.codes, 2 * self.n)  # geometric growth
        self.codes[self.n] = code
        self.n += 1

    def build(self) -> Column:
        codes = self.codes[:self.n]
        if self.numeric and (self.saw_value or self.saw_nan):
            # Rebuild the float storage through a per-distinct-value lookup;
            # the sentinel -1 wraps to the trailing NaN slot.
            lookup = np.empty(len(self.first_seen) + 1, dtype=np.float64)
            for value, code in self.first_seen.items():
                lookup[code] = float(value)
            lookup[len(self.first_seen)] = np.nan
            return Column._from_numeric_data(self.name, lookup[codes])
        # Remap first-seen codes to the deterministic sorted vocabulary —
        # same contract as a fresh factorization (sorted_code_remap is the
        # single source of that ordering).
        vocab, remap = sorted_code_remap(self.first_seen)
        return Column.from_codes(self.name,
                                 codes if remap is None else remap[codes],
                                 vocab)


def read_csv(path: str | Path, name: str | None = None) -> Table:
    """Load a table from a CSV file, inferring numeric vs categorical columns.

    The file is streamed row by row and dictionary-encoded on the fly (no
    whole-file materialization).  Empty cells (and cells parsing to NaN)
    become missing values.  A column is numeric if every non-empty cell
    parses as a float.  Short rows are padded with missing values; cells
    beyond the header are ignored.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        builders = [_ColumnBuilder(attr) for attr in header]
        for row in reader:
            for i, builder in enumerate(builders):
                builder.add(row[i] if i < len(row) else "")
    return Table([b.build() for b in builders], name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV.

    Missing values are written as ``nan`` in numeric columns and as empty
    cells in categorical columns, so :func:`read_csv` reconstructs every
    column with its original kind — including all-missing columns.
    """
    path = Path(path)
    numeric = [table.is_numeric(a) for a in table.attributes]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.attributes)
        for row in table.iter_rows():
            writer.writerow([
                ("nan" if is_numeric else "") if _is_missing(v) else v
                for is_numeric, v in
                ((n, row[a]) for n, a in zip(numeric, table.attributes))
            ])


def _parse_cell(cell: str):
    cell = cell.strip()
    if cell == "":
        return None
    try:
        value = float(cell)
    except ValueError:
        return cell
    if value.is_integer() and "." not in cell and "e" not in cell.lower():
        return int(value)
    return value


def _is_missing(value) -> bool:
    if value is None:
        return True
    try:
        return value != value  # nan
    except TypeError:
        return False
