"""CSV import/export for tables."""

from __future__ import annotations

import csv
from pathlib import Path

from repro.dataframe.column import Column
from repro.dataframe.table import Table


def read_csv(path: str | Path, name: str | None = None) -> Table:
    """Load a table from a CSV file, inferring numeric vs categorical columns.

    Empty cells become missing values.  A column is numeric if every non-empty
    cell parses as a float.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        raw_columns: list[list[str]] = [[] for _ in header]
        for row in reader:
            for i, cell in enumerate(row):
                raw_columns[i].append(cell)
    columns = []
    for attr, cells in zip(header, raw_columns):
        columns.append(Column(attr, [_parse_cell(c) for c in cells],
                              numeric=_all_numeric(cells)))
    return Table(columns, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV (missing values become empty cells)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.attributes)
        for row in table.iter_rows():
            writer.writerow(["" if _is_missing(v) else v for v in
                             (row[a] for a in table.attributes)])


def _parse_cell(cell: str):
    cell = cell.strip()
    if cell == "":
        return None
    try:
        value = float(cell)
    except ValueError:
        return cell
    if value.is_integer() and "." not in cell and "e" not in cell.lower():
        return int(value)
    return value


def _all_numeric(cells) -> bool:
    saw = False
    for cell in cells:
        cell = cell.strip()
        if cell == "":
            continue
        saw = True
        try:
            float(cell)
        except ValueError:
            return False
    return saw


def _is_missing(value) -> bool:
    if value is None:
        return True
    try:
        return value != value  # nan
    except TypeError:
        return False
