"""In-memory columnar table with the relational operations CauSumX needs."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.dataframe.column import Column
from repro.dataframe.groupby import GroupByIndex
from repro.dataframe.predicates import Pattern, Predicate


class Table:
    """A single-relation database instance over a fixed schema.

    The table is columnar: each attribute is a :class:`Column`.  All columns
    must have the same length.  Tables are treated as immutable by the
    algorithms (operations return new tables), though ``add_column`` is
    provided for construction convenience.
    """

    def __init__(self, columns: Sequence[Column] | Mapping[str, Iterable], name: str = "table"):
        if isinstance(columns, Mapping):
            columns = [Column(k, v) for k, v in columns.items()]
        columns = list(columns)
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"columns have differing lengths: {sorted(lengths)}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")
        self.name = name
        self._columns: dict[str, Column] = {c.name: c for c in columns}
        self._n_rows = lengths.pop()

    # ------------------------------------------------------------------ construction

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping], schema: Sequence[str] | None = None,
                  name: str = "table") -> "Table":
        """Build a table from a sequence of row dictionaries."""
        if not rows:
            raise ValueError("cannot build a table from zero rows")
        if schema is None:
            schema = list(rows[0].keys())
        columns = [Column(attr, [row.get(attr) for row in rows]) for attr in schema]
        return cls(columns, name=name)

    @classmethod
    def from_columns(cls, data: Mapping[str, Iterable], name: str = "table") -> "Table":
        return cls(data, name=name)

    # ------------------------------------------------------------------ dunder / accessors

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table({self.name!r}, rows={self.n_rows}, cols={self.n_cols})"

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._columns

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.attributes != other.attributes:
            return False
        return all(self._columns[a] == other._columns[a] for a in self.attributes)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return len(self._columns)

    @property
    def attributes(self) -> tuple:
        """Schema attribute names, in insertion order."""
        return tuple(self._columns)

    def column(self, attribute: str) -> Column:
        if attribute not in self._columns:
            raise KeyError(f"unknown attribute {attribute!r}; "
                           f"schema is {list(self._columns)}")
        return self._columns[attribute]

    def columns(self) -> list[Column]:
        return list(self._columns.values())

    def is_numeric(self, attribute: str) -> bool:
        return self.column(attribute).numeric

    def domain(self, attribute: str) -> list:
        """The active domain (sorted distinct values) of an attribute."""
        return self.column(attribute).unique()

    def row(self, index: int) -> dict:
        return {name: col.values[index] for name, col in self._columns.items()}

    def iter_rows(self):
        for i in range(self.n_rows):
            yield self.row(i)

    def to_rows(self) -> list[dict]:
        return list(self.iter_rows())

    def head(self, n: int = 5) -> list[dict]:
        return [self.row(i) for i in range(min(n, self.n_rows))]

    # ------------------------------------------------------------------ mutation (construction only)

    def add_column(self, column: Column) -> None:
        """Add a column in-place.  Intended for dataset-construction code only."""
        if len(column) != self.n_rows:
            raise ValueError("column length does not match table")
        if column.name in self._columns:
            raise ValueError(f"column {column.name!r} already exists")
        self._columns[column.name] = column

    # ------------------------------------------------------------------ relational ops

    def select(self, condition) -> "Table":
        """Return the sub-table of rows satisfying ``condition``.

        ``condition`` may be a :class:`Pattern`, a :class:`Predicate`, or a
        boolean numpy mask.
        """
        mask = self._as_mask(condition)
        return self.take(np.nonzero(mask)[0])

    def take(self, indices) -> "Table":
        """Return a new table with only the given row indices."""
        indices = np.asarray(indices)
        cols = [c.take(indices) for c in self._columns.values()]
        return Table(cols, name=self.name)

    def project(self, attributes: Sequence[str]) -> "Table":
        """Return a new table containing only the given attributes."""
        return Table([self.column(a) for a in attributes], name=self.name)

    def drop(self, attributes: Sequence[str]) -> "Table":
        keep = [a for a in self.attributes if a not in set(attributes)]
        return self.project(keep)

    def mask(self, condition) -> np.ndarray:
        """Boolean mask for a pattern/predicate/mask condition."""
        return self._as_mask(condition)

    def _as_mask(self, condition) -> np.ndarray:
        if isinstance(condition, (Pattern, Predicate)):
            return condition.evaluate(self)
        mask = np.asarray(condition, dtype=bool)
        if mask.shape != (self.n_rows,):
            raise ValueError("mask has wrong shape")
        return mask

    # ------------------------------------------------------------------ aggregation

    def groupby_avg(self, group_attrs: Sequence[str], avg_attr: str,
                    where: Pattern | None = None) -> list[tuple]:
        """Evaluate ``SELECT group_attrs, AVG(avg_attr) ... GROUP BY group_attrs``.

        Returns a list of ``(group_key, average, count)`` tuples sorted by the
        group key, where ``group_key`` is a tuple of the grouping values.
        Rows with a missing outcome are ignored for the average but still count
        toward group membership.
        """
        base = self if where is None or where.is_empty() else self.select(where)
        outcome = base.column(avg_attr).values.astype(np.float64) \
            if base.column(avg_attr).numeric else base.column(avg_attr).as_float()
        index = base.group_index(group_attrs)
        averages, _ = index.averages(outcome)
        return [(index.keys[g], float(averages[g]), int(index.sizes[g]))
                for g in index.sorted_by_repr()]

    def group_index(self, group_attrs: Sequence[str]) -> GroupByIndex:
        """Factorized group index over the given attributes (composite group ids)."""
        return GroupByIndex(self, list(group_attrs))

    def group_indices(self, group_attrs: Sequence[str]) -> dict[tuple, np.ndarray]:
        """Map each group key to the array of row indices belonging to it."""
        return self.group_index(group_attrs).indices_by_key()

    def avg(self, attribute: str) -> float:
        values = self.column(attribute).values
        if not self.column(attribute).numeric:
            raise TypeError(f"attribute {attribute!r} is not numeric")
        valid = values[~np.isnan(values)]
        return float(valid.mean()) if valid.size else float("nan")

    def value_counts(self, attribute: str) -> dict:
        return self.column(attribute).value_counts()

    # ------------------------------------------------------------------ sampling

    def sample(self, n: int, seed: int | None = None, replace: bool = False) -> "Table":
        """Random sample of ``n`` rows (without replacement unless asked)."""
        if n >= self.n_rows and not replace:
            return self
        rng = np.random.default_rng(seed)
        indices = rng.choice(self.n_rows, size=n, replace=replace)
        return self.take(np.sort(indices))

    def shuffle(self, seed: int | None = None) -> "Table":
        rng = np.random.default_rng(seed)
        return self.take(rng.permutation(self.n_rows))

    # ------------------------------------------------------------------ schema statistics

    def max_domain_size(self) -> int:
        """Maximum number of distinct values across attributes (Table 3 statistic)."""
        return max(len(self.domain(a)) for a in self.attributes)

    def describe(self) -> dict:
        """Summary statistics used for Table 3."""
        return {
            "name": self.name,
            "tuples": self.n_rows,
            "attributes": self.n_cols,
            "max_values_per_attribute": self.max_domain_size(),
        }

    def concat(self, other: "Table") -> "Table":
        """Vertically concatenate two tables with identical schemas.

        Categorical columns merge their vocabularies (:meth:`Column.concat`)
        instead of re-factorizing the combined raw values, so appending a
        small batch to a large table costs O(batch + vocab), and whenever one
        side's vocabulary subsumes the other's, that side's codes are
        preserved verbatim.  The result is indistinguishable from building
        the table from the combined rows from scratch (same vocabularies,
        same codes).
        """
        if self.attributes != other.attributes:
            raise ValueError("schemas differ")
        cols = [self.column(attr).concat(other.column(attr))
                for attr in self.attributes]
        return Table(cols, name=self.name)
