"""Typed column wrapper around numpy storage.

Columns come in two physical representations:

* **numeric** — a ``float64`` array; missing values are ``np.nan``;
* **categorical** — *dictionary-encoded*: an ``int32`` code array plus an
  immutable, deterministically ordered vocabulary of distinct values.
  Missing values (``None`` or ``NaN`` on input) are normalised to the
  sentinel code ``MISSING_CODE`` (-1) and never enter the vocabulary.

The vocabulary is sorted ascending (falling back to ``repr`` ordering for
mixed un-orderable types), which makes code order agree with value order:
``codes[i] < codes[j]`` iff ``vocab[codes[i]] < vocab[codes[j]]`` whenever the
values are comparable.  Every consumer of categorical data — predicate
kernels, one-hot encoding, group-by factorization, candidate-value
enumeration — operates on the codes; the object array of raw values is only
materialised lazily on demand (``Column.values``).

Slicing (:meth:`take`) preserves the vocabulary, so sub-populations inherit
the parent table's encoding for free and masks/codes remain comparable across
slices.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.lockwatch import named_lock

#: Code assigned to missing categorical values.  Never a valid vocab index.
MISSING_CODE = -1


class Column:
    """A named, typed column of values.

    Columns are either *numeric* (stored as ``float64``) or *categorical*
    (dictionary-encoded: ``int32`` codes + an immutable vocabulary).  Missing
    values are represented as ``np.nan`` for numeric columns and ``None``
    (sentinel code ``-1``) for categorical columns.
    """

    def __init__(self, name: str, values: Iterable, numeric: bool | None = None):
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        self.name = name
        materialized = list(values) if not isinstance(values, np.ndarray) else values
        if numeric is None:
            numeric = _infer_numeric(materialized)
        self.numeric = bool(numeric)
        self._values: np.ndarray | None = None
        self._vocab_index: dict | None = None
        if self.numeric:
            self._codes = None
            self._vocab: tuple = ()
            if isinstance(materialized, np.ndarray) and \
                    materialized.dtype.kind in "fiub":
                # Fast path: a clean numeric array needs no per-value coercion.
                # Copy so the column never aliases a caller-owned buffer.
                self._data = materialized.astype(np.float64, copy=True)
            else:
                self._data = np.asarray(
                    [_to_float(v) for v in materialized], dtype=np.float64
                )
        else:
            self._data = None
            self._codes, self._vocab = _factorize(materialized)

    # ------------------------------------------------------------------ alt constructors

    @classmethod
    def from_codes(cls, name: str, codes: np.ndarray, vocab: Sequence) -> "Column":
        """Build a categorical column directly from dictionary codes.

        ``codes`` must be an integer array with values in
        ``[-1, len(vocab))`` (``-1`` marks missing); ``vocab`` must already be
        in the deterministic sorted order used by :func:`_factorize`.  The
        array is adopted without copying — callers must hand over ownership.
        This is the fast path used by :meth:`take` so slices share the parent
        vocabulary.
        """
        column = cls.__new__(cls)
        column.name = name
        column.numeric = False
        column._data = None
        column._values = None
        column._vocab_index = None
        column._codes = np.asarray(codes, dtype=np.int32)
        column._vocab = tuple(vocab)
        return column

    @classmethod
    def _from_numeric_data(cls, name: str, data: np.ndarray) -> "Column":
        """Adopt a fresh ``float64`` array without copying (internal fast path)."""
        column = cls.__new__(cls)
        column.name = name
        column.numeric = True
        column._values = None
        column._vocab_index = None
        column._codes = None
        column._vocab = ()
        column._data = data
        return column

    # ------------------------------------------------------------------ storage access

    @property
    def values(self) -> np.ndarray:
        """The column as a numpy array.

        Numeric columns return their ``float64`` storage; categorical columns
        lazily materialise (and cache) the decoded ``object`` array, with
        ``None`` for missing entries.
        """
        if self.numeric:
            return self._data
        if self._values is None:
            lookup = np.empty(len(self._vocab) + 1, dtype=object)
            for code, value in enumerate(self._vocab):
                lookup[code] = value
            lookup[len(self._vocab)] = None  # sentinel -1 wraps to the last slot
            self._values = lookup[self._codes]
        return self._values

    @property
    def codes(self) -> np.ndarray:
        """Dictionary codes of a categorical column (``-1`` = missing).

        The preferred numeric view of categorical data: deterministic (vocab
        is sorted ascending, ``repr`` order for un-orderable mixed types) and
        stable across :meth:`take` slices.  Raises for numeric columns.
        """
        if self.numeric:
            raise TypeError(f"column {self.name!r} is numeric; it has no "
                            "dictionary codes (use .values)")
        return self._codes

    @property
    def vocab(self) -> tuple:
        """The immutable, deterministically ordered vocabulary (categorical only)."""
        if self.numeric:
            raise TypeError(f"column {self.name!r} is numeric; it has no vocabulary")
        return self._vocab

    def vocab_code(self, value) -> int | None:
        """The dictionary code of ``value``, or ``None`` if absent from the vocab."""
        if self.numeric:
            raise TypeError(f"column {self.name!r} is numeric; it has no vocabulary")
        if self._vocab_index is None:
            self._vocab_index = {v: i for i, v in enumerate(self._vocab)}
        return self._vocab_index.get(value)

    # ------------------------------------------------------------------ dunder

    def __len__(self) -> int:
        return len(self._data) if self.numeric else len(self._codes)

    def __getitem__(self, idx):
        return self.values[idx]

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.numeric != other.numeric:
            return False
        if len(self) != len(other):
            return False
        if self.numeric:
            return bool(
                np.all(
                    (self._data == other._data)
                    | (np.isnan(self._data) & np.isnan(other._data))
                )
            )
        if self._vocab == other._vocab:
            return bool(np.array_equal(self._codes, other._codes))
        return bool(np.all(self.values == other.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "numeric" if self.numeric else f"categorical[{len(self._vocab)}]"
        return f"Column({self.name!r}, n={len(self)}, {kind})"

    # ------------------------------------------------------------------ helpers

    def take(self, indices) -> "Column":
        """Return a new column with only the rows at ``indices`` (or bool mask).

        Categorical slices keep the parent vocabulary, so codes stay
        comparable across sub-populations and no re-encoding happens.
        """
        if self.numeric:
            return Column._from_numeric_data(self.name, self._data[indices])
        return Column.from_codes(self.name, self._codes[indices], self._vocab)

    def unique(self) -> list:
        """Return sorted distinct non-missing values (the active domain).

        For categorical columns this is the subset of the vocabulary whose
        codes occur in the column, in vocabulary (i.e. sorted) order — no row
        rescan, just a ``np.unique`` over the codes.
        """
        if self.numeric:
            vals = self._data[~np.isnan(self._data)]
            return [float(v) for v in np.unique(vals)]
        present = np.unique(self._codes)
        return [self._vocab[c] for c in present if c != MISSING_CODE]

    def n_missing(self) -> int:
        if self.numeric:
            return int(np.isnan(self._data).sum())
        return int((self._codes == MISSING_CODE).sum())

    def value_counts(self) -> dict:
        """Return a mapping ``value -> count`` over non-missing values."""
        if self.numeric:
            vals = self._data[~np.isnan(self._data)]
            uniques, counts = np.unique(vals, return_counts=True)
            return {float(u): int(c) for u, c in zip(uniques, counts)}
        counts = np.bincount(self._codes[self._codes != MISSING_CODE],
                             minlength=len(self._vocab))
        return {value: int(count)
                for value, count in zip(self._vocab, counts) if count}

    def as_float(self) -> np.ndarray:
        """Return the column as a float array (categoricals are label-encoded).

        Categorical values are mapped to their dense rank among the values
        *present in this column*, in sorted (vocabulary) order — i.e. the
        i-th smallest present value maps to ``float(i)`` and missing values to
        ``NaN``.  The mapping is derived from the cached dictionary codes, so
        no per-row Python loop runs.

        .. deprecated:: Prefer :attr:`Column.codes` for categorical columns —
           codes are stable across slices, whereas this dense re-ranking is
           relative to the values present in the (possibly sliced) column.
        """
        if self.numeric:
            return self._data.astype(np.float64)
        present = np.unique(self._codes)
        present = present[present != MISSING_CODE]
        remap = np.full(len(self._vocab) + 1, -1, dtype=np.int64)
        remap[present] = np.arange(len(present))
        ranks = remap[self._codes]  # sentinel -1 wraps to the last slot (-1)
        out = ranks.astype(np.float64)
        out[ranks < 0] = np.nan
        return out

    def rename(self, new_name: str) -> "Column":
        if self.numeric:
            return Column._from_numeric_data(new_name, self._data)
        return Column.from_codes(new_name, self._codes, self._vocab)

    def concat(self, other: "Column") -> "Column":
        """Vertically concatenate two same-named columns.

        Categorical columns *merge vocabularies* instead of re-factorizing the
        raw values: the merged vocabulary is the sorted union of both sides'
        vocabularies (identical to what :func:`_factorize` would produce on the
        combined values), and each side's codes are remapped through a small
        per-vocab-entry lookup — an O(rows) fancy-index, never a per-row Python
        loop.  When one side's vocabulary already contains every value of the
        other (the common append case: a large table absorbs a small batch),
        the merged vocabulary *is* that side's vocabulary and its codes pass
        through unchanged, so masks cached against the old codes stay valid on
        the old prefix and can be revalidated by evaluating only the appended
        rows.

        An all-missing side carries no type information and adopts the other
        side's kind (``NaN`` fill for numeric, sentinel codes for
        categorical), so appending rows that omit an attribute never flips
        the column's kind.  Genuinely mixed numeric/categorical pairs fall
        back to re-factorizing the combined raw values as a categorical
        column (the pre-merge semantics).
        """
        if self.name != other.name:
            raise ValueError(f"cannot concat columns {self.name!r} and {other.name!r}")
        if self.numeric != other.numeric:
            if other.n_missing() == len(other):
                other = _all_missing_as(other, self)
            elif self.n_missing() == len(self):
                self = _all_missing_as(self, other)
        if self.numeric and other.numeric:
            return Column._from_numeric_data(
                self.name, np.concatenate([self._data, other._data]))
        if not self.numeric and not other.numeric:
            vocab, remap_self, remap_other = _merge_vocabs(self._vocab, other._vocab)
            codes = np.concatenate([
                self._codes if remap_self is None else remap_self[self._codes],
                other._codes if remap_other is None else remap_other[other._codes],
            ])
            return Column.from_codes(self.name, codes, vocab)
        return Column(self.name, list(self.values) + list(other.values),
                      numeric=False)


class LazyColumn(Column):
    """A column whose physical storage is materialized on first access.

    Built by the storage layer for disk-backed tables: the column knows its
    name, kind, length, and (for categoricals) vocabulary up front, but the
    ``float64`` data / ``int32`` code array is produced by ``loader()`` only
    when something actually touches the rows — typically a lazy concatenation
    of memory-mapped shard arrays.  ``len()`` and all metadata accessors work
    without triggering the load; every row-reading code path (``values``,
    ``codes``, ``take``, predicate kernels, …) transparently materializes via
    the ``_data`` / ``_codes`` property overrides.

    The loaded array is cached, and the loader reference is dropped so shard
    handles can be garbage-collected once the column is materialized.
    """

    def __init__(self, name: str, numeric: bool, length: int, loader,
                 vocab: Sequence = ()):
        # Deliberately does NOT call Column.__init__: storage is lazy.
        self.name = name
        self.numeric = bool(numeric)
        self._length = int(length)
        self._load_lock = named_lock("LazyColumn._load_lock")
        self._loader = loader  # guarded-by: _load_lock
        self._arr: np.ndarray | None = None  # guarded-by: _load_lock
        self._values = None
        self._vocab = tuple(vocab)
        self._vocab_index = None

    def _load(self) -> np.ndarray:
        # Serving engines touch shared columns from a thread pool; the lock
        # makes the load once-only (and keeps the loader-dropping safe).
        with self._load_lock:
            if self._arr is None:
                arr = self._loader()
                if len(arr) != self._length:
                    raise ValueError(
                        f"lazy column {self.name!r} loaded {len(arr)} rows, "
                        f"expected {self._length}")
                self._arr = arr
                self._loader = None
            return self._arr

    @property
    def _data(self):
        return self._load() if self.numeric else None

    @property
    def _codes(self):
        return None if self.numeric else self._load()

    @property
    def materialized(self) -> bool:
        """Whether the storage has been loaded yet (no load is triggered)."""
        with self._load_lock:
            return self._arr is not None

    def __len__(self) -> int:
        return self._length


def _is_missing(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    return False


def _to_float(value) -> float:
    if _is_missing(value):
        return float("nan")
    return float(value)


def sorted_code_remap(values: Sequence) -> tuple[tuple, np.ndarray | None]:
    """The deterministic sorted-vocabulary contract, single-sourced.

    Given distinct ``values`` in *code order* (value ``i`` encoded as code
    ``i``), return ``(sorted vocab, remap)`` where the vocabulary is sorted
    ascending with a ``repr``-order fallback for mixed un-orderable types,
    and ``remap`` is an ``int32`` old-code → sorted-code lookup whose
    trailing slot maps the ``-1`` sentinel to itself.  ``remap`` is ``None``
    when ``values`` is already in sorted order (codes pass through).

    Every producer of dictionary codes — :func:`_factorize`, the streaming
    CSV encoder, and the storage layer's store-vocabulary loads — goes
    through this function, so their encodings agree byte for byte.
    """
    values = list(values)
    try:
        ordered = sorted(values)
    except TypeError:  # mixed un-orderable types
        ordered = sorted(values, key=repr)
    if ordered == values:
        return tuple(ordered), None
    position = {value: i for i, value in enumerate(ordered)}
    remap = np.empty(len(values) + 1, dtype=np.int32)
    for old_code, value in enumerate(values):
        remap[old_code] = position[value]
    remap[len(values)] = MISSING_CODE  # sentinel -1 wraps to the last slot
    return tuple(ordered), remap


def _factorize(values) -> tuple[np.ndarray, tuple]:
    """Dictionary-encode raw values into ``(int32 codes, sorted vocab)``.

    Values are normalised first (numpy scalars unwrapped, ``None``/``NaN`` to
    the sentinel); the vocabulary order comes from :func:`sorted_code_remap`,
    matching :meth:`Column.unique`.
    """
    n = len(values)
    first_seen: dict = {}
    tmp = np.empty(n, dtype=np.int32)
    for i, v in enumerate(values):
        if _is_missing(v):
            tmp[i] = MISSING_CODE
            continue
        if isinstance(v, np.generic):
            v = v.item()  # unwrap numpy scalars for clean reprs
        code = first_seen.get(v)
        if code is None:
            code = len(first_seen)
            first_seen[v] = code
        tmp[i] = code
    vocab, remap = sorted_code_remap(first_seen)
    return tmp if remap is None else remap[tmp], vocab


def _all_missing_as(column: "Column", like: "Column") -> "Column":
    """Re-type an all-missing column to match ``like``'s kind."""
    n = len(column)
    if like.numeric:
        return Column._from_numeric_data(column.name,
                                         np.full(n, np.nan, dtype=np.float64))
    return Column.from_codes(column.name,
                             np.full(n, MISSING_CODE, dtype=np.int32), ())


def _merge_vocabs(a: tuple, b: tuple
                  ) -> tuple[tuple, np.ndarray | None, np.ndarray | None]:
    """Merge two sorted vocabularies into ``(merged, remap_a, remap_b)``.

    The merged vocabulary is the sorted union (with the same ``repr``-order
    fallback as :func:`_factorize`, so it matches a fresh factorization of the
    combined values exactly).  ``remap_a``/``remap_b`` are old-code → new-code
    lookup arrays (with the sentinel ``-1`` wrapping to a ``-1`` slot), or
    ``None`` when that side's codes are already correct — which happens
    whenever the merged vocabulary equals that side's vocabulary.
    """
    if a == b:
        return a, None, None
    union = dict.fromkeys(a)
    union.update(dict.fromkeys(b))
    try:
        merged = tuple(sorted(union))
    except TypeError:  # mixed un-orderable types
        merged = tuple(sorted(union, key=repr))
    index = {v: i for i, v in enumerate(merged)}

    def remap_for(vocab: tuple) -> np.ndarray | None:
        if vocab == merged:
            return None
        remap = np.empty(len(vocab) + 1, dtype=np.int32)
        for old_code, value in enumerate(vocab):
            remap[old_code] = index[value]
        remap[len(vocab)] = MISSING_CODE  # sentinel -1 wraps to the last slot
        return remap

    return merged, remap_for(a), remap_for(b)


def _infer_numeric(values: Sequence) -> bool:
    """A column is numeric if every non-missing value is an int/float/bool."""
    saw_value = False
    for v in values:
        if _is_missing(v):
            continue
        saw_value = True
        if isinstance(v, bool):
            continue
        if not isinstance(v, (int, float, np.integer, np.floating)):
            return False
    return saw_value
