"""Typed column wrapper around a numpy array."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class Column:
    """A named, typed column of values.

    Columns are either *numeric* (stored as ``float64``) or *categorical*
    (stored as ``object``).  Missing values are represented as ``np.nan`` for
    numeric columns and ``None`` for categorical columns.
    """

    def __init__(self, name: str, values: Iterable, numeric: bool | None = None):
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        self.name = name
        materialized = list(values) if not isinstance(values, np.ndarray) else values
        if numeric is None:
            numeric = _infer_numeric(materialized)
        self.numeric = bool(numeric)
        if self.numeric:
            self.values = np.asarray(
                [_to_float(v) for v in materialized], dtype=np.float64
            )
        else:
            data = np.empty(len(materialized), dtype=object)
            for i, v in enumerate(materialized):
                if _is_missing(v):
                    data[i] = None
                elif isinstance(v, np.generic):
                    data[i] = v.item()  # unwrap numpy scalars for clean reprs
                else:
                    data[i] = v
            self.values = data

    # ------------------------------------------------------------------ dunder

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx):
        return self.values[idx]

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.numeric != other.numeric:
            return False
        if len(self) != len(other):
            return False
        if self.numeric:
            return bool(
                np.all(
                    (self.values == other.values)
                    | (np.isnan(self.values) & np.isnan(other.values))
                )
            )
        return bool(np.all(self.values == other.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "numeric" if self.numeric else "categorical"
        return f"Column({self.name!r}, n={len(self)}, {kind})"

    # ------------------------------------------------------------------ helpers

    def take(self, indices) -> "Column":
        """Return a new column with only the rows at ``indices`` (or bool mask)."""
        return Column(self.name, self.values[indices], numeric=self.numeric)

    def unique(self) -> list:
        """Return sorted distinct non-missing values (the active domain)."""
        if self.numeric:
            vals = self.values[~np.isnan(self.values)]
            return sorted(set(float(v) for v in vals))
        vals = [v for v in self.values if v is not None]
        try:
            return sorted(set(vals))
        except TypeError:  # mixed un-orderable types
            return sorted(set(vals), key=repr)

    def n_missing(self) -> int:
        if self.numeric:
            return int(np.isnan(self.values).sum())
        return int(sum(1 for v in self.values if v is None))

    def value_counts(self) -> dict:
        """Return a mapping ``value -> count`` over non-missing values."""
        counts: dict = {}
        for v in self.values:
            if _is_missing(v):
                continue
            key = float(v) if self.numeric else v
            counts[key] = counts.get(key, 0) + 1
        return counts

    def as_float(self) -> np.ndarray:
        """Return the column as a float array (categoricals are label-encoded)."""
        if self.numeric:
            return self.values.astype(np.float64)
        mapping = {v: i for i, v in enumerate(self.unique())}
        out = np.full(len(self), np.nan)
        for i, v in enumerate(self.values):
            if v is not None:
                out[i] = mapping[v]
        return out

    def rename(self, new_name: str) -> "Column":
        return Column(new_name, self.values, numeric=self.numeric)


def _is_missing(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    return False


def _to_float(value) -> float:
    if _is_missing(value):
        return float("nan")
    return float(value)


def _infer_numeric(values: Sequence) -> bool:
    """A column is numeric if every non-missing value is an int/float/bool."""
    saw_value = False
    for v in values:
        if _is_missing(v):
            continue
        saw_value = True
        if isinstance(v, bool):
            continue
        if not isinstance(v, (int, float, np.integer, np.floating)):
            return False
    return saw_value
