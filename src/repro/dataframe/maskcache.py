"""Shared pattern-evaluation engine: memoized boolean predicate masks.

CauSumX evaluates thousands of (grouping pattern, treatment pattern) pairs and
the same simple predicates recur across patterns, lattice levels, and grouping
patterns.  :class:`MaskCache` memoizes the boolean mask of every simple
predicate against one fixed table, keyed by ``(attribute, op, value)``, and
composes conjunctive patterns via bitwise AND of the cached masks.  Every
later scaling layer (bound sub-population estimation, batched lattice
evaluation, parallel treatment mining) sits on top of this engine.

Since the dataframe layer moved to dictionary-encoded categorical columns,
*cold* masks are vectorized too: a cache miss evaluates the predicate as a
numpy kernel over the column's codes (``codes == vocab_code(value)``), so the
cache's job is purely to amortise repeated masks, not to hide a per-row
Python loop.

Cached masks are marked read-only so accidental in-place mutation by a caller
cannot corrupt the cache; callers that need a writable mask receive a fresh
array (any composed or sliced mask is already a copy).

The cache is safe to share across threads: lookups and statistics updates are
guarded by a lock, while mask computation happens outside it so concurrent
misses never serialize on the (potentially slow) predicate evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.analysis.lockwatch import named_lock
from repro.dataframe.predicates import Pattern, Predicate
from repro.obs import trace


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of :class:`MaskCache` accounting."""

    hits: int
    misses: int
    entries: int
    bytes: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of predicate-mask requests served from the cache."""
        total = self.requests
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"entries={self.entries}, bytes={self.bytes}, "
                f"hit_rate={self.hit_rate:.2%})")


class MaskCache:
    """Per-table memoized store of boolean predicate masks.

    Parameters
    ----------
    table:
        The table all masks are evaluated against.  The table is assumed
        immutable (as the algorithms treat it); masks of a mutated table are
        stale.
    """

    def __init__(self, table):
        self.table = table
        self._lock = named_lock("MaskCache._lock")
        self._masks: dict[tuple, np.ndarray] = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        #: Memoized store-code resolutions for equality literals — filled by
        #: the storage layer's planned scans (the lookup walks the
        #: append-ordered store vocabulary, so hot predicates should pay it
        #: once per cache lifetime, not once per scan).  Store vocabularies
        #: only grow, and appends retire this cache object wholesale (the
        #: engine keys caches by data version), so entries never go stale.
        self._store_codes: dict[tuple, object] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------ masks

    def predicate_mask(self, predicate: Predicate) -> np.ndarray:
        """The (read-only) boolean mask of one simple predicate, memoized."""
        key = (predicate.attribute, predicate.op, predicate.value)
        with self._lock:
            mask = self._masks.get(key)
            if mask is not None:
                self._hits += 1
                return mask
        # Cold path: storage-backed tables evaluate the predicate one shard
        # at a time on the morsel pool (byte-identical concatenation); plain
        # tables run the single vectorized kernel as before.
        with trace.trace_span("maskcache.miss", predicate=repr(predicate)) \
                if trace.enabled() else trace.NOOP:
            shard_eval = getattr(self.table, "shard_predicate_mask", None)
            mask = shard_eval(predicate) if shard_eval is not None \
                else predicate.evaluate(self.table)
        mask.setflags(write=False)
        with self._lock:
            self._misses += 1
            # Another thread may have computed the same mask concurrently;
            # keep the first one so callers can rely on identity.
            return self._masks.setdefault(key, mask)

    def resolved_store_code(self, attribute: str, value,
                            resolver) -> tuple[object, bool]:
        """``(store code, served from memo?)`` for one equality literal.

        ``resolver`` runs outside the lock on a miss; the first concurrent
        resolution wins (all compute the same code — the store vocabulary is
        append-only and this cache dies before it can shrink or reorder).
        """
        key = (attribute, value)
        with self._lock:
            if key in self._store_codes:
                return self._store_codes[key], True
        code = resolver()
        with self._lock:
            return self._store_codes.setdefault(key, code), False

    def pattern_mask(self, pattern: Pattern) -> np.ndarray:
        """The mask of a conjunctive pattern: bitwise AND of cached predicate masks.

        Single-predicate patterns return the cached (read-only) mask itself;
        longer conjunctions return a fresh writable array.
        """
        predicates = pattern.predicates
        if not predicates:
            return np.ones(self.table.n_rows, dtype=bool)
        mask = self.predicate_mask(predicates[0])
        if len(predicates) == 1:
            return mask
        result = mask.copy()
        for predicate in predicates[1:]:
            result &= self.predicate_mask(predicate)
        return result

    def indices(self, pattern: Pattern) -> np.ndarray:
        """Row indices of the tuples satisfying ``pattern``."""
        return np.nonzero(self.pattern_mask(pattern))[0]

    def support(self, pattern: Pattern | Predicate) -> int:
        """Number of tuples satisfying a pattern or a single predicate."""
        if isinstance(pattern, Predicate):
            return int(self.predicate_mask(pattern).sum())
        return int(self.pattern_mask(pattern).sum())

    def warm(self, predicates: Iterable[Predicate]) -> None:
        """Pre-compute masks for a batch of predicates (e.g. a lattice level)."""
        for predicate in predicates:
            self.predicate_mask(predicate)

    def extended(self, new_table, appended_table) -> "MaskCache":
        """Revalidate all cached masks onto ``new_table`` after a row append.

        ``new_table`` must be this cache's table plus the rows of
        ``appended_table`` (in that order) — the situation produced by
        ``Table.concat`` during an incremental data arrival.  A predicate's
        mask over the old prefix cannot change (it depends only on row
        *values*, which an append preserves even when vocabularies merge), so
        every cached mask is revalidated by evaluating the predicate on the
        appended rows only and concatenating — O(appended) per entry instead
        of O(total).

        Returns a fresh cache over ``new_table`` with zeroed hit/miss
        accounting.
        """
        if self.table.n_rows + appended_table.n_rows != new_table.n_rows:
            raise ValueError("new_table must be the old table plus appended_table")
        extended = MaskCache(new_table)
        with self._lock:
            entries = list(self._masks.items())
        for key, mask in entries:
            attribute, op, value = key
            suffix = Predicate(attribute, op, value).evaluate(appended_table)
            new_mask = np.concatenate([mask, suffix])
            new_mask.setflags(write=False)
            extended._masks[key] = new_mask
        return extended

    # ------------------------------------------------------------------ stats

    def stats(self) -> CacheStats:
        with self._lock:
            nbytes = sum(m.nbytes for m in self._masks.values())
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self._masks), bytes=nbytes)

    def clear(self) -> None:
        """Drop all cached masks (and code memos) and reset the accounting."""
        with self._lock:
            self._masks.clear()
            self._store_codes.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._masks)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MaskCache(table={self.table.name!r}, {self.stats()!r})"
