"""Group-by-average query layer (the class of queries CauSumX explains)."""

from repro.sql.query import GroupByAvgQuery, parse_query
from repro.sql.normalize import normalize_literal, normalize_query, query_fingerprint
from repro.sql.view import AggregateView, GroupResult

__all__ = [
    "GroupByAvgQuery",
    "parse_query",
    "normalize_literal",
    "normalize_query",
    "query_fingerprint",
    "AggregateView",
    "GroupResult",
]
