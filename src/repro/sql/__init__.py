"""Group-by-average query layer (the class of queries CauSumX explains)."""

from repro.sql.query import GroupByAvgQuery, parse_query
from repro.sql.view import AggregateView, GroupResult

__all__ = ["GroupByAvgQuery", "parse_query", "AggregateView", "GroupResult"]
