"""Canonicalization and fingerprinting of group-by-average queries.

The explanation service (``repro.service``) must recognise that two
syntactically different requests ask the same question so it can serve one
cached summary for both.  Two layers provide that:

* :func:`normalize_query` rewrites a query into a *canonical form*: group-by
  attributes in sorted order, WHERE literals normalised (numpy scalars
  unwrapped, integral floats collapsed to ``int``), and — because
  :class:`~repro.dataframe.Pattern` already sorts and deduplicates its
  predicates — a canonical WHERE clause.  The canonical query is the one the
  engine executes, so permutations of the same request map to one summary
  (group keys follow the canonical attribute order).
* :func:`query_fingerprint` hashes the canonical form into a stable, hashable
  cache key.  The table name is *not* part of the fingerprint (it is
  informational only; the served dataset is addressed separately).
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import Pattern, Predicate
from repro.sql.query import GroupByAvgQuery


def normalize_literal(value):
    """Collapse equivalent literal spellings onto one canonical value.

    ``numpy`` scalars are unwrapped and floats holding an integral value
    become ``int`` (``30.0`` → ``30``).  This is safe for evaluation: numeric
    predicate kernels compare through ``float(value)`` and categorical
    vocabulary lookups hash ``30`` and ``30.0`` identically.  Booleans are
    kept as-is (they are their own spelling).
    """
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and not np.isnan(value) and not np.isinf(value) \
            and value.is_integer():
        return int(value)
    return value


def normalize_query(query: GroupByAvgQuery) -> GroupByAvgQuery:
    """Return the canonical form of a query (idempotent).

    Group-by attributes are sorted, WHERE literals are normalised, and the
    predicate order/deduplication is canonicalised by ``Pattern`` itself.
    """
    group_by = tuple(sorted(query.group_by))
    where = Pattern(Predicate(p.attribute, p.op, normalize_literal(p.value))
                    for p in query.where)
    # Predicate equality treats 30 == 30.0, so compare literal *spellings*
    # to decide whether anything actually changed.
    def spelling(pattern: Pattern) -> tuple:
        return tuple((p.attribute, p.op, repr(p.value)) for p in pattern)

    if group_by == query.group_by and spelling(where) == spelling(query.where):
        return query
    return GroupByAvgQuery(group_by=group_by, average=query.average,
                           where=where, table_name=query.table_name)


def query_fingerprint(query: GroupByAvgQuery) -> str:
    """A stable hex digest identifying the canonical form of ``query``.

    Queries that normalise to the same canonical form share a fingerprint;
    the digest is independent of the table name and of the process (no
    ``id()``/hash-randomised content).

    Since the query-plan IR landed, the fingerprint *is* the plan
    fingerprint: the query is lowered with
    :func:`~repro.plan.ir.lower_query` and the digest comes from
    :attr:`~repro.plan.ir.LogicalPlan.fingerprint` (same encoding as the
    pre-planner digest, so persisted summary-cache snapshots stay valid).
    """
    from repro.plan.ir import lower_query  # local: sql is imported by plan

    return lower_query(query).fingerprint
