"""Materialised aggregate views ``Q(D)`` and group-level bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.dataframe import Pattern, Table
from repro.plan.execute import planned_select_with_plan
from repro.sql.query import GroupByAvgQuery


@dataclass(frozen=True)
class GroupResult:
    """One answer tuple of the aggregate view: a group, its average, and its size."""

    key: tuple
    average: float
    size: int

    def label(self) -> str:
        """Unambiguous ``/``-joined rendering of the key.

        ``/`` (and ``\\``) occurring *inside* a key part is escaped so distinct
        keys such as ``("a/b", "c")`` and ``("a", "b/c")`` never collide on the
        same label.
        """
        return "/".join(
            str(k).replace("\\", "\\\\").replace("/", "\\/") for k in self.key
        )


class AggregateView:
    """The result ``Q(D)`` of evaluating a group-by-average query over a table.

    Besides the answer tuples, the view keeps the row indices contributing to
    each group, which the grouping-pattern coverage logic needs.
    """

    def __init__(self, table: Table, query: GroupByAvgQuery,
                 mask_cache=None):
        query.validate(table)
        self.query = query
        self.base_table = table
        # The WHERE clause executes through the query planner: conjuncts run
        # in estimated-selectivity × cost order with short-circuit AND, a
        # storage-backed ShardedTable additionally skips whole shards via
        # zone maps and column statistics, and a caller-supplied MaskCache
        # (the serving engine's per-dataset WHERE cache) amortises repeated
        # predicates across queries.  The executed ScanPlan — estimated vs
        # actual per-conjunct selectivities, shard-skip counts — is kept on
        # ``scan_plan`` for ``explain_plan`` introspection.  With planning
        # disabled (oracle mode) this is exactly ``table.select(where)``.
        self.scan_plan = None
        if query.where.is_empty():
            self.table = table
        else:
            self.table, self.scan_plan = planned_select_with_plan(
                table, query.where, mask_cache=mask_cache)
        # The factorized group index backs membership lists and the
        # covered-groups test; it is built lazily because the answer tuples
        # themselves may come from **group-by partials** instead: a no-WHERE
        # view over a sharded base merges per-shard (size, valid count,
        # outcome sum) triples — committed manifest partials when a
        # clustered compaction wrote them (zero rows touched), otherwise
        # computed shard by shard on the morsel pool.  The partial-sum
        # formula is the only formula on that path at *every* worker count,
        # so results never depend on pool width.
        self._lazy_index = None
        self._lazy_group_rows = None
        #: True when the answer tuples were merged from per-shard partials
        #: (committed or runtime) instead of a whole-table group scan.
        self.served_from_partials = False
        groups: list[GroupResult] | None = None
        if query.where.is_empty():
            partial_source = getattr(self.table, "shard_groupby_partials",
                                     None)
            if partial_source is not None:
                partials = partial_source(tuple(query.group_by),
                                          query.average)
                if partials is not None:
                    # Stable repr-sort over first-occurrence order — exactly
                    # GroupByIndex.sorted_by_repr's ordering.
                    groups = [
                        GroupResult(key=key,
                                    average=total / valid if valid
                                    else float("nan"),
                                    size=size)
                        for key, size, valid, total in
                        sorted(partials, key=lambda entry: repr(entry[0]))
                    ]
                    self.served_from_partials = True
        if groups is None:
            index = self._index
            outcome_column = self.table.column(query.average)
            outcome = outcome_column.values.astype(np.float64) \
                if outcome_column.numeric else outcome_column.as_float()
            averages, _ = index.averages(outcome)
            groups = [
                GroupResult(key=index.keys[g], average=float(averages[g]),
                            size=int(index.sizes[g]))
                for g in index.sorted_by_repr()
            ]
        self.groups: list[GroupResult] = groups
        self._group_index = {g.key: i for i, g in enumerate(self.groups)}

    # ------------------------------------------------------------------ accessors

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    @property
    def m(self) -> int:
        """Number of groups in the view (``m = |Q(D)|``)."""
        return len(self.groups)

    @property
    def _index(self):
        """The group index, built on first touch.

        Benign race under concurrent first touches: both threads build
        identical indexes over the same immutable table and the last
        assignment wins.
        """
        if self._lazy_index is None:
            self._lazy_index = self.table.group_index(
                list(self.query.group_by))
        return self._lazy_index

    @property
    def _group_rows(self):
        if self._lazy_group_rows is None:
            self._lazy_group_rows = self._index.indices_by_key()
        return self._lazy_group_rows

    @property
    def index(self):
        """The factorized :class:`~repro.dataframe.GroupByIndex` behind the view.

        Exposed so downstream layers (e.g. the optimizer's group-weighted
        coverage scoring) can reuse the dense group ids and sizes instead of
        rebuilding them from the answer tuples.  Touching it on a
        partials-served view triggers the full group scan the partials
        avoided.
        """
        return self._index

    def group_keys(self) -> list[tuple]:
        return [g.key for g in self.groups]

    def group_weights(self) -> dict[tuple, float]:
        """Per-group tuple counts (``{group key: size}``).

        Reads the answer tuples rather than the index so a partials-served
        view keeps its zero-rows-touched property (consumers treat this as
        a mapping; they bring their own group order).
        """
        return {g.key: float(g.size) for g in self.groups}

    def group(self, key: tuple) -> GroupResult:
        return self.groups[self._group_index[key]]

    def rows_of_group(self, key: tuple) -> np.ndarray:
        """Row indices (into the filtered table) contributing to a group."""
        return self._group_rows[key]

    def group_table(self, key: tuple) -> Table:
        """The sub-table of tuples contributing to one group."""
        return self.table.take(self.rows_of_group(key))

    # ------------------------------------------------------------------ coverage

    def covered_groups(self, grouping_pattern: Pattern) -> frozenset:
        """Groups covered by a grouping pattern (Definition 4.4).

        A group is covered when every tuple contributing to it satisfies the
        pattern.  Because grouping-pattern attributes are functionally
        determined by the group-by attributes, checking a single representative
        tuple per group is sufficient; we nevertheless verify all tuples to stay
        faithful to the definition (and robust to FD violations in dirty data).
        """
        if grouping_pattern.is_empty():
            return frozenset(self.group_keys())
        mask = grouping_pattern.evaluate(self.table)
        fully_covered = self._index.all_true(mask)
        return frozenset(self._index.keys[g]
                         for g in np.flatnonzero(fully_covered))

    def coverage_fraction(self, covered: Iterable[tuple]) -> float:
        """Fraction of view groups contained in ``covered``."""
        covered = set(covered)
        return len(covered & set(self.group_keys())) / self.m if self.m else 0.0

    # ------------------------------------------------------------------ rendering

    def as_rows(self) -> list[dict]:
        """The view as a list of dictionaries (useful for printing/plotting)."""
        rows = []
        for g in self.groups:
            row = {attr: value for attr, value in zip(self.query.group_by, g.key)}
            row[f"avg_{self.query.average}"] = g.average
            row["count"] = g.size
            rows.append(row)
        return rows
