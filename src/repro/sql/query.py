"""The group-by-average query class of Section 4.

``Q = SELECT A_gb, AVG(A_avg) FROM D WHERE phi GROUP BY A_gb``
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.dataframe import Pattern, Predicate, Table


@dataclass(frozen=True)
class GroupByAvgQuery:
    """A SQL query with group-by and average aggregate.

    Attributes
    ----------
    group_by:
        The categorical grouping attributes ``A_gb``.
    average:
        The numeric attribute aggregated with ``AVG`` (the causal outcome).
    where:
        Optional conjunctive selection predicate ``phi`` applied before grouping.
    table_name:
        Name of the relation the query ranges over (informational only).
    """

    group_by: tuple[str, ...]
    average: str
    where: Pattern = field(default_factory=Pattern)
    table_name: str = "D"

    def __init__(self, group_by: Sequence[str] | str, average: str,
                 where: Pattern | None = None, table_name: str = "D"):
        if isinstance(group_by, str):
            group_by = (group_by,)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "average", average)
        object.__setattr__(self, "where", where or Pattern())
        object.__setattr__(self, "table_name", table_name)
        if not self.group_by:
            raise ValueError("a group-by-average query needs at least one grouping attribute")
        if self.average in self.group_by:
            raise ValueError("the AVG attribute cannot also be a grouping attribute")

    def validate(self, table: Table) -> None:
        """Raise if the query references attributes missing from ``table``."""
        for attr in (*self.group_by, self.average):
            if attr not in table:
                raise KeyError(f"query references unknown attribute {attr!r}")
        if not table.is_numeric(self.average):
            raise TypeError(f"AVG attribute {self.average!r} must be numeric")
        for predicate in self.where:
            if predicate.attribute not in table:
                raise KeyError(
                    f"WHERE references unknown attribute {predicate.attribute!r}")

    def to_sql(self) -> str:
        """Render the query back to SQL text."""
        gb = ", ".join(self.group_by)
        sql = f"SELECT {gb}, AVG({self.average}) FROM {self.table_name}"
        if len(self.where):
            conditions = " AND ".join(
                f"{p.attribute} {p.op.value.replace('==', '=')} {_sql_literal(p.value)}"
                for p in self.where)
            sql += f" WHERE {conditions}"
        return sql + f" GROUP BY {gb}"


_QUERY_RE = re.compile(
    r"^\s*SELECT\s+(?P<select>.+?)\s+FROM\s+(?P<table>\w+)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"\s+GROUP\s+BY\s+(?P<groupby>.+?)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_AVG_RE = re.compile(r"AVG\s*\(\s*(?P<attr>\w+)\s*\)", re.IGNORECASE)
_CONDITION_RE = re.compile(
    r"^\s*(?P<attr>\w+)\s*(?P<op><=|>=|!=|<>|=|<|>)\s*(?P<value>.+?)\s*$")


def parse_query(sql: str) -> GroupByAvgQuery:
    """Parse SQL text of the form ``SELECT g, AVG(a) FROM t [WHERE ...] GROUP BY g``.

    Only the group-by-average fragment of Section 4 is supported; anything else
    raises ``ValueError``.
    """
    match = _QUERY_RE.match(sql)
    if not match:
        raise ValueError(f"cannot parse group-by-average query: {sql!r}")
    select_clause = match.group("select")
    avg_match = _AVG_RE.search(select_clause)
    if not avg_match:
        raise ValueError("query must contain an AVG(attribute) aggregate")
    average = avg_match.group("attr")
    group_by = [a.strip() for a in match.group("groupby").split(",") if a.strip()]
    duplicates = sorted({a for a in group_by if group_by.count(a) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate GROUP BY attribute(s) {', '.join(duplicates)} "
            f"in {match.group('groupby').strip()!r}")
    where = Pattern()
    if match.group("where"):
        predicates = []
        for raw in re.split(r"\s+AND\s+", match.group("where"), flags=re.IGNORECASE):
            cond = _CONDITION_RE.match(raw)
            if not cond:
                raise ValueError(f"cannot parse WHERE condition {raw.strip()!r}")
            if cond.group("value").lstrip()[:1] in {"<", ">", "=", "!"}:
                # `age >> 30` would otherwise parse as age > "> 30".
                raise ValueError(
                    f"malformed comparison in WHERE condition {raw.strip()!r}")
            try:
                value = _parse_literal(cond.group("value"))
            except ValueError as exc:
                raise ValueError(
                    f"bad literal in WHERE condition {raw.strip()!r}: {exc}") from exc
            predicates.append(Predicate(cond.group("attr"), cond.group("op"), value))
        where = Pattern(predicates)
    return GroupByAvgQuery(group_by=group_by, average=average, where=where,
                           table_name=match.group("table"))


def _parse_literal(text: str):
    text = text.strip()
    # Unwrap (possibly nested) balanced parentheses: `(30)`, `(-5)`, `((3.5))`.
    while len(text) >= 2 and text[0] == "(" and text[-1] == ")":
        inner = text[1:-1].strip()
        if not inner:
            raise ValueError("empty parenthesized literal")
        text = inner
    if (text.startswith("'") and text.endswith("'")) or \
            (text.startswith('"') and text.endswith('"')):
        return text[1:-1]
    try:
        value = float(text)
    except ValueError:
        return text
    return int(value) if value.is_integer() and "." not in text else value


def _sql_literal(value) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)
