"""Core of the project lint engine: findings, module contexts, rule registry.

The engine is deliberately small and dependency-free: ``ast`` for structure,
``tokenize`` for the comment channel (``# guarded-by:`` annotations and
``# repro-lint: disable=`` suppressions live in comments, which ``ast``
drops).  Rules are classes registered by decorator; a :class:`LintEngine`
instantiates a fresh rule set per run so rules may accumulate cross-module
state (RL002 needs the whole tree to detect inverted lock orders) without
leaking between runs.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: Inline suppression marker: ``# repro-lint: disable=RL001,RL003`` or
#: ``# repro-lint: disable=all``.  Applies to findings reported on that line.
SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Lock-discipline annotation: ``# guarded-by: _lock`` (optionally
#: ``self._lock``; several locks comma-separated).  On an attribute
#: assignment it declares the guard; on a ``def`` line it declares locks the
#: caller is required to hold.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z0-9_.,\s]+)")

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")


@dataclass(frozen=True)
class LintError:
    """A file the engine could not analyze (syntax error, rule crash)."""

    path: str
    line: int
    message: str
    rule: str = ""

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line,
                "message": self.message, "rule": self.rule}

    def render(self) -> str:
        origin = f" ({self.rule})" if self.rule else ""
        return f"{self.path}:{self.line}: ERROR{origin} {self.message}"


def _parse_lock_list(raw: str) -> tuple:
    locks = []
    for item in raw.split(","):
        name = item.strip()
        if not name:
            continue
        if name.startswith("self."):
            name = name[len("self."):]
        locks.append(name)
    return tuple(locks)


class ModuleContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: Path, source: str, root: Path | None = None):
        self.path = path
        display = path
        if root is not None:
            try:
                display = path.relative_to(root)
            except ValueError:
                pass
        self.display_path = display.as_posix()
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: Dotted module parts after the last ``repro`` path component, with
        #: ``.py`` / ``__init__`` stripped — ``("service", "engine")`` for
        #: ``src/repro/service/engine.py``.  Rules key their scoping on this,
        #: which also makes tmp-dir fixtures in the tests resolve naturally.
        self.module = _module_parts(path)
        self.comments = _comments_by_line(source)
        self.suppressions = self._parse_suppressions()
        self.guarded_lines = self._parse_guarded_by()
        self.imports_threading = any(
            isinstance(node, (ast.Import, ast.ImportFrom))
            and any(alias.name == "threading" or
                    getattr(node, "module", None) == "threading"
                    for alias in node.names)
            for node in ast.walk(self.tree))
        self._lines = source.splitlines()

    def _parse_suppressions(self) -> dict:
        suppressions: dict = {}
        for lineno, text in self.comments.items():
            match = SUPPRESS_RE.search(text)
            if match:
                rules = {part.strip().upper() if part.strip().lower() != "all"
                         else "all"
                         for part in match.group(1).split(",") if part.strip()}
                suppressions.setdefault(lineno, set()).update(rules)
        return suppressions

    def _parse_guarded_by(self) -> dict:
        guarded: dict = {}
        for lineno, text in self.comments.items():
            match = GUARDED_BY_RE.search(text)
            if match:
                guarded[lineno] = _parse_lock_list(match.group(1))
        return guarded

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return "all" in rules or rule.upper() in rules

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (best-effort, single-line fallback)."""
        text = ast.get_source_segment(self.source, node)
        if text is not None:
            return text
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1].strip()
        return ""


def _module_parts(path: Path) -> tuple:
    parts = list(path.parts)
    anchor = -1
    for i, part in enumerate(parts):
        if part == "repro":
            anchor = i
    if anchor < 0:
        tail = [parts[-1]]
    else:
        tail = parts[anchor + 1:]
    if tail and tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    if tail and tail[-1] == "__init__":
        tail = tail[:-1]
    return tuple(tail)


def _comments_by_line(source: str) -> dict:
    comments: dict = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):
        # ast.parse succeeded, so any trailing tokenizer hiccup is cosmetic;
        # keep whatever comments were collected before it.
        pass
    return comments


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``name``/``severity``/``description`` and override
    :meth:`check`; rules needing whole-tree state (lock-order inversion)
    additionally override :meth:`finalize`, which runs after every module has
    been checked.
    """

    id = "RL000"
    name = "base"
    severity = "error"
    description = ""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext):
        """Yield :class:`Finding` objects for one module."""
        return ()

    def finalize(self):
        """Yield cross-module findings after all modules were checked."""
        return ()


#: ``{rule_id: rule_class}`` — populated by the ``register`` decorator when
#: the rule modules import.
RULE_REGISTRY: dict = {}


def register(cls):
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if cls.id in RULE_REGISTRY and RULE_REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"bad severity {cls.severity!r} for {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list:
    """Registered rule classes, importing the bundled rule modules first."""
    from . import rules_arrays, rules_determinism, rules_locks, rules_storage  # noqa: F401
    return [RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY)]


@dataclass
class LintReport:
    """The outcome of one engine run."""

    findings: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    files: int = 0
    #: ``{rule_id: count}`` of findings silenced by inline suppressions.
    suppressed: dict = field(default_factory=dict)
    #: ``{display_path: count}`` of suppressed findings per file.
    suppressed_by_file: dict = field(default_factory=dict)

    def exit_code(self) -> int:
        if self.errors:
            return 2
        if self.findings:
            return 1
        return 0

    def by_rule(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


class LintEngine:
    """Discovers files, runs every applicable rule, aggregates a report."""

    def __init__(self, select=None, ignore=None):
        classes = all_rules()
        selected = {r.upper() for r in select} if select else None
        ignored = {r.upper() for r in ignore} if ignore else set()
        self.rules = [cls() for cls in classes
                      if (selected is None or cls.id in selected)
                      and cls.id not in ignored]

    @staticmethod
    def discover(paths) -> list:
        """Sorted ``.py`` files under ``paths`` (files accepted verbatim)."""
        files = set()
        for raw in paths:
            path = Path(raw)
            if path.is_file():
                files.add(path)
            elif path.is_dir():
                for candidate in path.rglob("*.py"):
                    if any(part == "__pycache__" or part.startswith(".")
                           for part in candidate.parts):
                        continue
                    files.add(candidate)
        return sorted(files)

    def run(self, paths, root: Path | None = None) -> LintReport:
        report = LintReport()
        if root is None:
            root = Path.cwd()
        for path in self.discover(paths):
            report.files += 1
            try:
                source = path.read_text(encoding="utf-8")
                ctx = ModuleContext(path, source, root=root)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                line = getattr(exc, "lineno", 0) or 0
                report.errors.append(LintError(
                    path=str(path), line=line,
                    message=f"unable to parse: {exc}"))
                continue
            for rule in self.rules:
                if not rule.applies(ctx):
                    continue
                try:
                    candidates = list(rule.check(ctx))
                except Exception as exc:  # rule crash → analyzable error, exit 2
                    report.errors.append(LintError(
                        path=ctx.display_path, line=0, rule=rule.id,
                        message=f"rule crashed: {type(exc).__name__}: {exc}"))
                    continue
                for finding in candidates:
                    if ctx.suppressed(finding.rule, finding.line):
                        report.suppressed[finding.rule] = \
                            report.suppressed.get(finding.rule, 0) + 1
                        report.suppressed_by_file[ctx.display_path] = \
                            report.suppressed_by_file.get(ctx.display_path, 0) + 1
                    else:
                        report.findings.append(finding)
        for rule in self.rules:
            try:
                report.findings.extend(rule.finalize())
            except Exception as exc:
                report.errors.append(LintError(
                    path="<finalize>", line=0, rule=rule.id,
                    message=f"rule crashed: {type(exc).__name__}: {exc}"))
        report.findings.sort(key=Finding.sort_key)
        report.errors.sort(key=lambda e: (e.path, e.line, e.rule))
        return report
