"""Runtime lock-order / deadlock detection for the serving stack.

The static lock-order rule (RL002 in :mod:`repro.analysis.rules_locks`) only
sees acquisitions nested *lexically* inside one function.  Real deadlocks are
usually assembled across call boundaries — thread A holds the engine's
mutation lock and walks into a cache, thread B holds the cache's lock and
calls back up — which is exactly what this module observes at runtime.

:class:`WatchedLock` wraps a plain ``threading.Lock`` under a *name* (a lock
class, in the lockdep sense: every ``LRUCache._lock`` shares one name).  Each
thread keeps a stack of the watched locks it currently holds; acquiring lock
``B`` while holding ``A`` records the directed edge ``A → B`` (with the
acquiring thread and call stack, captured once per distinct edge) into a
process-wide :class:`LockWatchRegistry`.  Before every acquisition the
registry checks whether the new edges close a cycle in the graph — the
signature of a potential ABBA deadlock — and records a
:class:`Violation` (or raises :class:`LockOrderError` in strict mode) *even
when the run happens not to interleave fatally*.

Instrumentation is **opt-in** and free when off: every lock in the serving
stack is created through :func:`named_lock`, which returns a stock
``threading.Lock`` unless watching is enabled via the environment variable
``REPRO_LOCKWATCH`` (``1`` to record, ``strict`` to raise at the violating
acquisition) or programmatically via :func:`enable` (used by the tests).

Because identity is per lock *name*, two distinct instances of the same
class's lock map onto one node.  That is the standard lockdep trade-off: it
lets a single test run prove an ordering discipline for every future
instance, at the cost of flagging deliberate same-class nesting (none exists
in this codebase) as a self-cycle.

This module deliberately imports nothing from ``repro`` — it sits below
every layer that uses it.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass

#: Environment toggle: unset/``0``/``false``/``off`` → disabled;
#: ``strict`` → enabled and raising; anything else truthy → enabled, recording.
ENV_VAR = "REPRO_LOCKWATCH"

_STACK_LIMIT = 16


class LockOrderError(RuntimeError):
    """A lock-ordering cycle was observed (potential deadlock)."""


@dataclass
class LockEdge:
    """``source`` was held while ``target`` was acquired, ``count`` times."""

    source: str
    target: str
    count: int = 0
    thread: str = ""
    #: Call stack of the first acquisition that created this edge
    #: (``file:line in function`` strings, innermost last).
    stack: tuple = ()


@dataclass(frozen=True)
class Violation:
    """One detected ordering cycle.

    ``cycle`` is the closed path of lock names (first == last); ``edges``
    are the recorded :class:`LockEdge` objects along it, whose stacks show
    where each ordering was established.
    """

    cycle: tuple
    edges: tuple
    thread: str

    def describe(self) -> str:
        lines = [f"lock-order cycle {' -> '.join(self.cycle)} "
                 f"(closed by thread {self.thread!r})"]
        for edge in self.edges:
            lines.append(f"  {edge.source} -> {edge.target} "
                         f"(x{edge.count}, first by {edge.thread!r})")
            for frame in edge.stack[-4:]:
                lines.append(f"    {frame}")
        return "\n".join(lines)


class LockWatchRegistry:
    """Process-wide acquisition-order graph with cycle detection."""

    def __init__(self):
        self._mutex = threading.Lock()
        self._edges: dict = {}          # guarded-by: _mutex
        self._violations: list = []     # guarded-by: _mutex
        self._acquisitions = 0          # guarded-by: _mutex
        self._tls = threading.local()

    # ------------------------------------------------------------------ per-thread state

    def _held(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_locks(self) -> tuple:
        """Names of the watched locks the calling thread currently holds."""
        return tuple(self._held())

    # ------------------------------------------------------------------ acquisition hooks

    def before_acquire(self, name: str, strict: bool = False) -> None:
        """Record ordering edges for acquiring ``name``; detect cycles.

        Called *before* the underlying acquire so a genuinely deadlocking
        interleaving still leaves its evidence in the registry.
        """
        held = self._held()
        if not held:
            return  # leaf acquisition: nothing to order against
        thread = threading.current_thread().name
        with self._mutex:
            self._acquisitions += 1
            fresh_stack = None
            for source in held:
                key = (source, name)
                edge = self._edges.get(key)
                if edge is None:
                    if fresh_stack is None:
                        fresh_stack = _capture_stack()
                    edge = LockEdge(source=source, target=name,
                                    thread=thread, stack=fresh_stack)
                    self._edges[key] = edge
                edge.count += 1
            cycle = self._find_cycle_locked(name, held)
            if cycle is not None:
                edges = tuple(self._edges[(a, b)]
                              for a, b in zip(cycle, cycle[1:])
                              if (a, b) in self._edges)
                violation = Violation(cycle=tuple(cycle), edges=edges,
                                      thread=thread)
                self._violations.append(violation)
                if strict:
                    raise LockOrderError(violation.describe())

    def after_acquire(self, name: str) -> None:
        self._held().append(name)

    def note_release(self, name: str) -> None:
        held = self._held()
        # Remove the most recent acquisition of this name (locks are
        # typically released LIFO, but out-of-order release is legal).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    def _find_cycle_locked(self, start: str, held: list):  # guarded-by: _mutex
        """A cycle through ``start`` closed by a currently held lock, or None.

        Acquiring ``start`` while holding ``h`` adds the edge ``h → start``;
        a cycle therefore exists iff some path ``start →* h`` already exists
        in the recorded graph.  Returns the closed path ``[h, start, .., h]``.
        """
        targets = {}
        for (a, b) in self._edges:
            targets.setdefault(a, []).append(b)
        held_set = set(held)
        # DFS from start, remembering the path; first held lock reached wins.
        path = [start]
        seen = set()

        def dfs(node):
            for nxt in sorted(targets.get(node, ())):
                if nxt in held_set and nxt != start:
                    path.append(nxt)
                    return True
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                if dfs(nxt):
                    return True
                path.pop()
            return False

        if start in held_set:  # re-acquiring a held (same-named) lock
            return [start, start]
        if dfs(start):
            closing = path[-1]
            return [closing] + path
        return None

    # ------------------------------------------------------------------ introspection

    def edges(self) -> list:
        with self._mutex:
            return sorted(self._edges.values(),
                          key=lambda e: (e.source, e.target))

    def graph(self) -> dict:
        """``{source: sorted targets}`` adjacency snapshot."""
        adjacency: dict = {}
        for edge in self.edges():
            adjacency.setdefault(edge.source, []).append(edge.target)
        return adjacency

    @property
    def violations(self) -> list:
        with self._mutex:
            return list(self._violations)

    @property
    def acquisitions(self) -> int:
        with self._mutex:
            return self._acquisitions

    def cycles(self) -> list:
        """Every elementary ordering cycle currently present in the graph."""
        adjacency = self.graph()
        cycles = []
        seen_keys = set()
        for origin in sorted(adjacency):
            path = [origin]
            on_path = {origin}

            def dfs(node):
                for nxt in adjacency.get(node, ()):
                    if nxt == origin:
                        key = frozenset(path)
                        if key not in seen_keys:
                            seen_keys.add(key)
                            cycles.append(tuple(path + [origin]))
                    elif nxt not in on_path and nxt > origin:
                        path.append(nxt)
                        on_path.add(nxt)
                        dfs(nxt)
                        on_path.discard(nxt)
                        path.pop()

            dfs(origin)
        return cycles

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderError` if any ordering cycle was observed."""
        problems = self.violations
        cycles = self.cycles()
        if not problems and not cycles:
            return
        details = [v.describe() for v in problems]
        details.extend(f"graph cycle: {' -> '.join(c)}" for c in cycles)
        raise LockOrderError("\n".join(details))

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._violations.clear()
            self._acquisitions = 0


def _capture_stack() -> tuple:
    frames = traceback.extract_stack(limit=_STACK_LIMIT)
    # Drop the lockwatch frames themselves (innermost two).
    return tuple(f"{f.filename}:{f.lineno} in {f.name}" for f in frames[:-2])


class WatchedLock:
    """A ``threading.Lock`` recording acquisition order into a registry.

    API-compatible with ``threading.Lock`` for the operations the codebase
    uses (``acquire``/``release``/context manager/``locked``).  It also
    implements ``_is_owned`` so ``threading.Condition`` can wrap a watched
    lock: without it, the Condition's ownership probe (a non-blocking
    ``acquire`` while the lock is held) would register as a same-name
    re-acquisition — a false self-cycle in the ordering graph.
    """

    __slots__ = ("name", "_inner", "_registry", "_strict", "_owner")

    def __init__(self, name: str, registry: LockWatchRegistry | None = None,
                 strict: bool | None = None):
        self.name = name
        self._inner = threading.Lock()
        self._registry = registry if registry is not None else _REGISTRY
        self._strict = is_strict() if strict is None else strict
        self._owner: int | None = None  # thread ident while held

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._registry.before_acquire(self.name, strict=self._strict)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._registry.after_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._owner = None
        self._inner.release()
        self._registry.note_release(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        """Whether the calling thread holds this lock (Condition support)."""
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WatchedLock({self.name!r}, locked={self.locked()})"


# ---------------------------------------------------------------------- module state

_REGISTRY = LockWatchRegistry()
_FORCED: bool | None = None
_FORCED_STRICT: bool | None = None


def registry() -> LockWatchRegistry:
    """The process-wide registry all :func:`named_lock` locks report into."""
    return _REGISTRY


def enabled() -> bool:
    """Whether newly created :func:`named_lock` locks are instrumented."""
    if _FORCED is not None:
        return _FORCED
    value = os.environ.get(ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "off")


def is_strict() -> bool:
    """Whether a detected cycle raises at the acquisition site."""
    if _FORCED_STRICT is not None:
        return _FORCED_STRICT
    return os.environ.get(ENV_VAR, "").strip().lower() == "strict"


def enable(strict: bool = False) -> LockWatchRegistry:
    """Programmatically turn watching on (tests); returns the registry."""
    global _FORCED, _FORCED_STRICT
    _FORCED = True
    _FORCED_STRICT = strict
    return _REGISTRY


def disable() -> None:
    """Undo :func:`enable`, reverting to the environment variable."""
    global _FORCED, _FORCED_STRICT
    _FORCED = None
    _FORCED_STRICT = None


def named_lock(name: str):
    """A lock for ``name``: plain ``threading.Lock`` unless watching is on.

    Every correctness-critical lock of the stack is created through this
    factory, so setting ``REPRO_LOCKWATCH=1`` instruments the entire serving
    path without touching a line of engine code.
    """
    if enabled():
        return WatchedLock(name, _REGISTRY)
    return threading.Lock()
