"""Command-line front-end: ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean, 1 findings, 2 crashes/unparseable files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import LintEngine, all_rules
from .reporters import render_human, render_json


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` arguments to ``parser`` (shared with repro CLI)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="report format for stdout")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="also write the report to FILE "
                             "(same format as --format)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")


def _split_rules(raw):
    if not raw:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.id}  {cls.name:<26} [{cls.severity}]  "
                  f"{cls.description}")
        return 0
    engine = LintEngine(select=_split_rules(args.select),
                        ignore=_split_rules(args.ignore))
    report = engine.run(args.paths, root=Path.cwd())
    rendered = (render_json(report) if args.format == "json"
                else render_human(report))
    print(rendered)
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
    return report.exit_code()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static analyzer for the repro tree.")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
