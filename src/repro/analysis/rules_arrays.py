"""Array-discipline rules: RL003 explicit dtypes, RL004 codes immutability."""

from __future__ import annotations

import ast

from .core import Finding, ModuleContext, Rule, register

#: Top-level packages whose array constructors are on the serving hot path
#: and feed byte-identical-output guarantees.
KERNEL_PACKAGES = ("dataframe", "plan", "mining", "causal")

#: ``np.<ctor>`` → index of the positional ``dtype`` parameter.
_DTYPE_POSITION = {"array": 1, "zeros": 1, "empty": 1, "full": 2}

#: The two private attributes that make up a Column's dictionary encoding.
ENCODING_ATTRS = ("_codes", "_vocab")

#: ndarray methods that mutate in place.
MUTATING_METHODS = ("sort", "fill", "put", "resize", "partition", "itemset",
                    "setfield", "byteswap", "setflags")


@register
class DtypeDisciplineRule(Rule):
    """RL003: kernel-module array constructors must pass an explicit dtype.

    ``np.array``/``np.zeros``/``np.empty``/``np.full`` default dtypes depend
    on input inference (and, for ``array``, on the platform for ints), which
    silently widens or narrows kernel intermediates.  In the kernel packages
    every constructor states its dtype, positionally or by keyword.
    """

    id = "RL003"
    name = "dtype-discipline"
    severity = "warning"
    description = ("numpy array constructor in a kernel module without an "
                   "explicit dtype")

    def applies(self, ctx: ModuleContext) -> bool:
        return bool(ctx.module) and ctx.module[0] in KERNEL_PACKAGES

    def check(self, ctx: ModuleContext):
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                    and func.attr in _DTYPE_POSITION):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > _DTYPE_POSITION[func.attr]:
                continue  # dtype passed positionally
            findings.append(Finding(
                rule=self.id, severity=self.severity,
                path=ctx.display_path, line=node.lineno, col=node.col_offset,
                message=(f"`np.{func.attr}` without explicit `dtype=` in "
                         f"kernel module; default dtype inference breaks "
                         f"byte-stability")))
        return findings


@register
class EncodingImmutabilityRule(Rule):
    """RL004: ``_codes``/``_vocab`` are immutable outside ``dataframe/column``.

    The dictionary encoding (int32 codes + sorted vocab) is shared across
    masks, caches, and persisted shards; the only module allowed to write it
    is the one that constructs it.  Reads are fine anywhere — this rule
    flags assignments, deletions, and in-place ndarray mutators.
    """

    id = "RL004"
    name = "encoding-immutability"
    severity = "error"
    description = ("write or in-place mutation of Column._codes/_vocab "
                   "outside dataframe/column.py")

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.module != ("dataframe", "column")

    def check(self, ctx: ModuleContext):
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    hit = _encoding_attr(target)
                    if hit is not None:
                        findings.append(self._finding(
                            ctx, target, f"assignment to `{hit}`"))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    hit = _encoding_attr(target)
                    if hit is not None:
                        findings.append(self._finding(
                            ctx, target, f"deletion of `{hit}`"))
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS):
                    hit = _encoding_attr(func.value)
                    if hit is not None:
                        findings.append(self._finding(
                            ctx, node,
                            f"in-place `{func.attr}()` on `{hit}`"))
        return findings

    def _finding(self, ctx, node, what) -> Finding:
        return Finding(
            rule=self.id, severity=self.severity, path=ctx.display_path,
            line=node.lineno, col=node.col_offset,
            message=(f"{what}: the dictionary encoding is immutable outside "
                     f"dataframe/column.py"))


def _encoding_attr(node: ast.expr):
    """``"_codes"``/``"_vocab"`` if ``node`` names an encoding attribute
    (directly or through one subscript level), else ``None``.

    Callers only pass write targets and mutator-call receivers, so a match
    is a violation by construction; plain reads never reach this helper.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in ENCODING_ATTRS:
        return node.attr
    return None
