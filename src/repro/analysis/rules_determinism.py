"""RL006: determinism of the fingerprint-feeding modules.

``LogicalPlan.fingerprint`` / ``where_key`` / ``normalize_query`` are the
cache keys of the whole serving stack; two processes must derive identical
keys for identical logical inputs.  Any dict-order-dependent iteration,
``id()``, wall clock, or randomness in the modules that feed them silently
breaks cross-process cache sharing and the repro's byte-identical-output
claim, so those modules ban the constructs outright.
"""

from __future__ import annotations

import ast

from .core import Finding, ModuleContext, Rule, register

#: Modules whose outputs feed fingerprint/where_key/normalize.
DETERMINISM_MODULES = (
    ("plan", "ir"),
    ("sql", "normalize"),
    ("dataframe", "predicates"),
)

#: Importing any of these into a fingerprint-feeding module is a finding.
_BANNED_MODULES = ("time", "random", "uuid")

_DICT_VIEWS = ("keys", "values", "items")

#: Iteration wrapped in any of these is order-independent.
_ORDERING_WRAPPERS = ("sorted", "set", "frozenset", "len", "min", "max", "sum")


@register
class FingerprintDeterminismRule(Rule):
    id = "RL006"
    name = "fingerprint-determinism"
    severity = "error"
    description = ("non-deterministic construct (dict-order iteration, id(), "
                   "time, random) in a fingerprint-feeding module")

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.module in DETERMINISM_MODULES

    def check(self, ctx: ModuleContext):
        findings = []
        sorted_wrapped = self._ordering_wrapped_calls(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._check_import(ctx, node, findings)
            elif isinstance(node, ast.Call):
                self._check_call(ctx, node, findings)
            elif isinstance(node, ast.Attribute):
                if (isinstance(node.value, ast.Name)
                        and node.value.id in ("np", "numpy")
                        and node.attr == "random"):
                    findings.append(self._finding(
                        ctx, node, "`np.random` used"))
            elif isinstance(node, ast.For):
                self._check_iteration(ctx, node.iter, sorted_wrapped, findings)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_iteration(ctx, gen.iter, sorted_wrapped,
                                          findings)
        return findings

    @staticmethod
    def _ordering_wrapped_calls(tree) -> set:
        """id()s of Call nodes that sit directly inside ``sorted(...)`` etc."""
        wrapped = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDERING_WRAPPERS):
                for arg in node.args:
                    wrapped.add(id(arg))
        return wrapped

    def _check_import(self, ctx, node, findings):
        if isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _BANNED_MODULES:
                findings.append(self._finding(
                    ctx, node, f"import from `{node.module}`"))
            return
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _BANNED_MODULES:
                findings.append(self._finding(
                    ctx, node, f"import of `{alias.name}`"))

    def _check_call(self, ctx, node, findings):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "id":
            findings.append(self._finding(
                ctx, node, "`id()` is process-specific"))
        elif (isinstance(func, ast.Attribute)
              and isinstance(func.value, ast.Name)
              and func.value.id in _BANNED_MODULES):
            findings.append(self._finding(
                ctx, node, f"`{func.value.id}.{func.attr}()` call"))

    def _check_iteration(self, ctx, iter_expr, sorted_wrapped, findings):
        if not isinstance(iter_expr, ast.Call):
            return
        func = iter_expr.func
        if not (isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS
                and not iter_expr.args and not iter_expr.keywords):
            return
        if id(iter_expr) in sorted_wrapped:
            return
        findings.append(self._finding(
            ctx, iter_expr,
            f"iteration over `.{func.attr}()` without `sorted(...)`"))

    def _finding(self, ctx, node, what) -> Finding:
        return Finding(
            rule=self.id, severity=self.severity, path=ctx.display_path,
            line=node.lineno, col=node.col_offset,
            message=(f"{what} in a fingerprint-feeding module; cache keys "
                     f"must be deterministic across processes"))
