"""RL005: atomic-commit discipline in ``repro.storage``.

Two sub-checks, both scoped to functions in the storage package:

* **Write-mode opens** must be crash-safe.  A function that opens a file for
  writing is exempt when it also calls ``os.replace`` (the tmp-file +
  rename idiom), takes a file lock via ``fcntl.flock`` (append-log
  protocol), or writes to a path handed in verbatim as a parameter (the
  ``write_shard(path, ...)`` contract, where the *caller* does the rename).
  A path expression mentioning the manifest is never parameter-exempt: the
  manifest is the commit point, so its writer must itself ``os.replace``.

* **Commit ordering** (CFG approximation): inside any function that calls
  ``commit_manifest``, every shard-producing call (``write_shard`` /
  ``_write_shard`` / ``os.replace``) must appear on an earlier line than the
  first commit — data must be durable before the manifest names it.
"""

from __future__ import annotations

import ast

from .core import Finding, ModuleContext, Rule, register

_WRITE_MODE_CHARS = set("wax+")

#: Calls that produce shard data and must precede the manifest commit.
_SHARD_WRITERS = ("write_shard", "_write_shard")


def _call_name(node: ast.Call):
    """Dotted name of a call: ``os.replace`` -> ("os", "replace")."""
    func = node.func
    if isinstance(func, ast.Name):
        return (func.id,)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    if isinstance(func, ast.Attribute):
        return ("?", func.attr)
    return ()


def _literal_mode(node: ast.Call):
    """The mode string of an ``open`` call if literal, else ``None``."""
    for i, arg in enumerate(node.args):
        if i == 1 and isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    for kw in node.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    if isinstance(node.func, ast.Attribute) and node.args:
        # Path.open(mode) style: mode is the first argument.
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _unwrap_path(expr: ast.expr):
    """Strip a single ``Path(...)`` wrapper, returning the inner expression."""
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id == "Path" and len(expr.args) == 1):
        return expr.args[0]
    return expr


@register
class AtomicCommitRule(Rule):
    id = "RL005"
    name = "atomic-commit"
    severity = "error"
    description = ("storage write without tmp-file + os.replace protection, "
                   "or shard write ordered after the manifest commit")

    def applies(self, ctx: ModuleContext) -> bool:
        return bool(ctx.module) and ctx.module[0] == "storage"

    def check(self, ctx: ModuleContext):
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(ctx, node, findings)
        return findings

    def _check_function(self, ctx, func, findings):
        has_replace = False
        has_flock = False
        commit_lines = []
        writer_lines = []
        calls = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                calls.append(node)
                name = _call_name(node)
                if name == ("os", "replace"):
                    has_replace = True
                    writer_lines.append(node.lineno)
                elif name == ("fcntl", "flock"):
                    has_flock = True
                elif name and name[-1] == "commit_manifest":
                    commit_lines.append(node.lineno)
                elif name and name[-1] in _SHARD_WRITERS:
                    writer_lines.append(node.lineno)

        params = {arg.arg for arg in func.args.args}
        params.update(arg.arg for arg in func.args.kwonlyargs)
        params.update(arg.arg for arg in func.args.posonlyargs)

        for call in calls:
            path_expr = self._write_target(call)
            if path_expr is None:
                continue
            segment = ctx.segment(path_expr).lower()
            manifestish = "manifest" in segment
            if has_replace or has_flock:
                continue
            if not manifestish and self._is_bare_param(path_expr, params):
                # write_shard(path, ...) contract: caller renames.
                continue
            what = ("manifest path written" if manifestish
                    else "file opened for writing")
            findings.append(Finding(
                rule=self.id, severity=self.severity, path=ctx.display_path,
                line=call.lineno, col=call.col_offset,
                message=(f"{what} without tmp-file + `os.replace` in "
                         f"`{func.name}`; a crash here leaves a torn file")))

        if commit_lines and writer_lines:
            first_commit = min(commit_lines)
            late = [line for line in writer_lines if line > first_commit]
            for line in late:
                findings.append(Finding(
                    rule=self.id, severity=self.severity,
                    path=ctx.display_path, line=line, col=0,
                    message=(f"shard write at line {line} ordered after the "
                             f"manifest commit at line {first_commit} in "
                             f"`{func.name}`; the manifest must never name "
                             f"data that is not yet durable")))

    @staticmethod
    def _write_target(call: ast.Call):
        """The path expression of a write-mode call, or ``None``."""
        name = _call_name(call)
        if not name:
            return None
        tail = name[-1]
        if tail == "open":
            mode = _literal_mode(call)
            if mode is None:
                # plain open() defaults to read mode
                return None
            if not (_WRITE_MODE_CHARS & set(mode)):
                return None
            if isinstance(call.func, ast.Name):  # builtin open(path, mode)
                return call.args[0] if call.args else None
            return call.func.value  # path.open(mode)
        if tail in ("write_text", "write_bytes"):
            if isinstance(call.func, ast.Attribute):
                return call.func.value
            return None
        if name == ("json", "dump") and len(call.args) >= 2:
            return call.args[1]  # the file object expression
        return None

    @staticmethod
    def _is_bare_param(path_expr: ast.expr, params) -> bool:
        inner = _unwrap_path(path_expr)
        return isinstance(inner, ast.Name) and inner.id in params
