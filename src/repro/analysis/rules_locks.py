"""Lock-discipline rules: RL001 guarded-by and RL002 static lock ordering."""

from __future__ import annotations

import ast

from .core import Finding, ModuleContext, Rule, register

#: A ``with`` item counts as a lock acquisition when its name looks like one.
_LOCKISH = ("lock", "mutex")


def _lockish(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _LOCKISH)


def _with_item_lock_name(expr: ast.expr):
    """The attribute/variable name a ``with`` item acquires, or ``None``.

    Handles ``self._lock``, bare ``lock`` names, and calls such as
    ``self._guard()`` / ``_append_lock(path)`` (contextmanager-style locks).
    """
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_self_attr(expr: ast.expr):
    if isinstance(expr, ast.Call):
        expr = expr.func
    return (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name) and expr.value.id == "self")


@register
class GuardedByRule(Rule):
    """RL001: annotated attributes only touched under their declared lock.

    An attribute assignment carrying ``# guarded-by: <lock>`` declares that
    every read or write of ``self.<attr>`` (outside ``__init__``) must sit
    lexically inside ``with self.<lock>``.  A ``# guarded-by:`` comment on a
    ``def`` line declares locks the *caller* holds, seeding the held set for
    that method (the ``_foo_locked`` helper convention).
    """

    id = "RL001"
    name = "guarded-by"
    severity = "error"
    description = ("guarded-by annotated attribute accessed outside its "
                   "``with self.<lock>`` block")

    #: Constructors establish invariants before the object is shared.
    EXEMPT_METHODS = ("__init__", "__new__")

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.imports_threading and bool(ctx.guarded_lines)

    def check(self, ctx: ModuleContext):
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                guarded = self._collect_guarded(ctx, node)
                if guarded:
                    self._check_class(ctx, node, guarded, findings)
        return findings

    def _collect_guarded(self, ctx: ModuleContext, cls: ast.ClassDef) -> dict:
        """``{attr: (lock, ...)}`` from annotated assignments in ``cls``."""
        guarded: dict = {}
        for node in ast.walk(cls):
            locks = ctx.guarded_lines.get(getattr(node, "lineno", -1))
            if not locks:
                continue
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    guarded[target.attr] = locks
                elif isinstance(target, ast.Name):
                    # class-level field (dataclass style)
                    guarded[target.id] = locks
        return guarded

    def _check_class(self, ctx, cls, guarded, findings):
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in self.EXEMPT_METHODS:
                continue
            held = set(ctx.guarded_lines.get(stmt.lineno, ()))
            self._walk(ctx, stmt.body, guarded, held, findings)

    def _walk(self, ctx, stmts, guarded, held, findings):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function may run on another thread; only its own
                # def-line annotation vouches for held locks.
                inner = set(ctx.guarded_lines.get(stmt.lineno, ()))
                self._walk(ctx, stmt.body, guarded, inner, findings)
                continue
            if isinstance(stmt, ast.With):
                acquired = []
                for item in stmt.items:
                    name = _with_item_lock_name(item.context_expr)
                    if name is not None and name not in held:
                        acquired.append(name)
                    self._scan_expr(ctx, item.context_expr, guarded, held,
                                    findings)
                held |= set(acquired)
                self._walk(ctx, stmt.body, guarded, held, findings)
                held -= set(acquired)
                continue
            for expr in _statement_exprs(stmt):
                self._scan_expr(ctx, expr, guarded, held, findings)
            for body in _statement_bodies(stmt):
                self._walk(ctx, body, guarded, held, findings)

    def _scan_expr(self, ctx, expr, guarded, held, findings):
        if expr is None:
            return
        # Note: ast.walk descends into lambdas too; a guarded access inside a
        # closure is flagged, which is the conservative (correct) choice —
        # the closure may run on another thread.
        for node in ast.walk(expr):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded):
                locks = guarded[node.attr]
                if not any(lock in held for lock in locks):
                    want = " or ".join(f"self.{lock}" for lock in locks)
                    findings.append(Finding(
                        rule=self.id, severity=self.severity,
                        path=ctx.display_path, line=node.lineno,
                        col=node.col_offset,
                        message=(f"`self.{node.attr}` is guarded by {want} "
                                 f"but accessed outside a `with {want}` "
                                 f"block")))


def _statement_exprs(stmt):
    """Expressions evaluated directly by ``stmt`` (not nested statements)."""
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item


def _statement_bodies(stmt):
    for attr in ("body", "orelse", "finalbody"):
        body = getattr(stmt, attr, None)
        if body:
            yield body
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


@register
class LockOrderRule(Rule):
    """RL002: no lock pair may be acquired in both orders anywhere in the tree.

    Nested ``with`` statements (and multi-item ``with a, b:``) define the
    static acquisition order.  Lock identity is ``Class.attr`` for ``self``
    attributes so that every ``LRUCache._lock`` instance — wherever the
    acquiring code lives — maps onto one node, the same convention the
    runtime lockwatch uses; module-level locks are module-scoped.  Edges
    accumulate across all checked modules; :meth:`finalize` reports every
    pair observed in both orders, citing both locations.  Acquiring the same
    lock identity twice in one nest is reported immediately (self-deadlock
    with non-reentrant ``threading.Lock``).
    """

    id = "RL002"
    name = "lock-order"
    severity = "error"
    description = "inconsistent nested lock acquisition order (ABBA deadlock)"

    def __init__(self):
        #: ``{(outer, inner): (path, line, suppressed)}`` — first occurrence.
        self._edges: dict = {}

    def check(self, ctx: ModuleContext):
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_function(ctx, node, findings)
        return findings

    def _walk_function(self, ctx, func, findings):
        class_name = self._enclosing_class(ctx.tree, func)
        self._walk(ctx, func.body, [], class_name, findings)

    @staticmethod
    def _enclosing_class(tree, func):
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                return node.name
        return None

    def _identity(self, ctx, expr, class_name):
        name = _with_item_lock_name(expr)
        if name is None or not _lockish(name):
            return None
        if _is_self_attr(expr):
            owner = class_name or "<module>"
            return f"{owner}.{name}"
        module = ".".join(ctx.module) or ctx.display_path
        return f"{module}.{name}"

    def _walk(self, ctx, stmts, held, class_name, findings):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested function: a fresh call context (no lexically held
                # locks are guaranteed when it eventually runs).
                self._walk(ctx, stmt.body, [], class_name, findings)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._walk(ctx, stmt.body, [], stmt.name, findings)
                continue
            if isinstance(stmt, ast.With):
                acquired = []
                for item in stmt.items:
                    ident = self._identity(ctx, item.context_expr, class_name)
                    if ident is None:
                        continue
                    lineno = item.context_expr.lineno
                    suppressed = ctx.suppressed(self.id, lineno)
                    if ident in held or ident in acquired:
                        finding = Finding(
                            rule=self.id, severity=self.severity,
                            path=ctx.display_path, line=lineno,
                            col=item.context_expr.col_offset,
                            message=(f"lock `{ident}` acquired while already "
                                     f"held (non-reentrant self-deadlock)"))
                        if not suppressed:
                            findings.append(finding)
                    for outer in held + acquired:
                        key = (outer, ident)
                        if key not in self._edges:
                            self._edges[key] = (ctx.display_path, lineno,
                                                suppressed)
                    acquired.append(ident)
                self._walk(ctx, stmt.body, held + acquired, class_name,
                           findings)
                continue
            for body in _statement_bodies(stmt):
                self._walk(ctx, body, held, class_name, findings)

    def finalize(self):
        findings = []
        for (a, b), (path, line, suppressed) in sorted(self._edges.items()):
            if a >= b:
                continue  # report each unordered pair once, from (a, b)
            reverse = self._edges.get((b, a))
            if reverse is None:
                continue
            r_path, r_line, r_suppressed = reverse
            if suppressed or r_suppressed:
                continue
            findings.append(Finding(
                rule=self.id, severity=self.severity, path=path, line=line,
                col=0,
                message=(f"locks `{a}` and `{b}` are acquired in both orders: "
                         f"`{a}` -> `{b}` here but `{b}` -> `{a}` at "
                         f"{r_path}:{r_line} (ABBA deadlock)")))
        return findings
