"""Project-invariant static analysis and runtime lock-order detection.

Static side: an AST lint engine (:mod:`repro.analysis.core`) with six
project rules —

========  ===========================  ==============================================
RL001     guarded-by                   annotated attributes only under their lock
RL002     lock-order                   no lock pair acquired in both orders
RL003     dtype-discipline             explicit dtypes in kernel array constructors
RL004     encoding-immutability        no ``_codes``/``_vocab`` writes outside column.py
RL005     atomic-commit                storage writes go through tmp + ``os.replace``
RL006     fingerprint-determinism      no order/time/randomness in cache-key modules
========  ===========================  ==============================================

— run via ``repro lint`` or ``python -m repro.analysis``.

Runtime side: :mod:`repro.analysis.lockwatch`, an opt-in instrumented lock
(``REPRO_LOCKWATCH=1``) recording the acquisition-order graph with cycle
detection across every lock the serving stack creates via
:func:`~repro.analysis.lockwatch.named_lock`.
"""

from .core import (
    Finding,
    LintEngine,
    LintError,
    LintReport,
    ModuleContext,
    Rule,
    all_rules,
    register,
)
from .lockwatch import (
    LockOrderError,
    LockWatchRegistry,
    WatchedLock,
    named_lock,
    registry,
)
from .reporters import render_human, render_json

__all__ = [
    "Finding",
    "LintEngine",
    "LintError",
    "LintReport",
    "LockOrderError",
    "LockWatchRegistry",
    "ModuleContext",
    "Rule",
    "WatchedLock",
    "all_rules",
    "named_lock",
    "register",
    "registry",
    "render_human",
    "render_json",
]
