"""Human and JSON renderings of a :class:`~repro.analysis.core.LintReport`.

The JSON form is the CI artifact: stable-sorted (findings by location, keys
alphabetical) so consecutive runs diff cleanly.
"""

from __future__ import annotations

import json

from .core import LintReport

JSON_FORMAT_VERSION = 1


def render_human(report: LintReport) -> str:
    lines = []
    for error in report.errors:
        lines.append(error.render())
    for finding in report.findings:
        lines.append(finding.render())
    by_rule = report.by_rule()
    suppressed_total = sum(report.suppressed.values())
    summary = (f"{report.files} file(s) checked: "
               f"{len(report.findings)} finding(s), "
               f"{len(report.errors)} error(s), "
               f"{suppressed_total} suppressed")
    if by_rule:
        breakdown = ", ".join(f"{rule}={count}"
                              for rule, count in sorted(by_rule.items()))
        summary += f" [{breakdown}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "format_version": JSON_FORMAT_VERSION,
        "files": report.files,
        "findings": [f.to_dict() for f in report.findings],
        "errors": [e.to_dict() for e in report.errors],
        "summary": {
            "total": len(report.findings),
            "errors": len(report.errors),
            "by_rule": dict(sorted(report.by_rule().items())),
            "suppressed": dict(sorted(report.suppressed.items())),
            "suppressed_by_file": dict(
                sorted(report.suppressed_by_file.items())),
        },
        "exit_code": report.exit_code(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
