"""Shard files: uncompressed ``.npz`` archives, written once, memory-mapped.

One shard holds one array per column — ``float64`` data for numeric columns,
``int32`` *store codes* for categorical columns (codes into the dataset's
append-only store vocabulary, so a shard never needs rewriting when later
appends extend the vocabulary).

``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for ``.npz``
archives (it only memory-maps bare ``.npy`` files), so :func:`open_shard`
implements the mapping itself: because the archive is written *uncompressed*
(``np.savez``), every member's raw bytes sit contiguously in the file, and
each array can be exposed as a ``np.memmap`` at the member's data offset —
zero copies, no page touched until rows are actually read.  Anything
unexpected (compressed members, pickled objects, exotic npy versions) falls
back to a plain eager ``np.load``.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.analysis.lockwatch import named_lock
from repro.storage.format import StorageError

# CPython 3.11's ``ast`` module keeps its object-construction recursion
# counter in *module* state, so concurrent ``compile()`` calls (numpy parses
# every npy member header through ``ast.literal_eval``) can corrupt it and
# raise ``SystemError: AST constructor recursion depth mismatch``.  Shard
# opens run on the morsel pool, so serialize them; an open is header reads
# only — no data copy — and costs microseconds under the lock.
_OPEN_LOCK = named_lock("shard._npy_header_lock")


def pack_bitmap(mask: np.ndarray) -> dict:
    """Serialize a boolean row mask as a manifest-inline packed bitmap.

    ``np.packbits`` + base64 keeps a shard's bitmap at ~n_rows/8 bytes
    (~4/3 of that once base64-encoded) — small enough to ride inside the
    manifest JSON through the same atomic commit as zone maps and column
    stats, so bitmap indexes need no extra files or commit protocol.
    """
    import base64

    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise StorageError("bitmap masks must be one-dimensional")
    packed = np.packbits(mask.astype(np.uint8, copy=False))
    return {
        "bits": base64.b64encode(packed.tobytes()).decode("ascii"),
        "n_rows": int(mask.size),
        "matches": int(np.count_nonzero(mask)),
        "nbytes": int(packed.nbytes),
    }


def unpack_bitmap(spec: dict) -> np.ndarray:
    """Inverse of :func:`pack_bitmap`: a read-only boolean mask."""
    import base64

    n_rows = int(spec["n_rows"])
    raw = base64.b64decode(spec["bits"])
    if len(raw) * 8 < n_rows:
        raise StorageError("bitmap shorter than its declared row count")
    packed = np.frombuffer(raw, dtype=np.uint8)
    mask = np.unpackbits(packed, count=n_rows).astype(bool)
    mask.setflags(write=False)
    return mask


def write_shard(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Write column arrays as an uncompressed ``.npz`` (not yet committed).

    The caller is responsible for atomic placement (write to a temp name and
    ``os.replace``) and for recording the shard in the manifest.
    """
    if not arrays:
        raise StorageError("a shard needs at least one column array")
    for name, array in arrays.items():
        if array.dtype == object:
            raise StorageError(f"column {name!r}: object arrays cannot be "
                               "stored (vocabularies live in the manifest)")
    with Path(path).open("wb") as handle:
        np.savez(handle, **arrays)


def open_shard(source, mmap: bool = True) -> dict[str, np.ndarray]:
    """Open a shard, returning ``{column name: array}``.

    ``source`` is a path or an already-open binary file object.  With an
    open file object the members are mapped *through that descriptor*, so
    the arrays stay readable even after the path is unlinked — POSIX keeps
    the inode alive while a descriptor or mapping references it.  That is
    exactly the window a concurrent compaction opens for readers holding a
    pre-compaction manifest, which is why :meth:`StoredDataset.load_table`
    opens every shard's descriptor eagerly and hands it to the lazy handle.

    With ``mmap=True`` (the default) arrays are read-only ``np.memmap`` views
    into the archive — opening a shard costs a few header reads, not a data
    copy.  Falls back to an eager load when the archive cannot be mapped.
    """
    if hasattr(source, "read"):
        with _OPEN_LOCK:
            if mmap:
                try:
                    source.seek(0)
                    return _mmap_npz(source)
                except (StorageError, OSError, ValueError):
                    pass  # fall back to the eager loader below
            source.seek(0)
            with np.load(source, allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
    with Path(source).open("rb") as handle:
        # The mappings outlive the descriptor: mmap(2) holds its own
        # reference to the inode, so closing the handle here is safe.
        return open_shard(handle, mmap=mmap)


def _mmap_npz(handle) -> dict[str, np.ndarray]:
    """Memory-map every member of an uncompressed ``.npz`` archive."""
    label = Path(str(getattr(handle, "name", "<shard>"))).name
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(handle) as archive:  # file object stays open
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise StorageError(f"{label}:{info.filename} is compressed")
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            # Skip the local file header to the start of the member's bytes.
            handle.seek(info.header_offset)
            local = handle.read(30)
            if local[:4] != b"PK\x03\x04":
                raise StorageError(f"{label}: bad local header")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_2_0(handle)
            else:
                raise StorageError(f"{label}: npy version {version}")
            if dtype.hasobject:
                raise StorageError(f"{label}:{info.filename} has objects")
            arrays[name] = np.memmap(handle, dtype=dtype, mode="r",
                                     offset=handle.tell(), shape=shape,
                                     order="F" if fortran else "C")
    return arrays
