"""Shard files: uncompressed ``.npz`` archives, written once, memory-mapped.

One shard holds one array per column — ``float64`` data for numeric columns,
``int32`` *store codes* for categorical columns (codes into the dataset's
append-only store vocabulary, so a shard never needs rewriting when later
appends extend the vocabulary).

``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for ``.npz``
archives (it only memory-maps bare ``.npy`` files), so :func:`open_shard`
implements the mapping itself: because the archive is written *uncompressed*
(``np.savez``), every member's raw bytes sit contiguously in the file, and
each array can be exposed as a ``np.memmap`` at the member's data offset —
zero copies, no page touched until rows are actually read.  Anything
unexpected (compressed members, pickled objects, exotic npy versions) falls
back to a plain eager ``np.load``.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.storage.format import StorageError


def write_shard(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Write column arrays as an uncompressed ``.npz`` (not yet committed).

    The caller is responsible for atomic placement (write to a temp name and
    ``os.replace``) and for recording the shard in the manifest.
    """
    if not arrays:
        raise StorageError("a shard needs at least one column array")
    for name, array in arrays.items():
        if array.dtype == object:
            raise StorageError(f"column {name!r}: object arrays cannot be "
                               "stored (vocabularies live in the manifest)")
    with Path(path).open("wb") as handle:
        np.savez(handle, **arrays)


def open_shard(path: Path, mmap: bool = True) -> dict[str, np.ndarray]:
    """Open a shard, returning ``{column name: array}``.

    With ``mmap=True`` (the default) arrays are read-only ``np.memmap`` views
    into the archive — opening a shard costs a few header reads, not a data
    copy.  Falls back to an eager load when the archive cannot be mapped.
    """
    path = Path(path)
    if mmap:
        try:
            return _mmap_npz(path)
        except (StorageError, OSError, ValueError):
            pass  # fall back to the eager loader below
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def _mmap_npz(path: Path) -> dict[str, np.ndarray]:
    """Memory-map every member of an uncompressed ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {}
    with path.open("rb") as handle, zipfile.ZipFile(handle) as archive:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise StorageError(f"{path.name}:{info.filename} is compressed")
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            # Skip the local file header to the start of the member's bytes.
            handle.seek(info.header_offset)
            local = handle.read(30)
            if local[:4] != b"PK\x03\x04":
                raise StorageError(f"{path.name}: bad local header")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_2_0(handle)
            else:
                raise StorageError(f"{path.name}: npy version {version}")
            if dtype.hasobject:
                raise StorageError(f"{path.name}:{info.filename} has objects")
            arrays[name] = np.memmap(path, dtype=dtype, mode="r",
                                     offset=handle.tell(), shape=shape,
                                     order="F" if fortran else "C")
    return arrays
