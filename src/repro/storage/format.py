"""On-disk format primitives: manifest model, atomic commits, fingerprints.

A stored dataset is a directory::

    <dataset dir>/
        MANIFEST.json            # committed atomically via os.replace
        shards/
            shard-000000.npz     # uncompressed npz: one array per column
            shard-000001.npz
            ...

The manifest is the single source of truth: it names the schema (column name
+ kind), the *store vocabularies* (append-only, first-seen-ordered value
lists shared by every shard of a categorical column), the ordered shard list
with per-shard row counts, content fingerprints and zone maps, and a
monotonic ``version`` that advances by exactly one per committed append.

Commits are crash-safe by construction: new shard files are written to
``*.tmp-*`` names and ``os.replace``d into place *before* the manifest that
references them is itself atomically replaced.  A reader therefore either
sees the old manifest (ignoring any newer shard files and leftover temp
files) or the new manifest with all its shards present — never a torn state.
Stray ``*.tmp-*`` files from a crashed writer are ignored and cleaned up by
the next successful commit.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
SHARD_DIR = "shards"
TMP_MARKER = ".tmp-"

#: Kind tags used in the manifest schema.
NUMERIC = "numeric"
CATEGORICAL = "categorical"


class StorageError(RuntimeError):
    """Raised for malformed stores, manifests, or shard files."""


# ---------------------------------------------------------------------- atomic io


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target directory so the replace never crosses
    filesystems; it is fsynced before the rename so a crash cannot leave a
    committed-but-empty file.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}{TMP_MARKER}{uuid.uuid4().hex}")
    with tmp.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_json(path: Path, payload: dict) -> None:
    atomic_write_bytes(Path(path), (json.dumps(payload, indent=2,
                                               sort_keys=True) + "\n").encode())


def read_json(path: Path) -> dict:
    with Path(path).open("rb") as handle:
        return json.loads(handle.read().decode())


def is_temp_file(name: str) -> bool:
    """Leftovers of interrupted commits — never part of the committed state."""
    return TMP_MARKER in name


def sweep_temp_files(directory: Path) -> int:
    """Best-effort removal of leftover temp files under ``directory``."""
    removed = 0
    for entry in Path(directory).glob(f"**/*{TMP_MARKER}*"):
        try:
            entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - concurrent cleanup
            pass
    return removed


def fingerprint_bytes(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def fingerprint_file(path: Path) -> str:
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ---------------------------------------------------------------------- manifest model


@dataclass
class ShardInfo:
    """One committed shard: file, row count, fingerprint, zone maps, stats."""

    shard_id: str
    file: str
    n_rows: int
    fingerprint: str
    #: ``{attribute: zone-map dict}`` — see :mod:`repro.storage.zonemap`.
    zone_maps: dict = field(default_factory=dict)
    #: ``{attribute: column-statistics dict}`` in *store-code* space —
    #: equi-depth numeric histograms / categorical top-k code frequencies,
    #: collected at shard commit (see :mod:`repro.plan.stats`).  Absent in
    #: manifests written before the planner landed (``{}`` — the planner
    #: then estimates conservatively).
    column_stats: dict = field(default_factory=dict)
    #: Committed group-by partials keyed by the shard's cluster attribute —
    #: ``{"by": attr, "keys": [...], "sizes": [...], "outcomes": {numeric
    #: attr: {"valid": [...], "sum": [...]}}}`` in the shard's
    #: first-occurrence group order.  Written only by ``compact
    #: --cluster-by`` over a categorical key; ``None`` everywhere else
    #: (and omitted from the serialized manifest).
    group_partials: dict | None = None
    #: Committed hot-predicate bitmap indexes keyed by ``repr(predicate)`` —
    #: ``{"attribute", "op", "value", "bits" (base64 packbits), "n_rows",
    #: "matches", "nbytes"}`` per entry (see :mod:`repro.adapt`).  Exact
    #: per-shard row masks: a hit answers the conjunct with ``unpackbits``
    #: instead of a predicate kernel.  Rewritten shards (compaction) start
    #: with none; appends extend every committed key to the new shard.
    #: Empty in pre-adaptive manifests (and omitted when serialized empty).
    predicate_indexes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        spec = {"id": self.shard_id, "file": self.file, "n_rows": self.n_rows,
                "fingerprint": self.fingerprint, "zone_maps": self.zone_maps,
                "column_stats": self.column_stats}
        if self.group_partials is not None:
            spec["group_partials"] = self.group_partials
        if self.predicate_indexes:
            spec["predicate_indexes"] = self.predicate_indexes
        return spec

    @classmethod
    def from_dict(cls, spec: dict) -> "ShardInfo":
        return cls(shard_id=spec["id"], file=spec["file"],
                   n_rows=int(spec["n_rows"]), fingerprint=spec["fingerprint"],
                   zone_maps=dict(spec.get("zone_maps", {})),
                   column_stats=dict(spec.get("column_stats", {})),
                   group_partials=spec.get("group_partials"),
                   predicate_indexes=dict(spec.get("predicate_indexes", {})))


@dataclass
class Manifest:
    """The committed state of one stored dataset."""

    name: str
    schema: list[dict]                 # [{"name": ..., "kind": ...}] in order
    vocabs: dict[str, list]            # store vocab per categorical column
    shards: list[ShardInfo] = field(default_factory=list)
    version: int = 0
    format_version: int = FORMAT_VERSION

    @property
    def n_rows(self) -> int:
        return sum(s.n_rows for s in self.shards)

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(entry["name"] for entry in self.schema)

    def kind(self, attribute: str) -> str:
        for entry in self.schema:
            if entry["name"] == attribute:
                return entry["kind"]
        raise KeyError(f"unknown attribute {attribute!r}")

    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "name": self.name,
            "version": self.version,
            "n_rows": self.n_rows,
            "schema": self.schema,
            "vocabs": self.vocabs,
            "shards": [s.to_dict() for s in self.shards],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "Manifest":
        if spec.get("format_version") != FORMAT_VERSION:
            raise StorageError(
                f"unsupported format_version {spec.get('format_version')!r} "
                f"(this build reads {FORMAT_VERSION})")
        return cls(
            name=spec["name"],
            schema=list(spec["schema"]),
            vocabs={k: list(v) for k, v in spec.get("vocabs", {}).items()},
            shards=[ShardInfo.from_dict(s) for s in spec.get("shards", [])],
            version=int(spec["version"]),
            format_version=int(spec["format_version"]),
        )


def load_manifest(dataset_dir: Path) -> Manifest:
    path = Path(dataset_dir) / MANIFEST_NAME
    if not path.exists():
        raise StorageError(f"no {MANIFEST_NAME} in {dataset_dir}")
    try:
        return Manifest.from_dict(read_json(path))
    except (KeyError, ValueError, TypeError) as exc:
        raise StorageError(f"malformed manifest {path}: {exc}") from exc


def commit_manifest(dataset_dir: Path, manifest: Manifest) -> None:
    """Atomically replace the dataset's manifest (the commit point)."""
    atomic_write_json(Path(dataset_dir) / MANIFEST_NAME, manifest.to_dict())
