"""One stored dataset: sharded columnar data + manifest + zone-map scans.

:class:`StoredDataset` owns a dataset directory (see
:mod:`repro.storage.format` for the layout) and provides the write path
(:meth:`create` / :meth:`append`) and the read path (:meth:`load_table`).

The read path returns a :class:`ShardedTable` — a drop-in
:class:`~repro.dataframe.Table` whose columns are
:class:`~repro.dataframe.LazyColumn` views over memory-mapped shard arrays:
nothing is decoded until a column's rows are actually touched, and
``select`` with a pattern condition consults the per-shard zone maps first,
decoding only the shards that could contain matching rows.

Vocabularies are *interned per dataset*: every shard's categorical codes
point into one shared append-only store vocabulary, so shards written years
apart agree on their encoding and appends never rewrite committed shards.
Loaded columns re-expose the deterministic sorted vocabulary the in-memory
:class:`~repro.dataframe.Column` uses, via a per-column O(vocab) code remap
applied lazily per shard — when the store vocabulary happens to be sorted
already (the common import case), codes pass through as the raw memory map.
"""

from __future__ import annotations

import dataclasses
import os
import uuid
from contextlib import contextmanager
from pathlib import Path

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.analysis.lockwatch import named_lock
from repro.dataframe import MISSING_CODE, Column, LazyColumn, Pattern, Predicate, Table
from repro.dataframe.column import sorted_code_remap
from repro.dataframe.predicates import Op
from repro.obs import trace
from repro.parallel import GLOBAL_PARALLEL_STATS, map_morsels, worker_count
from repro.plan.config import planner_enabled
from repro.plan.execute import merge_shard_counts, scan_indices, shard_scan_indices
from repro.plan.planner import GLOBAL_PLANNER_STATS, plan_scan
from repro.plan.stats import (
    DEFAULT_TOP_K,
    UNRESOLVED,
    CategoricalColumnStats,
    NumericColumnStats,
    merge_column_stats,
    remap_categorical_codes,
    resolve_store_code,
    stats_from_dict,
    stats_may_match,
    stats_to_dict,
    table_stats,
)
from repro.storage.format import (
    CATEGORICAL,
    NUMERIC,
    SHARD_DIR,
    TMP_MARKER,
    Manifest,
    ShardInfo,
    StorageError,
    commit_manifest,
    fingerprint_file,
    is_temp_file,
    load_manifest,
    sweep_temp_files,
)
from repro.storage.shard import open_shard, pack_bitmap, unpack_bitmap, write_shard
from repro.storage.zonemap import (
    categorical_zone_map,
    numeric_zone_map,
    pattern_may_match,
    shard_may_match,
)

_JSON_SAFE = (str, int, float, bool)


@contextmanager
def _append_lock(directory: Path):
    """Advisory cross-process exclusive lock on a dataset directory.

    Uses ``flock`` on a dedicated ``.lock`` file so two writers (separate
    handles or separate ``repro serve --store`` processes) cannot interleave
    shard writes and manifest commits.  On platforms without ``fcntl`` the
    lock degrades to the caller's in-process lock.
    """
    handle = (directory / ".lock").open("a+b")
    try:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX)
        yield
    finally:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_UN)
        handle.close()


class StoredDataset:
    """Handle on one dataset directory (manifest + shards)."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._lock = named_lock("StoredDataset._lock")
        self.manifest = load_manifest(self.directory)

    # ------------------------------------------------------------------ write path

    @classmethod
    def create(cls, directory: str | Path, name: str, table: Table,
               shard_rows: int | None = None) -> "StoredDataset":
        """Create a dataset directory from an in-memory table (version 0).

        ``shard_rows`` splits the initial import into fixed-size shards (one
        shard when omitted), giving zone-map pruning something to skip.
        """
        directory = Path(directory)
        if (directory / "MANIFEST.json").exists():
            raise StorageError(f"dataset already exists at {directory}")
        if shard_rows is not None and shard_rows < 1:
            raise StorageError(f"shard_rows must be positive, got {shard_rows}")
        (directory / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        schema = [{"name": c.name,
                   "kind": NUMERIC if c.numeric else CATEGORICAL}
                  for c in table.columns()]
        manifest = Manifest(name=name, schema=schema,
                            vocabs={c.name: [] for c in table.columns()
                                    if not c.numeric})
        dataset = cls.__new__(cls)
        dataset.directory = directory
        dataset._lock = named_lock("StoredDataset._lock")
        dataset.manifest = manifest
        rows_per_shard = shard_rows or table.n_rows
        start = 0
        while start < table.n_rows:
            stop = min(start + rows_per_shard, table.n_rows)
            batch = table.take(np.arange(start, stop))
            manifest.shards.append(dataset._write_shard(manifest, batch))
            start = stop
        commit_manifest(directory, manifest)
        sweep_temp_files(directory)
        return dataset

    def append(self, batch: Table, expected_version: int | None = None
               ) -> ShardInfo:
        """Durably append a batch as one new shard and commit the manifest.

        The shard file is fully written and renamed into place *before* the
        manifest referencing it is atomically replaced, so a crash at any
        point leaves the previous committed state readable.  ``version``
        advances by exactly one per successful append.

        Appends are serialised against *other handles and processes* via an
        advisory ``flock`` on the dataset directory (POSIX; best-effort
        elsewhere): the manifest is re-read under the lock, so concurrent
        appenders chain cleanly instead of overwriting each other's shard
        files, and a stale ``expected_version`` fails fast.
        """
        with self._lock, _append_lock(self.directory):
            manifest = load_manifest(self.directory)  # fresh committed state
            if expected_version is not None and \
                    manifest.version != expected_version:
                raise StorageError(
                    f"append expected version {expected_version}, "
                    f"store is at {manifest.version}")
            self._validate_batch(manifest, batch)
            shard = self._write_shard(manifest, batch)
            shard = self._cover_indexes(manifest, shard, batch)
            # Commit on a fresh Manifest object: live readers snapshot
            # ``self.manifest`` outside the writer lock, so the object a
            # reader holds must never mutate — it is published only after
            # (and exactly as) it was committed.
            committed = Manifest(
                name=manifest.name, schema=manifest.schema,
                vocabs=manifest.vocabs,
                shards=[*manifest.shards, shard],
                version=manifest.version + 1)
            commit_manifest(self.directory, committed)
            sweep_temp_files(self.directory)
            self.manifest = committed
            return shard

    def _validate_batch(self, manifest: Manifest, batch: Table) -> None:
        if batch.attributes != manifest.attributes:
            raise StorageError(
                f"batch schema {list(batch.attributes)} does not match "
                f"stored schema {list(manifest.attributes)}")
        for attribute in batch.attributes:
            column = batch.column(attribute)
            stored_numeric = manifest.kind(attribute) == NUMERIC
            if column.numeric != stored_numeric and \
                    column.n_missing() < len(column):
                raise StorageError(
                    f"batch column {attribute!r} is "
                    f"{'numeric' if column.numeric else 'categorical'}, "
                    f"store holds a "
                    f"{'numeric' if stored_numeric else 'categorical'} column")

    def _write_shard(self, manifest: Manifest, batch: Table,
                     shard_seq: int | None = None,
                     partials_by: str | None = None) -> ShardInfo:
        """Encode, write, fingerprint, and rename one shard (no commit).

        Besides the zone maps, every column's **statistics** are collected
        here — equi-depth numeric histograms and categorical top-k code
        frequencies in store-code space — and travel in the manifest, so
        selectivity estimates refresh with every committed shard and are
        never derived by re-scanning committed data.

        ``partials_by`` (a categorical attribute; set by cluster-by
        compaction) additionally records the shard's **group-by partials**:
        per group key, the row count plus every numeric column's valid
        count and outcome sum — exactly the per-shard quantities the
        runtime partial aggregation computes, so a clustered no-WHERE
        group-by can later answer from the manifest without touching rows.
        """
        arrays: dict[str, np.ndarray] = {}
        zone_maps: dict[str, dict] = {}
        column_stats: dict[str, dict] = {}
        for attribute in manifest.attributes:
            column = batch.column(attribute)
            if manifest.kind(attribute) == NUMERIC:
                values = _as_float64(column)
                arrays[attribute] = values
                zone_maps[attribute] = numeric_zone_map(values)
                column_stats[attribute] = stats_to_dict(
                    NumericColumnStats.from_values(values))
            else:
                codes = _as_store_codes(column, manifest.vocabs[attribute])
                arrays[attribute] = codes
                zone_maps[attribute] = categorical_zone_map(codes)
                column_stats[attribute] = stats_to_dict(
                    CategoricalColumnStats.from_codes(codes,
                                                      top_k=DEFAULT_TOP_K))
        if shard_seq is None:
            shard_seq = _next_shard_seq(manifest)
        shard_id = f"shard-{shard_seq:06d}"
        relative = f"{SHARD_DIR}/{shard_id}.npz"
        final = self.directory / relative
        tmp = final.with_name(f"{final.name}{TMP_MARKER}{uuid.uuid4().hex}")
        write_shard(tmp, arrays)
        fingerprint = fingerprint_file(tmp)
        os.replace(tmp, final)
        group_partials = _group_partials(manifest, batch, partials_by) \
            if partials_by is not None else None
        return ShardInfo(shard_id=shard_id, file=relative, n_rows=batch.n_rows,
                         fingerprint=fingerprint, zone_maps=zone_maps,
                         column_stats=column_stats,
                         group_partials=group_partials)

    # ------------------------------------------------------------------ maintenance

    def compact(self, shard_rows: int | None = None,
                cluster_by: str | None = None,
                min_rows: int | None = None) -> dict:
        """Merge undersized shards and optionally re-cluster by a sort key.

        Two modes, both running under the dataset's cross-process append
        lock and committing through the usual atomic-manifest protocol (new
        shard files land under fresh monotonic names *before* the manifest
        referencing them replaces the old one; the replaced files are
        unlinked only after the commit):

        * **merge** (default): runs of adjacent shards smaller than
          ``min_rows`` (default: the largest current shard) are rewritten
          into shards of up to ``shard_rows`` rows (default: ``min_rows``),
          preserving row order.  Right-sized shards are left untouched —
          their bytes, fingerprints, and statistics are not rewritten.
        * **re-cluster** (``cluster_by=<attribute>``): the *whole* dataset
          is stably sorted by the attribute (missing values last) and
          rewritten into shards of ``shard_rows`` rows (default: the
          largest current shard), which is what makes zone maps selective
          for predicates over that attribute.  A *categorical* cluster key
          additionally commits per-shard **group-by partials** (group row
          counts plus valid count and sum of every numeric column) into the
          manifest, so subsequent no-WHERE group-bys over the key answer
          from the partials without reading any shard row.  Numeric cluster
          keys skip the partials: their ``NaN`` rows group as per-row
          singletons, which no mergeable manifest artifact can represent.

        Every rewritten shard gets fresh zone maps, column statistics, and
        content fingerprints.  ``version`` advances by one.  Live readers
        are unaffected: a loaded table pins every shard's descriptor (the
        unlinked inodes stay readable), and an in-flight ``load_table``
        that loses the race retries on the fresh manifest.
        """
        with self._lock, _append_lock(self.directory):
            manifest = load_manifest(self.directory)
            self.manifest = manifest
            before = len(manifest.shards)
            if cluster_by is not None and \
                    cluster_by not in manifest.attributes:
                raise StorageError(
                    f"cluster key {cluster_by!r} is not a stored attribute "
                    f"(schema: {list(manifest.attributes)})")
            if before == 0:
                return {"name": manifest.name, "version": manifest.version,
                        "shards_before": 0, "shards_after": 0,
                        "rewritten": 0, "cluster_by": cluster_by,
                        "partial_groups": 0}
            if shard_rows is not None and shard_rows < 1:
                raise StorageError(
                    f"shard_rows must be positive, got {shard_rows}")
            if min_rows is not None and min_rows < 1:
                raise StorageError(
                    f"min_rows must be positive, got {min_rows}")
            largest = max(s.n_rows for s in manifest.shards)
            if min_rows is None:
                min_rows = shard_rows if shard_rows is not None else largest
            target = shard_rows if shard_rows is not None \
                else max(min_rows, largest)
            seq = _next_shard_seq(manifest)
            new_shards: list[ShardInfo] = []
            replaced: list[ShardInfo] = []
            partials_by = cluster_by if cluster_by is not None and \
                manifest.kind(cluster_by) == CATEGORICAL else None

            def rewrite(batch: Table) -> None:
                nonlocal seq
                start = 0
                while start < batch.n_rows:
                    stop = min(start + target, batch.n_rows)
                    part = batch.take(np.arange(start, stop))
                    new_shards.append(self._write_shard(
                        manifest, part, shard_seq=seq,
                        partials_by=partials_by))
                    seq += 1
                    start = stop

            if cluster_by is not None:
                table = self.load_table(prune=False)
                column = table.column(cluster_by)
                keys = column.values if column.numeric else column.codes
                if column.numeric:
                    # argsort puts NaN last already; keep the sort stable.
                    order = np.argsort(keys, kind="stable")
                else:
                    # Sentinel -1 (missing) sorts first; rotate it to the end.
                    order = np.argsort(keys, kind="stable")
                    n_missing = int((keys == MISSING_CODE).sum())
                    order = np.concatenate([order[n_missing:],
                                            order[:n_missing]])
                replaced = list(manifest.shards)
                rewrite(table.take(order))
            else:
                run: list[ShardInfo] = []

                def flush_run() -> None:
                    if len(run) >= 2:
                        replaced.extend(run)
                        rewrite(self._decode_shards(manifest, run))
                    else:
                        new_shards.extend(run)
                    run.clear()

                for shard in manifest.shards:
                    if shard.n_rows < min_rows:
                        run.append(shard)
                    else:
                        flush_run()
                        new_shards.append(shard)
                flush_run()

            if not replaced:  # nothing to rewrite: no version churn
                return {"name": manifest.name, "version": manifest.version,
                        "shards_before": before, "shards_after": before,
                        "rewritten": 0, "cluster_by": cluster_by,
                        "partial_groups": 0}
            # Commit on a fresh Manifest object — live readers snapshot
            # ``self.manifest`` outside the writer lock, so the object a
            # reader holds must never mutate underneath it (its version is
            # also what the reader's lost-race retry in ``load_table``
            # compares against).
            committed = Manifest(
                name=manifest.name, schema=manifest.schema,
                vocabs=manifest.vocabs, shards=new_shards,
                version=manifest.version + 1)
            commit_manifest(self.directory, committed)
            sweep_temp_files(self.directory)
            self.manifest = committed
            kept = {s.file for s in new_shards}
            for shard in replaced:
                if shard.file in kept:  # pragma: no cover - defensive
                    continue
                try:
                    (self.directory / shard.file).unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            return {"name": committed.name, "version": committed.version,
                    "shards_before": before, "shards_after": len(new_shards),
                    "rewritten": len(replaced), "cluster_by": cluster_by,
                    "partial_groups": sum(
                        len(s.group_partials["keys"]) for s in new_shards
                        if s.group_partials is not None)}

    # ------------------------------------------------------------------ bitmap indexes

    def promote_index(self, predicate: Predicate) -> dict:
        """Commit an exact per-shard packed-bitmap index for ``predicate``.

        Every shard's rows are evaluated once (through the shared decode
        path) and the resulting boolean masks are packed into the manifest
        as per-shard ``predicate_indexes`` entries, committed atomically at
        the **same version** — an index changes no data and no results, so
        it must not trip the engine's append version fencing.  Shards
        already carrying the key are left untouched (their bitmaps are
        returned unpacked alongside the new ones, for live installation).

        Runs under the same in-process + cross-process locks as ``append``,
        so promotion interleaves safely with concurrent writers.
        """
        key = repr(predicate)
        with self._lock, _append_lock(self.directory):
            manifest = load_manifest(self.directory)
            if predicate.attribute not in manifest.attributes:
                raise StorageError(
                    f"cannot index {key!r}: {predicate.attribute!r} is not "
                    f"a stored attribute")
            if not isinstance(predicate.value, _JSON_SAFE):
                raise StorageError(
                    f"cannot index {key!r}: value of type "
                    f"{type(predicate.value).__name__} cannot live in a "
                    f"JSON manifest")
            new_shards: list[ShardInfo] = []
            masks: dict[str, np.ndarray] = {}
            total = 0
            for shard in manifest.shards:
                existing = shard.predicate_indexes.get(key)
                if existing is not None:
                    new_shards.append(shard)
                    masks[shard.shard_id] = unpack_bitmap(existing)
                    total += int(existing["nbytes"])
                    continue
                rows = self._decode_shards(manifest, [shard])
                spec = pack_bitmap(predicate.evaluate(rows))
                spec.update({"attribute": predicate.attribute,
                             "op": predicate.op.value,
                             "value": predicate.value})
                indexes = dict(shard.predicate_indexes)
                indexes[key] = spec
                new_shards.append(dataclasses.replace(
                    shard, predicate_indexes=indexes))
                masks[shard.shard_id] = unpack_bitmap(spec)
                total += int(spec["nbytes"])
            committed = Manifest(
                name=manifest.name, schema=manifest.schema,
                vocabs=manifest.vocabs, shards=new_shards,
                version=manifest.version)
            commit_manifest(self.directory, committed)
            self.manifest = committed
            return {"key": key, "shards": len(new_shards), "nbytes": total,
                    "version": committed.version, "masks": masks}

    def drop_index(self, key: str) -> dict:
        """Remove a committed bitmap index from every shard (same version)."""
        with self._lock, _append_lock(self.directory):
            manifest = load_manifest(self.directory)
            new_shards: list[ShardInfo] = []
            dropped = 0
            for shard in manifest.shards:
                if key in shard.predicate_indexes:
                    indexes = dict(shard.predicate_indexes)
                    indexes.pop(key)
                    new_shards.append(dataclasses.replace(
                        shard, predicate_indexes=indexes))
                    dropped += 1
                else:
                    new_shards.append(shard)
            if dropped:
                committed = Manifest(
                    name=manifest.name, schema=manifest.schema,
                    vocabs=manifest.vocabs, shards=new_shards,
                    version=manifest.version)
                commit_manifest(self.directory, committed)
                self.manifest = committed
            return {"key": key, "shards": dropped,
                    "version": self.manifest.version}

    def index_stats(self) -> dict:
        """Committed bitmap indexes: per-key coverage, matches, and bytes."""
        manifest = self.manifest
        indexes: dict[str, dict] = {}
        for shard in manifest.shards:
            for key, spec in shard.predicate_indexes.items():
                entry = indexes.setdefault(key, {
                    "attribute": spec["attribute"], "op": spec["op"],
                    "value": spec["value"], "shards": 0, "n_rows": 0,
                    "matches": 0, "nbytes": 0})
                entry["shards"] += 1
                entry["n_rows"] += int(spec["n_rows"])
                entry["matches"] += int(spec["matches"])
                entry["nbytes"] += int(spec["nbytes"])
        return {"indexes": indexes,
                "total_nbytes": sum(e["nbytes"] for e in indexes.values()),
                "shards_total": len(manifest.shards),
                "version": manifest.version}

    def _cover_indexes(self, manifest: Manifest, shard: ShardInfo,
                       batch: Table) -> ShardInfo:
        """Extend every committed bitmap index to a freshly appended shard.

        Indexes are value-space predicates, so evaluating them on the batch
        (whatever its encoding) yields exactly the mask the shard's rows
        deserve — committed indexes therefore stay *complete* across
        appends instead of being invalidated.  A predicate the batch cannot
        evaluate (e.g. an un-orderable comparison) simply leaves the new
        shard uncovered for that key: per-shard consult falls back to the
        kernel there, which is correct, just slower.
        """
        specs: dict[str, dict] = {}
        for existing in manifest.shards:
            for key, spec in existing.predicate_indexes.items():
                specs.setdefault(key, spec)
        if not specs:
            return shard
        indexes: dict[str, dict] = {}
        for key, spec in specs.items():
            predicate = Predicate(spec["attribute"], Op(spec["op"]),
                                  spec["value"])
            try:
                mask = predicate.evaluate(batch)
            except (TypeError, ValueError):
                continue
            entry = pack_bitmap(mask)
            entry.update({"attribute": spec["attribute"], "op": spec["op"],
                          "value": spec["value"]})
            indexes[key] = entry
        if not indexes:
            return shard
        return dataclasses.replace(shard, predicate_indexes=indexes)

    def _decode_shards(self, manifest: Manifest,
                       shards: list[ShardInfo]) -> Table:
        """Materialise a run of committed shards as one in-memory table.

        Goes through the same :class:`_ShardHandle` decode path the read
        side uses (one archive open per shard, the shared store→sorted code
        remap), so a compaction rewrite can never diverge from what a
        reader would have seen.
        """
        decoders: dict[str, np.ndarray | None] = {}
        sorted_vocabs: dict[str, tuple] = {}
        for attribute in manifest.attributes:
            if manifest.kind(attribute) == NUMERIC:
                continue
            sorted_vocabs[attribute], decoders[attribute] = _sorted_remap(
                manifest.vocabs[attribute])
        handles = [_ShardHandle(self.directory / shard.file, shard, decoders)
                   for shard in shards]
        columns = []
        for attribute in manifest.attributes:
            parts = [handle.decoded(attribute) for handle in handles]
            merged = np.concatenate(parts) if len(parts) > 1 else parts[0]
            if manifest.kind(attribute) == NUMERIC:
                columns.append(Column._from_numeric_data(
                    attribute, np.asarray(merged, dtype=np.float64)))
            else:
                columns.append(Column.from_codes(
                    attribute, np.asarray(merged, dtype=np.int32),
                    sorted_vocabs[attribute]))
        return Table(columns, name=manifest.name)

    # ------------------------------------------------------------------ read path

    def reload(self) -> Manifest:
        """Re-read the committed manifest (picks up appends by other handles)."""
        with self._lock:
            self.manifest = load_manifest(self.directory)
            return self.manifest

    def load_table(self, prune: bool = True) -> "ShardedTable":
        """The dataset as a lazily-loaded, zone-map-pruned table.

        Every shard's descriptor is opened here, eagerly, and handed to its
        lazy handle: an open descriptor pins the inode, so a compaction
        that commits a new manifest and unlinks our files *after* this
        returns cannot break the table's lazy first-touch loads.  If the
        compaction wins the race *before* we open (a referenced file is
        already gone), the committed manifest has necessarily moved on —
        reload it and retry; a missing file on an unchanged version is real
        corruption and raises.
        """
        while True:
            manifest = self.manifest
            try:
                return self._load_table_at(manifest, prune)
            except FileNotFoundError as exc:
                if self.reload().version == manifest.version:
                    raise StorageError(
                        f"manifest references missing shard in "
                        f"{self.directory}: {exc}") from exc

    def _load_table_at(self, manifest: Manifest,
                       prune: bool) -> "ShardedTable":
        decoders: dict[str, np.ndarray | None] = {}
        sorted_vocabs: dict[str, tuple] = {}
        for attribute in manifest.attributes:
            if manifest.kind(attribute) != CATEGORICAL:
                continue
            store_vocab = manifest.vocabs[attribute]
            sorted_vocab, remap = _sorted_remap(store_vocab)
            sorted_vocabs[attribute] = sorted_vocab
            decoders[attribute] = remap
        handles = []
        for shard in manifest.shards:
            path = self.directory / shard.file
            if is_temp_file(path.name):  # never committed; defensive
                continue
            handles.append(_ShardHandle(path, shard, decoders,
                                        file=path.open("rb")))
        return ShardedTable(manifest, handles, sorted_vocabs, prune=prune)

    def verify(self) -> None:
        """Check every committed shard's content fingerprint (integrity scan)."""
        for shard in self.manifest.shards:
            actual = fingerprint_file(self.directory / shard.file)
            if actual != shard.fingerprint:
                raise StorageError(
                    f"shard {shard.shard_id} fingerprint mismatch: "
                    f"manifest {shard.fingerprint[:12]}…, file {actual[:12]}…")

    def nbytes(self) -> int:
        """Total committed shard bytes on disk."""
        return sum((self.directory / shard.file).stat().st_size
                   for shard in self.manifest.shards
                   if (self.directory / shard.file).exists())

    def stats(self) -> dict:
        return {"name": self.manifest.name, "version": self.manifest.version,
                "rows": self.manifest.n_rows,
                "shards": len(self.manifest.shards), "bytes": self.nbytes()}


class _ShardHandle:
    """Lazily opened, memory-mapped view of one committed shard."""

    def __init__(self, path: Path, info: ShardInfo,
                 decoders: dict[str, np.ndarray | None],
                 file=None):
        self.path = path
        self.info = info
        self._decoders = decoders
        # An already-open descriptor pins the inode, so a concurrent
        # compaction unlinking the path cannot break a later lazy open
        # (None: open by path at first touch; writer-side use only).
        self._file = file
        self._lock = named_lock("_ShardHandle._lock")
        self._arrays: dict[str, np.ndarray] | None = None  # guarded-by: _lock
        # _parsed_stats is racy on purpose: committed manifests are
        # immutable, so concurrent first parses store identical values.
        self._parsed_stats: dict[str, object] = {}

    @property
    def n_rows(self) -> int:
        return self.info.n_rows

    def arrays(self) -> dict[str, np.ndarray]:
        with self._lock:
            if self._arrays is None:
                self._arrays = open_shard(
                    self.path if self._file is None else self._file)
            return self._arrays

    def is_open(self) -> bool:
        """Whether the shard archive has been opened (any row data touched)."""
        with self._lock:
            return self._arrays is not None

    def decoded(self, attribute: str) -> np.ndarray:
        """The column's rows in in-memory encoding (sorted-vocab codes/floats)."""
        raw = self.arrays()[attribute]
        remap = self._decoders.get(attribute)
        if remap is None:
            return raw  # numeric, or store vocab already sorted: zero-copy
        return remap[raw]  # store codes -> sorted codes; sentinel wraps

    def column_stats(self, attribute: str):
        """The shard's parsed column statistics (store-code space), cached.

        The manifest dict is immutable once committed, so parsing it once
        per handle is safe; the benign first-touch race stores identical
        values.  ``None`` when the shard predates column statistics.
        """
        if attribute not in self._parsed_stats:
            self._parsed_stats[attribute] = stats_from_dict(
                self.info.column_stats.get(attribute))
        return self._parsed_stats[attribute]


class ShardedTable(Table):
    """A :class:`Table` over committed shards with zone-map pruned scans.

    Columns are lazy: each one concatenates its shards' (memory-mapped)
    arrays on first touch.  ``select`` with a pattern condition prunes whole
    shards via the manifest's zone maps before any mask is evaluated, so a
    selective scan only decodes the shards that can contain matches — and
    returns exactly what the unpruned scan would.
    """

    def __init__(self, manifest: Manifest, handles: list[_ShardHandle],
                 sorted_vocabs: dict[str, tuple], prune: bool = True):
        self._manifest = manifest
        self._handles = handles
        self._sorted_vocabs = sorted_vocabs
        self._prune = prune
        self._stats_lock = named_lock("ShardedTable._stats_lock")
        self._scans = 0  # guarded-by: _stats_lock
        self._shards_scanned = 0  # guarded-by: _stats_lock
        self._shards_skipped = 0  # guarded-by: _stats_lock
        self._zone_map_skipped = 0  # guarded-by: _stats_lock
        self._stats_skipped = 0  # guarded-by: _stats_lock
        self._rows_skipped = 0  # guarded-by: _stats_lock
        self._partials_served = 0  # guarded-by: _stats_lock
        self._bitmap_served = 0  # guarded-by: _stats_lock
        # Hot-predicate bitmap indexes (repro.adapt).  ``_index_keys`` is
        # the lookup authority: seeded from the committed manifest, extended
        # by live installs, shrunk by demotions (a demoted key's committed
        # spec may linger in this handle's ShardInfo — the key set hides
        # it).  ``_live_bitmaps`` caches unpacked read-only masks per
        # ``(key, shard_id)`` so each committed bitmap is decoded once.
        self._index_lock = named_lock("ShardedTable._index_lock")
        self._index_keys = {key for handle in handles
                            for key in handle.info.predicate_indexes
                            }  # guarded-by: _index_lock
        self._live_bitmaps: dict[str, dict[str, np.ndarray]] = {}  # guarded-by: _index_lock
        columns = [self._lazy_column(attribute, handles)
                   for attribute in manifest.attributes]
        super().__init__(columns, name=manifest.name)

    @property
    def version(self) -> int:
        return self._manifest.version

    @property
    def n_shards(self) -> int:
        return len(self._handles)

    def _lazy_column(self, attribute: str,
                     handles: list[_ShardHandle]) -> LazyColumn:
        numeric = self._manifest.kind(attribute) == NUMERIC
        length = sum(h.n_rows for h in handles)

        def loader() -> np.ndarray:
            if not handles:
                return np.empty(0, dtype=np.float64 if numeric else np.int32)
            if len(handles) == 1:
                return handles[0].decoded(attribute)  # the memory map itself
            # Shards decode on the morsel pool (mmap page-in and the
            # store→sorted code remap release the GIL); concatenation in
            # handle order makes the result byte-identical to serial.
            parts = map_morsels(lambda h: h.decoded(attribute), handles)
            return np.concatenate(parts)

        return LazyColumn(attribute, numeric, length, loader,
                          vocab=self._sorted_vocabs.get(attribute, ()))

    # ------------------------------------------------------------------ pruned scans

    def select(self, condition) -> Table:
        """Pattern selections consult zone maps + statistics and skip shards."""
        if not isinstance(condition, (Pattern, Predicate)):
            return super().select(condition)
        if planner_enabled():
            return self.plan_shard_select(condition)[0]
        # Oracle path: zone-map-only pruning, left-to-right full masks.
        if not self._prune or len(self._handles) <= 1:
            return self._filter_shards(self._handles, condition)
        vocabs = self._manifest.vocabs
        # One pass decides survival and tallies skipped rows directly — no
        # post-hoc `h not in survivors` membership scan (quadratic in the
        # shard count).
        survivors = []
        rows_skipped = 0
        for handle in self._handles:
            if pattern_may_match(handle.info.zone_maps, condition, vocabs):
                survivors.append(handle)
            else:
                rows_skipped += handle.n_rows
        with self._stats_lock:
            self._scans += 1
            self._shards_scanned += len(self._handles)
            self._shards_skipped += len(self._handles) - len(survivors)
            self._rows_skipped += rows_skipped
        return self._filter_shards(survivors, condition)

    def _filter_shards(self, handles: list[_ShardHandle], condition) -> Table:
        """Full-mask (oracle) filter over ``handles``, morsel-parallel.

        With one worker — or at most one shard — this is exactly the serial
        path: full left-to-right masks over the concatenated lazy columns.
        With more, every shard evaluates the same masks over its own rows
        concurrently and the per-shard selections concatenate in shard
        order; predicates are row-local, so the result is byte-identical.
        """
        if worker_count() <= 1 or len(handles) <= 1:
            if len(handles) == len(self._handles):
                return super().select(condition)
            return self._subset(handles).select(condition)
        shard_tables = [self._subset([handle]) for handle in handles]
        parts = map_morsels(lambda shard: shard.select(condition),
                            shard_tables)
        return self._merge_parts(parts)

    def plan_shard_select(self, condition, mask_cache=None):
        """Selectivity-aware scan: ``(filtered table, executed ScanPlan)``.

        Three-way decision per shard — zone-map skip, statistics-based skip
        (covers manifests whose zone maps are absent), or scan — followed by
        conjuncts ordered most-selective-cheapest-first with short-circuit
        AND over the surviving shards, morsel-parallel when more than one
        shard survives and the pool is wider than one worker.  Both skip
        layers are conservative proofs, so the result equals the unplanned
        scan row for row.

        ``mask_cache`` (the engine's per-version :class:`MaskCache`) serves
        purely as a **store-code memo** here: repeated hot equality literals
        skip the append-ordered store-vocabulary lookup entirely.
        """
        if not trace.enabled():
            return self._plan_shard_select(condition, mask_cache=mask_cache)
        with trace.trace_span("storage.shard_scan",
                              dataset=self.name) as span:
            filtered, plan = self._plan_shard_select(condition,
                                                     mask_cache=mask_cache)
            span.set(shards_total=plan.shards_total,
                     zone_map_skipped=plan.shards_zone_map_skipped,
                     stats_skipped=plan.shards_stats_skipped,
                     rows_out=plan.rows_out)
        return filtered, plan

    def _plan_shard_select(self, condition, mask_cache=None):
        predicates = [condition] if isinstance(condition, Predicate) else \
            list(condition.predicates)
        plan = plan_scan(self, condition, stats=table_stats(self))
        vocabs = self._manifest.vocabs
        # Resolve each equality literal's store code once, not once per
        # shard — the lookup scans the append-ordered store vocabulary.
        resolved: list[tuple[Predicate, object]] = []
        lookups = cached = 0
        for p in predicates:
            code = UNRESOLVED
            if p.op in (Op.EQ, Op.NE) and p.attribute in vocabs:
                lookups += 1
                if mask_cache is not None:
                    code, hit = mask_cache.resolved_store_code(
                        p.attribute, p.value,
                        lambda p=p: resolve_store_code(p.value,
                                                       vocabs[p.attribute]))
                    cached += hit
                else:
                    code = resolve_store_code(p.value, vocabs[p.attribute])
            resolved.append((p, code))
        if lookups:
            GLOBAL_PLANNER_STATS.record_store_codes(lookups, cached)
        ordered = plan.ordered_predicates
        indexed = self._any_indexes()
        survivors = []
        survivor_masks: list[list] = []
        zone_skipped = stats_skipped = rows_skipped = bitmap_hits = 0
        prune = self._prune and len(self._handles) > 1
        for handle in self._handles:
            # Bitmap consult (repro.adapt): shards holding a committed or
            # installed index for a conjunct answer it via unpackbits
            # instead of a kernel.  A covered conjunct also needs no
            # zone-map/statistics "may match" guess — the bitmap is the
            # exact answer, and the consult itself can be expensive (wide
            # categorical vocabularies decide per entry in Python).
            masks = [self._bitmap_for(handle, predicate)
                     for predicate in ordered] if indexed else \
                [None] * len(ordered)
            covered = {predicate for predicate, mask
                       in zip(ordered, masks) if mask is not None}
            if prune and len(covered) < len(ordered):
                if not all(
                        shard_may_match(
                            handle.info.zone_maps.get(p.attribute), p,
                            vocabs.get(p.attribute))
                        for p in predicates if p not in covered):
                    zone_skipped += 1
                    rows_skipped += handle.n_rows
                    continue
                if not all(
                        stats_may_match(handle.column_stats(p.attribute), p,
                                        vocabs.get(p.attribute), eq_code=code)
                        for p, code in resolved if p not in covered):
                    stats_skipped += 1
                    rows_skipped += handle.n_rows
                    continue
            survivors.append(handle)
            survivor_masks.append(masks)
            bitmap_hits += len(covered)
        plan.shards_total = len(self._handles)
        plan.shards_zone_map_skipped = zone_skipped
        plan.shards_stats_skipped = stats_skipped
        if prune:  # unpruned/single-shard handles keep their counters at zero
            with self._stats_lock:
                self._scans += 1
                self._shards_scanned += len(self._handles)
                self._shards_skipped += zone_skipped + stats_skipped
                self._zone_map_skipped += zone_skipped
                self._stats_skipped += stats_skipped
                self._rows_skipped += rows_skipped
            GLOBAL_PLANNER_STATS.record_shards(zone_skipped, stats_skipped,
                                               len(survivors))
        # Any bitmap hit routes through the per-shard executor — at one
        # worker map_morsels degenerates to the serial loop and the
        # per-shard counts/rows merge is byte-identical to the whole-table
        # scan.
        shard_masks = None
        if bitmap_hits:
            shard_masks = survivor_masks
            self._record_bitmap_served(bitmap_hits)
        if shard_masks is None and \
                (worker_count() <= 1 or len(survivors) <= 1):
            subset = self if len(survivors) == len(self._handles) else \
                self._subset(survivors)
            indices = scan_indices(subset, plan)
            return subset.take(indices), plan
        # Morsel-parallel execution: each surviving shard runs the same
        # ordered short-circuit AND over its own rows; counts sum and rows
        # concatenate in shard order, byte-identical to the serial scan.
        shard_tables = [self._subset([handle]) for handle in survivors]
        if shard_masks is None:
            shard_masks = [None] * len(survivors)

        def scan(item) -> tuple[Table, list]:
            shard, masks = item
            indices, counts = shard_scan_indices(shard, ordered, masks=masks)
            return shard.take(indices), counts

        results = map_morsels(scan, list(zip(shard_tables, shard_masks)))
        merge_shard_counts(plan, sum(h.n_rows for h in survivors),
                           [counts for _, counts in results])
        return self._merge_parts([part for part, _ in results]), plan

    def _merge_parts(self, parts: list[Table]) -> Table:
        """Concatenate per-shard filter results in shard order.

        Every part was produced against this table's sorted vocabularies,
        so categorical codes concatenate without remapping; the merged
        table equals the serial whole-table result column for column.
        """
        columns = []
        for attribute in self._manifest.attributes:
            pieces = [part.column(attribute) for part in parts]
            if self._manifest.kind(attribute) == NUMERIC:
                merged = np.concatenate([p.values for p in pieces])
                columns.append(Column._from_numeric_data(
                    attribute, np.asarray(merged, dtype=np.float64)))
            else:
                merged = np.concatenate([p.codes for p in pieces])
                columns.append(Column.from_codes(
                    attribute, np.asarray(merged, dtype=np.int32),
                    self._sorted_vocabs[attribute]))
        return Table(columns, name=self.name)

    # ------------------------------------------------------------------ bitmap indexes

    def install_predicate_index(self, key: str,
                                shard_masks: dict[str, np.ndarray]) -> None:
        """Make a just-promoted index servable on this live handle.

        ``shard_masks`` maps shard id → unpacked boolean mask (as returned
        by :meth:`StoredDataset.promote_index`); this handle's ShardInfo
        objects predate the promotion commit, so the masks are cached here
        instead of re-read from disk.
        """
        for mask in shard_masks.values():
            mask.setflags(write=False)
        with self._index_lock:
            self._live_bitmaps.setdefault(key, {}).update(shard_masks)
            self._index_keys.add(key)

    def drop_predicate_index(self, key: str) -> None:
        """Stop serving a (demoted) index on this live handle."""
        with self._index_lock:
            self._live_bitmaps.pop(key, None)
            self._index_keys.discard(key)

    def predicate_index_keys(self) -> set[str]:
        with self._index_lock:
            return set(self._index_keys)

    def _any_indexes(self) -> bool:
        with self._index_lock:
            return bool(self._index_keys)

    def _bitmap_for(self, handle: _ShardHandle,
                    predicate: Predicate) -> np.ndarray | None:
        """The shard's committed/installed bitmap for ``predicate``, if any.

        Decoded bitmaps are cached per ``(key, shard id)``; a miss on the
        live cache falls back to the handle's committed spec (cold restart
        path).  ``None`` means no index: the caller runs the kernel.
        """
        key = repr(predicate)
        with self._index_lock:
            if key not in self._index_keys:
                return None
            bucket = self._live_bitmaps.get(key)
            mask = None if bucket is None else \
                bucket.get(handle.info.shard_id)
        if mask is not None:
            return mask
        spec = handle.info.predicate_indexes.get(key)
        if spec is None:  # e.g. freshly appended shard not yet covered
            return None
        mask = unpack_bitmap(spec)
        with self._index_lock:
            if key in self._index_keys:  # benign race with demotion
                self._live_bitmaps.setdefault(key, {})[
                    handle.info.shard_id] = mask
        return mask

    def shard_predicate_mask(self, predicate: Predicate) -> np.ndarray:
        """Full boolean mask of one predicate, evaluated shard by shard.

        Sorted-vocab codes are shard-subset-invariant, so per-shard masks
        concatenated in shard order equal the whole-table kernel bit for
        bit; with one worker — or at most one shard — the whole-table
        kernel runs directly, exactly as before.  Shards holding a bitmap
        index for the predicate serve their slice from it (an unpackbits,
        no kernel) — bitmaps are exact row masks, so the concatenation is
        still bit-identical.
        """
        if planner_enabled() and self._any_indexes() and self._handles:
            masks = [self._bitmap_for(handle, predicate)
                     for handle in self._handles]
            hits = sum(1 for mask in masks if mask is not None)
            if hits:
                shard_tables = [None if mask is not None
                                else self._subset([handle])
                                for handle, mask in zip(self._handles, masks)]

                def resolve(item):
                    mask, shard = item
                    return mask if mask is not None \
                        else predicate.evaluate(shard)

                parts = map_morsels(resolve, list(zip(masks, shard_tables)))
                self._record_bitmap_served(hits)
                return parts[0] if len(parts) == 1 else np.concatenate(parts)
        if worker_count() <= 1 or len(self._handles) <= 1:
            return predicate.evaluate(self)
        shard_tables = [self._subset([handle]) for handle in self._handles]
        parts = map_morsels(lambda shard: predicate.evaluate(shard),
                            shard_tables)
        return np.concatenate(parts)

    def _record_bitmap_served(self, count: int) -> None:
        with self._stats_lock:
            self._bitmap_served += count
        GLOBAL_PLANNER_STATS.record_bitmap_conjuncts(count)

    # ------------------------------------------------------------------ partials

    def shard_groupby_partials(self, group_by, outcome: str):
        """Per-group ``(key, size, valid, total)`` partials in global
        first-occurrence order, or ``None`` when they do not apply.

        Applies when every grouping attribute is stored categorical and the
        outcome is stored numeric (numeric group keys form per-row ``NaN``
        singletons no mergeable partial can represent).  Two sources, in
        preference order:

        * **committed partials** — every shard of a single-attribute
          group-by carries manifest partials for the key (written by
          ``compact --cluster-by``): the answer merges pure manifest
          arithmetic and touches **zero** shard rows;
        * **runtime partials** — each shard computes its own group sizes,
          valid counts, and outcome sums on the morsel pool.

        Both sources compute the identical per-shard quantities and merge
        in shard order, so the result is the same wherever it comes from —
        and at every worker count.
        """
        manifest = self._manifest
        if not group_by or outcome not in manifest.attributes or \
                manifest.kind(outcome) != NUMERIC:
            return None
        if any(a not in manifest.attributes or
               manifest.kind(a) != CATEGORICAL for a in group_by):
            return None
        if not self._handles:
            return []
        merged = self._manifest_partials(group_by, outcome)
        if merged is not None:
            with self._stats_lock:
                self._partials_served += 1
            GLOBAL_PARALLEL_STATS.record_partials_served()
            return merged
        attributes = list(group_by)
        shard_tables = [self._subset([handle]) for handle in self._handles]

        def shard_partials(shard: Table) -> list:
            index = shard.group_index(attributes)
            values = shard.column(outcome).values
            entries = []
            for key, rows in zip(index.keys, index.group_indices()):
                grouped = values[rows]
                valid = grouped[~np.isnan(grouped)]
                entries.append((key, int(rows.size), int(valid.size),
                                float(valid.sum()) if valid.size else 0.0))
            return entries

        return _merge_partials(map_morsels(shard_partials, shard_tables))

    def _manifest_partials(self, group_by, outcome: str):
        """Merged committed partials, or ``None`` when any shard lacks them."""
        if len(group_by) != 1:
            return None
        by = group_by[0]
        per_shard = []
        for handle in self._handles:
            partials = handle.info.group_partials
            if partials is None or partials.get("by") != by or \
                    outcome not in partials["outcomes"]:
                return None
            entry = partials["outcomes"][outcome]
            per_shard.append(
                [((key,), int(size), int(valid), float(total))
                 for key, size, valid, total in zip(
                     partials["keys"], partials["sizes"],
                     entry["valid"], entry["sum"])])
        return _merge_partials(per_shard)

    def plan_column_stats(self, attribute: str):
        """Merged manifest statistics of one column (sorted-code space).

        The provider :func:`repro.plan.stats.table_stats` discovers on this
        table: per-shard entries are summed (:func:`merge_column_stats`)
        with categorical frequencies translated from store codes to the
        sorted in-memory codes — no shard is decoded.  ``None`` (estimate
        conservatively) when any shard predates column statistics.
        """
        parts = []
        for handle in self._handles:
            part = handle.column_stats(attribute)
            if part is None:  # pre-planner shard: no provable statistics
                return None
            parts.append(part)
        if not parts:
            return None
        if self._manifest.kind(attribute) != NUMERIC:
            _, remap = _sorted_remap(self._manifest.vocabs[attribute])
            parts = [remap_categorical_codes(part, remap) for part in parts]
        return merge_column_stats(parts)

    def _subset(self, handles: list[_ShardHandle]) -> Table:
        """A plain lazy table over a subset of shards (same encodings)."""
        if not handles:
            columns = []
            for attribute in self._manifest.attributes:
                if self._manifest.kind(attribute) == NUMERIC:
                    columns.append(Column._from_numeric_data(
                        attribute, np.empty(0, dtype=np.float64)))
                else:
                    columns.append(Column.from_codes(
                        attribute, np.empty(0, dtype=np.int32),
                        self._sorted_vocabs[attribute]))
            return Table(columns, name=self.name)
        return Table([self._lazy_column(a, handles)
                      for a in self._manifest.attributes], name=self.name)

    def scan_stats(self) -> dict:
        """Cumulative pruning counters for this table handle.

        ``shards_skipped`` is the total; ``zone_map_skipped`` /
        ``stats_skipped`` attribute planned skips to the mechanism that
        proved them (zone maps win ties — they are consulted first).
        ``partials_served`` counts group-bys answered from committed
        manifest partials; ``shards_open`` says how many shard archives
        have actually been opened — together they prove (or disprove) the
        zero-rows-touched fast path.
        """
        shards_open = sum(1 for handle in self._handles if handle.is_open())
        with self._stats_lock:
            return {"scans": self._scans,
                    "shards_scanned": self._shards_scanned,
                    "shards_skipped": self._shards_skipped,
                    "zone_map_skipped": self._zone_map_skipped,
                    "stats_skipped": self._stats_skipped,
                    "rows_skipped": self._rows_skipped,
                    "partials_served": self._partials_served,
                    "bitmap_conjuncts_served": self._bitmap_served,
                    "shards_open": shards_open}


# ---------------------------------------------------------------------- partials


def _group_partials(manifest: Manifest, batch: Table,
                    partials_by: str) -> dict:
    """One shard's committed group-by partials (JSON-ready).

    For every group of the (categorical) cluster key, in the shard's
    first-occurrence order: the row count plus each numeric column's valid
    count and outcome sum — exactly the per-shard quantities
    :meth:`ShardedTable.shard_groupby_partials` computes at runtime, so a
    manifest-served answer is indistinguishable from a computed one.
    """
    index = batch.group_index([partials_by])
    group_rows = index.group_indices()
    keys = [key[0] for key in index.keys]
    sizes = [int(rows.size) for rows in group_rows]
    outcomes: dict[str, dict] = {}
    for attribute in manifest.attributes:
        if manifest.kind(attribute) != NUMERIC:
            continue
        values = np.asarray(batch.column(attribute).values, dtype=np.float64)
        valid_counts = []
        sums = []
        for rows in group_rows:
            grouped = values[rows]
            valid = grouped[~np.isnan(grouped)]
            valid_counts.append(int(valid.size))
            sums.append(float(valid.sum()) if valid.size else 0.0)
        outcomes[attribute] = {"valid": valid_counts, "sum": sums}
    return {"by": partials_by, "keys": keys, "sizes": sizes,
            "outcomes": outcomes}


def _merge_partials(per_shard: list[list]) -> list:
    """Fold per-shard ``(key, size, valid, total)`` entries in shard order.

    Appending keys as they are first seen reproduces the first-occurrence
    group order of one whole-table ``GroupByIndex``; sizes, valid counts,
    and sums are additive (each row lives in exactly one shard).
    """
    order: dict = {}
    merged: list[list] = []
    for entries in per_shard:
        for key, size, valid, total in entries:
            slot = order.get(key)
            if slot is None:
                order[key] = len(merged)
                merged.append([key, size, valid, total])
            else:
                row = merged[slot]
                row[1] += size
                row[2] += valid
                row[3] += total
    return [tuple(row) for row in merged]


# ---------------------------------------------------------------------- naming


def _next_shard_seq(manifest: Manifest) -> int:
    """One past the highest shard sequence number ever committed.

    Shard names are monotonic, *not* positional: compaction removes entries
    from the middle of the shard list, so ``len(shards)`` can collide with a
    kept shard's name — the max-derived sequence never can.  Files named
    below the returned sequence but absent from the manifest are leftovers
    of an interrupted rewrite; they are never referenced and get atomically
    replaced if the name is ever reused.
    """
    highest = -1
    for shard in manifest.shards:
        suffix = shard.shard_id.rsplit("-", 1)[-1]
        if suffix.isdigit():
            highest = max(highest, int(suffix))
    return highest + 1


# ---------------------------------------------------------------------- encoding


def _as_float64(column: Column) -> np.ndarray:
    if column.numeric:
        return np.asarray(column.values, dtype=np.float64)
    if column.n_missing() == len(column):  # all-missing batch column adopts
        return np.full(len(column), np.nan)
    raise StorageError(f"column {column.name!r} is categorical, "
                       "store expects numeric")


def _as_store_codes(column: Column, store_vocab: list) -> np.ndarray:
    """Encode a column against the dataset's append-only store vocabulary.

    New values are appended to ``store_vocab`` in first-seen order (the list
    is mutated in place and committed with the manifest), so codes already
    written in previous shards stay valid forever.
    """
    if column.numeric:
        if column.n_missing() == len(column):
            return np.full(len(column), MISSING_CODE, dtype=np.int32)
        raise StorageError(f"column {column.name!r} is numeric, "
                           "store expects categorical")
    index = {value: code for code, value in enumerate(store_vocab)}
    remap = np.empty(len(column.vocab) + 1, dtype=np.int32)
    for local_code, value in enumerate(column.vocab):
        store_code = index.get(value)
        if store_code is None:
            if not isinstance(value, _JSON_SAFE):
                raise StorageError(
                    f"column {column.name!r}: value {value!r} of type "
                    f"{type(value).__name__} cannot live in a JSON vocabulary")
            store_code = len(store_vocab)
            store_vocab.append(value)
            index[value] = store_code
        remap[local_code] = store_code
    remap[len(column.vocab)] = MISSING_CODE  # sentinel -1 wraps to last slot
    return remap[column.codes]


def _sorted_remap(store_vocab) -> tuple[tuple, np.ndarray | None]:
    """``(sorted vocab, store-code -> sorted-code remap)``.

    Delegates to :func:`repro.dataframe.column.sorted_code_remap` — the one
    source of the deterministic vocabulary order — so loaded columns are
    indistinguishable from freshly factorized ones.  ``remap`` is ``None``
    when the store vocabulary is already sorted: codes then pass through
    untouched (zero-copy reads).
    """
    return sorted_code_remap(store_vocab)
