"""One stored dataset: sharded columnar data + manifest + zone-map scans.

:class:`StoredDataset` owns a dataset directory (see
:mod:`repro.storage.format` for the layout) and provides the write path
(:meth:`create` / :meth:`append`) and the read path (:meth:`load_table`).

The read path returns a :class:`ShardedTable` — a drop-in
:class:`~repro.dataframe.Table` whose columns are
:class:`~repro.dataframe.LazyColumn` views over memory-mapped shard arrays:
nothing is decoded until a column's rows are actually touched, and
``select`` with a pattern condition consults the per-shard zone maps first,
decoding only the shards that could contain matching rows.

Vocabularies are *interned per dataset*: every shard's categorical codes
point into one shared append-only store vocabulary, so shards written years
apart agree on their encoding and appends never rewrite committed shards.
Loaded columns re-expose the deterministic sorted vocabulary the in-memory
:class:`~repro.dataframe.Column` uses, via a per-column O(vocab) code remap
applied lazily per shard — when the store vocabulary happens to be sorted
already (the common import case), codes pass through as the raw memory map.
"""

from __future__ import annotations

import os
import threading
import uuid
from contextlib import contextmanager
from pathlib import Path

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.dataframe import MISSING_CODE, Column, LazyColumn, Pattern, Predicate, Table
from repro.dataframe.column import sorted_code_remap
from repro.storage.format import (
    CATEGORICAL,
    NUMERIC,
    SHARD_DIR,
    TMP_MARKER,
    Manifest,
    ShardInfo,
    StorageError,
    commit_manifest,
    fingerprint_file,
    is_temp_file,
    load_manifest,
    sweep_temp_files,
)
from repro.storage.shard import open_shard, write_shard
from repro.storage.zonemap import (
    categorical_zone_map,
    numeric_zone_map,
    pattern_may_match,
)

_JSON_SAFE = (str, int, float, bool)


@contextmanager
def _append_lock(directory: Path):
    """Advisory cross-process exclusive lock on a dataset directory.

    Uses ``flock`` on a dedicated ``.lock`` file so two writers (separate
    handles or separate ``repro serve --store`` processes) cannot interleave
    shard writes and manifest commits.  On platforms without ``fcntl`` the
    lock degrades to the caller's in-process lock.
    """
    handle = (directory / ".lock").open("a+b")
    try:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX)
        yield
    finally:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_UN)
        handle.close()


class StoredDataset:
    """Handle on one dataset directory (manifest + shards)."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self.manifest = load_manifest(self.directory)

    # ------------------------------------------------------------------ write path

    @classmethod
    def create(cls, directory: str | Path, name: str, table: Table,
               shard_rows: int | None = None) -> "StoredDataset":
        """Create a dataset directory from an in-memory table (version 0).

        ``shard_rows`` splits the initial import into fixed-size shards (one
        shard when omitted), giving zone-map pruning something to skip.
        """
        directory = Path(directory)
        if (directory / "MANIFEST.json").exists():
            raise StorageError(f"dataset already exists at {directory}")
        if shard_rows is not None and shard_rows < 1:
            raise StorageError(f"shard_rows must be positive, got {shard_rows}")
        (directory / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        schema = [{"name": c.name,
                   "kind": NUMERIC if c.numeric else CATEGORICAL}
                  for c in table.columns()]
        manifest = Manifest(name=name, schema=schema,
                            vocabs={c.name: [] for c in table.columns()
                                    if not c.numeric})
        dataset = cls.__new__(cls)
        dataset.directory = directory
        dataset._lock = threading.Lock()
        dataset.manifest = manifest
        rows_per_shard = shard_rows or table.n_rows
        start = 0
        while start < table.n_rows:
            stop = min(start + rows_per_shard, table.n_rows)
            batch = table.take(np.arange(start, stop))
            manifest.shards.append(dataset._write_shard(batch))
            start = stop
        commit_manifest(directory, manifest)
        sweep_temp_files(directory)
        return dataset

    def append(self, batch: Table, expected_version: int | None = None
               ) -> ShardInfo:
        """Durably append a batch as one new shard and commit the manifest.

        The shard file is fully written and renamed into place *before* the
        manifest referencing it is atomically replaced, so a crash at any
        point leaves the previous committed state readable.  ``version``
        advances by exactly one per successful append.

        Appends are serialised against *other handles and processes* via an
        advisory ``flock`` on the dataset directory (POSIX; best-effort
        elsewhere): the manifest is re-read under the lock, so concurrent
        appenders chain cleanly instead of overwriting each other's shard
        files, and a stale ``expected_version`` fails fast.
        """
        with self._lock, _append_lock(self.directory):
            manifest = load_manifest(self.directory)  # fresh committed state
            if expected_version is not None and \
                    manifest.version != expected_version:
                raise StorageError(
                    f"append expected version {expected_version}, "
                    f"store is at {manifest.version}")
            self._validate_batch(manifest, batch)
            self.manifest = manifest
            shard = self._write_shard(batch)
            manifest.shards.append(shard)
            manifest.version += 1
            commit_manifest(self.directory, manifest)
            sweep_temp_files(self.directory)
            return shard

    def _validate_batch(self, manifest: Manifest, batch: Table) -> None:
        if batch.attributes != manifest.attributes:
            raise StorageError(
                f"batch schema {list(batch.attributes)} does not match "
                f"stored schema {list(manifest.attributes)}")
        for attribute in batch.attributes:
            column = batch.column(attribute)
            stored_numeric = manifest.kind(attribute) == NUMERIC
            if column.numeric != stored_numeric and \
                    column.n_missing() < len(column):
                raise StorageError(
                    f"batch column {attribute!r} is "
                    f"{'numeric' if column.numeric else 'categorical'}, "
                    f"store holds a "
                    f"{'numeric' if stored_numeric else 'categorical'} column")

    def _write_shard(self, batch: Table) -> ShardInfo:
        """Encode, write, fingerprint, and rename one shard (no commit)."""
        manifest = self.manifest
        arrays: dict[str, np.ndarray] = {}
        zone_maps: dict[str, dict] = {}
        for attribute in manifest.attributes:
            column = batch.column(attribute)
            if manifest.kind(attribute) == NUMERIC:
                values = _as_float64(column)
                arrays[attribute] = values
                zone_maps[attribute] = numeric_zone_map(values)
            else:
                codes = _as_store_codes(column, manifest.vocabs[attribute])
                arrays[attribute] = codes
                zone_maps[attribute] = categorical_zone_map(codes)
        shard_id = f"shard-{len(manifest.shards):06d}"
        relative = f"{SHARD_DIR}/{shard_id}.npz"
        final = self.directory / relative
        tmp = final.with_name(f"{final.name}{TMP_MARKER}{uuid.uuid4().hex}")
        write_shard(tmp, arrays)
        fingerprint = fingerprint_file(tmp)
        os.replace(tmp, final)
        return ShardInfo(shard_id=shard_id, file=relative, n_rows=batch.n_rows,
                         fingerprint=fingerprint, zone_maps=zone_maps)

    # ------------------------------------------------------------------ read path

    def reload(self) -> Manifest:
        """Re-read the committed manifest (picks up appends by other handles)."""
        with self._lock:
            self.manifest = load_manifest(self.directory)
            return self.manifest

    def load_table(self, prune: bool = True) -> "ShardedTable":
        """The dataset as a lazily-loaded, zone-map-pruned table."""
        manifest = self.manifest
        decoders: dict[str, np.ndarray | None] = {}
        sorted_vocabs: dict[str, tuple] = {}
        for attribute in manifest.attributes:
            if manifest.kind(attribute) != CATEGORICAL:
                continue
            store_vocab = manifest.vocabs[attribute]
            sorted_vocab, remap = _sorted_remap(store_vocab)
            sorted_vocabs[attribute] = sorted_vocab
            decoders[attribute] = remap
        handles = []
        for shard in manifest.shards:
            path = self.directory / shard.file
            if is_temp_file(path.name):  # never committed; defensive
                continue
            if not path.exists():
                raise StorageError(f"manifest references missing shard "
                                   f"{shard.file} in {self.directory}")
            handles.append(_ShardHandle(path, shard, decoders))
        return ShardedTable(manifest, handles, sorted_vocabs, prune=prune)

    def verify(self) -> None:
        """Check every committed shard's content fingerprint (integrity scan)."""
        for shard in self.manifest.shards:
            actual = fingerprint_file(self.directory / shard.file)
            if actual != shard.fingerprint:
                raise StorageError(
                    f"shard {shard.shard_id} fingerprint mismatch: "
                    f"manifest {shard.fingerprint[:12]}…, file {actual[:12]}…")

    def nbytes(self) -> int:
        """Total committed shard bytes on disk."""
        return sum((self.directory / shard.file).stat().st_size
                   for shard in self.manifest.shards
                   if (self.directory / shard.file).exists())

    def stats(self) -> dict:
        return {"name": self.manifest.name, "version": self.manifest.version,
                "rows": self.manifest.n_rows,
                "shards": len(self.manifest.shards), "bytes": self.nbytes()}


class _ShardHandle:
    """Lazily opened, memory-mapped view of one committed shard."""

    def __init__(self, path: Path, info: ShardInfo,
                 decoders: dict[str, np.ndarray | None]):
        self.path = path
        self.info = info
        self._decoders = decoders
        self._arrays: dict[str, np.ndarray] | None = None
        self._lock = threading.Lock()

    @property
    def n_rows(self) -> int:
        return self.info.n_rows

    def arrays(self) -> dict[str, np.ndarray]:
        with self._lock:
            if self._arrays is None:
                self._arrays = open_shard(self.path)
            return self._arrays

    def decoded(self, attribute: str) -> np.ndarray:
        """The column's rows in in-memory encoding (sorted-vocab codes/floats)."""
        raw = self.arrays()[attribute]
        remap = self._decoders.get(attribute)
        if remap is None:
            return raw  # numeric, or store vocab already sorted: zero-copy
        return remap[raw]  # store codes -> sorted codes; sentinel wraps


class ShardedTable(Table):
    """A :class:`Table` over committed shards with zone-map pruned scans.

    Columns are lazy: each one concatenates its shards' (memory-mapped)
    arrays on first touch.  ``select`` with a pattern condition prunes whole
    shards via the manifest's zone maps before any mask is evaluated, so a
    selective scan only decodes the shards that can contain matches — and
    returns exactly what the unpruned scan would.
    """

    def __init__(self, manifest: Manifest, handles: list[_ShardHandle],
                 sorted_vocabs: dict[str, tuple], prune: bool = True):
        self._manifest = manifest
        self._handles = handles
        self._sorted_vocabs = sorted_vocabs
        self._prune = prune
        self._stats_lock = threading.Lock()
        self._scans = 0
        self._shards_scanned = 0
        self._shards_skipped = 0
        self._rows_skipped = 0
        columns = [self._lazy_column(attribute, handles)
                   for attribute in manifest.attributes]
        super().__init__(columns, name=manifest.name)

    @property
    def version(self) -> int:
        return self._manifest.version

    @property
    def n_shards(self) -> int:
        return len(self._handles)

    def _lazy_column(self, attribute: str,
                     handles: list[_ShardHandle]) -> LazyColumn:
        numeric = self._manifest.kind(attribute) == NUMERIC
        length = sum(h.n_rows for h in handles)

        def loader() -> np.ndarray:
            parts = [handle.decoded(attribute) for handle in handles]
            if len(parts) == 1:
                return parts[0]  # single shard: the memory map itself
            if not parts:
                return np.empty(0, dtype=np.float64 if numeric else np.int32)
            return np.concatenate(parts)

        return LazyColumn(attribute, numeric, length, loader,
                          vocab=self._sorted_vocabs.get(attribute, ()))

    # ------------------------------------------------------------------ pruned scans

    def select(self, condition) -> Table:
        """Pattern selections consult zone maps and skip whole shards."""
        if not self._prune or len(self._handles) <= 1 or \
                not isinstance(condition, (Pattern, Predicate)):
            return super().select(condition)
        vocabs = self._manifest.vocabs
        survivors = [h for h in self._handles
                     if pattern_may_match(h.info.zone_maps, condition, vocabs)]
        with self._stats_lock:
            self._scans += 1
            self._shards_scanned += len(self._handles)
            self._shards_skipped += len(self._handles) - len(survivors)
            self._rows_skipped += sum(h.n_rows for h in self._handles
                                      if h not in survivors)
        if len(survivors) == len(self._handles):
            return super().select(condition)
        return self._subset(survivors).select(condition)

    def _subset(self, handles: list[_ShardHandle]) -> Table:
        """A plain lazy table over a subset of shards (same encodings)."""
        if not handles:
            columns = []
            for attribute in self._manifest.attributes:
                if self._manifest.kind(attribute) == NUMERIC:
                    columns.append(Column._from_numeric_data(
                        attribute, np.empty(0, dtype=np.float64)))
                else:
                    columns.append(Column.from_codes(
                        attribute, np.empty(0, dtype=np.int32),
                        self._sorted_vocabs[attribute]))
            return Table(columns, name=self.name)
        return Table([self._lazy_column(a, handles)
                      for a in self._manifest.attributes], name=self.name)

    def scan_stats(self) -> dict:
        """Cumulative pruning counters for this table handle."""
        with self._stats_lock:
            return {"scans": self._scans,
                    "shards_scanned": self._shards_scanned,
                    "shards_skipped": self._shards_skipped,
                    "rows_skipped": self._rows_skipped}


# ---------------------------------------------------------------------- encoding


def _as_float64(column: Column) -> np.ndarray:
    if column.numeric:
        return np.asarray(column.values, dtype=np.float64)
    if column.n_missing() == len(column):  # all-missing batch column adopts
        return np.full(len(column), np.nan)
    raise StorageError(f"column {column.name!r} is categorical, "
                       "store expects numeric")


def _as_store_codes(column: Column, store_vocab: list) -> np.ndarray:
    """Encode a column against the dataset's append-only store vocabulary.

    New values are appended to ``store_vocab`` in first-seen order (the list
    is mutated in place and committed with the manifest), so codes already
    written in previous shards stay valid forever.
    """
    if column.numeric:
        if column.n_missing() == len(column):
            return np.full(len(column), MISSING_CODE, dtype=np.int32)
        raise StorageError(f"column {column.name!r} is numeric, "
                           "store expects categorical")
    index = {value: code for code, value in enumerate(store_vocab)}
    remap = np.empty(len(column.vocab) + 1, dtype=np.int32)
    for local_code, value in enumerate(column.vocab):
        store_code = index.get(value)
        if store_code is None:
            if not isinstance(value, _JSON_SAFE):
                raise StorageError(
                    f"column {column.name!r}: value {value!r} of type "
                    f"{type(value).__name__} cannot live in a JSON vocabulary")
            store_code = len(store_vocab)
            store_vocab.append(value)
            index[value] = store_code
        remap[local_code] = store_code
    remap[len(column.vocab)] = MISSING_CODE  # sentinel -1 wraps to last slot
    return remap[column.codes]


def _sorted_remap(store_vocab) -> tuple[tuple, np.ndarray | None]:
    """``(sorted vocab, store-code -> sorted-code remap)``.

    Delegates to :func:`repro.dataframe.column.sorted_code_remap` — the one
    source of the deterministic vocabulary order — so loaded columns are
    indistinguishable from freshly factorized ones.  ``remap`` is ``None``
    when the store vocabulary is already sorted: codes then pass through
    untouched (zero-copy reads).
    """
    return sorted_code_remap(store_vocab)
