"""On-disk sharded columnar storage beneath the dataframe and serving layers.

``repro.storage`` decouples durable state from the serving workers: datasets
live on disk as sharded, dictionary-encoded columnar files with a JSON
manifest (schema, shared interned vocabularies, zone maps, monotonic
version), loads are memory-mapped and lazy, scans prune whole shards through
per-shard zone maps, appends are crash-safe atomic commits, and the
explanation engine can snapshot/restore its registrations and summary cache
for warm restarts (``repro serve --store``).

Entry points:

* :class:`DatasetStore` — a store root holding many datasets + engine state;
* :class:`StoredDataset` — one dataset directory (manifest + shards);
* :class:`ShardedTable` — the lazily-loaded, zone-map-pruned ``Table`` view;
* :func:`~repro.storage.zonemap.pattern_may_match` — the pushdown predicate.
"""

from repro.storage.dataset import ShardedTable, StoredDataset
from repro.storage.format import (
    FORMAT_VERSION,
    Manifest,
    ShardInfo,
    StorageError,
)
from repro.storage.shard import open_shard, write_shard
from repro.storage.store import DatasetStore, config_from_dict, config_to_dict
from repro.storage.zonemap import (
    categorical_zone_map,
    numeric_zone_map,
    pattern_may_match,
    shard_may_match,
)

__all__ = [
    "DatasetStore",
    "FORMAT_VERSION",
    "Manifest",
    "ShardInfo",
    "ShardedTable",
    "StorageError",
    "StoredDataset",
    "categorical_zone_map",
    "config_from_dict",
    "config_to_dict",
    "numeric_zone_map",
    "open_shard",
    "pattern_may_match",
    "shard_may_match",
    "write_shard",
]
