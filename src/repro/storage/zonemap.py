"""Per-shard zone maps: skip whole shards before any mask is evaluated.

A zone map summarises one column of one shard:

* **numeric** — the min/max of the non-NaN values (``None`` when the shard
  has no non-missing value) plus the missing count;
* **categorical** — the sorted list of *store-vocabulary codes* present in
  the shard (a small explicit bitset — domains are the paper's categorical
  attributes, not open text) plus the missing count.

Pruning is *conservative*: :func:`shard_may_match` answers "could any row of
this shard satisfy the predicate?" and only answers ``False`` when the zone
map proves it.  Anything the map cannot decide (un-orderable mixed types,
non-numeric literals against numeric columns, unknown attributes) keeps the
shard, so a pruned scan always returns exactly the rows an unpruned scan
would — the proof obligation the hypothesis tests in
``tests/test_storage.py`` discharge.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import MISSING_CODE, Pattern, Predicate
from repro.dataframe.predicates import Op

NUMERIC = "numeric"
CATEGORICAL = "categorical"


# ---------------------------------------------------------------------- build


def numeric_zone_map(values: np.ndarray) -> dict:
    values = np.asarray(values, dtype=np.float64)
    missing = np.isnan(values)
    present = values[~missing]
    return {
        "kind": NUMERIC,
        "min": float(present.min()) if present.size else None,
        "max": float(present.max()) if present.size else None,
        "n_missing": int(missing.sum()),
    }


def categorical_zone_map(store_codes: np.ndarray) -> dict:
    store_codes = np.asarray(store_codes)
    present = np.unique(store_codes)
    return {
        "kind": CATEGORICAL,
        "codes": [int(c) for c in present if c != MISSING_CODE],
        "n_missing": int((store_codes == MISSING_CODE).sum()),
    }


# ---------------------------------------------------------------------- prune


def shard_may_match(zone_map: dict | None, predicate: Predicate,
                    store_vocab: list | None = None) -> bool:
    """Whether any row of the shard could satisfy ``predicate``.

    ``store_vocab`` is the dataset's append-ordered vocabulary for the
    predicate's attribute (categorical columns only).  Returns ``True`` on
    any doubt — pruning must never change a scan's result.
    """
    if zone_map is None:
        return True
    if zone_map.get("kind") == NUMERIC:
        return _numeric_may_match(zone_map, predicate)
    if zone_map.get("kind") == CATEGORICAL:
        return _categorical_may_match(zone_map, predicate, store_vocab or [])
    return True


def pattern_may_match(zone_maps: dict, pattern: Pattern | Predicate,
                      vocabs: dict[str, list]) -> bool:
    """Conjunction pushdown: every predicate must be satisfiable in the shard."""
    predicates = [pattern] if isinstance(pattern, Predicate) else \
        list(pattern.predicates)
    return all(
        shard_may_match(zone_maps.get(p.attribute), p, vocabs.get(p.attribute))
        for p in predicates
    )


def _numeric_may_match(zone_map: dict, predicate: Predicate) -> bool:
    lo, hi = zone_map.get("min"), zone_map.get("max")
    if lo is None or hi is None:
        return False  # no non-missing value; predicates never match missing
    try:
        target = float(predicate.value)
    except (TypeError, ValueError):
        return True  # evaluation will raise the same error it always did
    if np.isnan(target):
        return False  # NaN compares False against everything
    op = predicate.op
    if op is Op.EQ:
        return lo <= target <= hi
    if op is Op.NE:
        return not (lo == hi == target)
    if op is Op.LT:
        return lo < target
    if op is Op.GT:
        return hi > target
    if op is Op.LE:
        return lo <= target
    return hi >= target  # GE


def _categorical_may_match(zone_map: dict, predicate: Predicate,
                           store_vocab: list) -> bool:
    codes = zone_map.get("codes", [])
    if not codes:
        return False  # all rows missing
    op = predicate.op
    if op in (Op.EQ, Op.NE):
        try:
            target_code = store_vocab.index(predicate.value)
        except ValueError:
            target_code = None  # value absent from the whole dataset
        if op is Op.EQ:
            return target_code is not None and target_code in codes
        # NE: some present value must differ from the target.
        return not (len(codes) == 1 and codes[0] == target_code)
    # Ordered operator: decide per present vocabulary value (tiny domains).
    from repro.dataframe.predicates import _ordered_compare

    for code in codes:
        if code >= len(store_vocab):  # stale map; keep the shard
            return True
        try:
            if _ordered_compare(store_vocab[code], op, predicate.value):
                return True
        except TypeError:
            return True  # evaluation will raise identically; don't hide it
    return False
