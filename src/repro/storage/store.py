"""The store root: many datasets, one engine registry, warm-restart state.

Layout::

    <root>/
        STORE.json                   # {"format_version": 1}
        datasets/<name>/             # one StoredDataset directory each
        engine/
            registry.json            # dataset registrations (DAG, config, …)
            summaries.pkl            # pickled summary-cache entries

``registry.json`` records everything :meth:`ExplanationEngine.register_dataset`
needs besides the table itself — the causal DAG, the CauSumX configuration,
and the grouping/treatment attribute partitions — so
``ExplanationEngine.from_store`` can rebuild a fully registered engine from
the directory alone.  ``summaries.pkl`` holds the engine's LRU summary cache
(pickled, so restored summaries are byte-identical Python objects); entries
are validated against each dataset's committed manifest version on restore,
so a cache snapshot can never resurrect summaries for stale data.
"""

from __future__ import annotations

import dataclasses
import pickle
from pathlib import Path

from repro.core import CauSumXConfig
from repro.dataframe import Table
from repro.graph import CausalDAG
from repro.mining.treatments import TreatmentMinerConfig
from repro.storage.dataset import StoredDataset
from repro.storage.format import (
    FORMAT_VERSION,
    StorageError,
    atomic_write_bytes,
    atomic_write_json,
    read_json,
)

_STORE_MARKER = "STORE.json"
_DATASETS = "datasets"
_ENGINE = "engine"
_REGISTRY = "registry.json"
_SUMMARIES = "summaries.pkl"


class DatasetStore:
    """A directory holding stored datasets plus persisted engine state."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        marker = self.root / _STORE_MARKER
        if not marker.exists():
            raise StorageError(
                f"{self.root} is not a dataset store (missing {_STORE_MARKER}; "
                f"run `repro store init` first)")
        spec = read_json(marker)
        if spec.get("format_version") != FORMAT_VERSION:
            raise StorageError(
                f"store format_version {spec.get('format_version')!r} "
                f"unsupported (this build reads {FORMAT_VERSION})")
        self._datasets: dict[str, StoredDataset] = {}
        self._telemetry = None

    def telemetry_log(self):
        """The store's shared query-telemetry sink (``<root>/telemetry/``).

        One :class:`~repro.obs.TelemetryLog` per store object — every engine
        built from this store appends to the same rotating files.  Creating
        the log touches no disk until the first record is written, and
        records are only written while telemetry is enabled, so this is free
        for stores that never serve with observability on.
        """
        if self._telemetry is None:
            from repro.obs import TelemetryLog

            self._telemetry = TelemetryLog(self.root / "telemetry")
        return self._telemetry

    def telemetry_reader(self):
        """A version-filtered reader over the store's telemetry files.

        The reader drops records whose dataset is unknown to the store or
        whose recorded data version falls outside the dataset's committed
        window — leftovers of a deleted-and-recreated store at the same
        path would otherwise pollute every aggregate that joins telemetry
        against current statistics (``repro obs summary``, the adaptive
        warm start).
        """
        from repro.obs.telemetry import TelemetryReader

        versions = {name: self.dataset(name).manifest.version
                    for name in self.dataset_names()}
        return TelemetryReader(self.root / "telemetry", versions=versions)

    # ------------------------------------------------------------------ lifecycle

    @classmethod
    def init(cls, root: str | Path) -> "DatasetStore":
        """Create an empty store at ``root`` (idempotent on an existing store)."""
        root = Path(root)
        if (root / _STORE_MARKER).exists():
            return cls(root)
        (root / _DATASETS).mkdir(parents=True, exist_ok=True)
        (root / _ENGINE).mkdir(parents=True, exist_ok=True)
        atomic_write_json(root / _STORE_MARKER,
                          {"format_version": FORMAT_VERSION})
        return cls(root)

    # ------------------------------------------------------------------ datasets

    def dataset_names(self) -> list[str]:
        base = self.root / _DATASETS
        if not base.exists():
            return []
        return sorted(p.name for p in base.iterdir()
                      if (p / "MANIFEST.json").exists())

    def dataset(self, name: str) -> StoredDataset:
        """Open (and cache) the handle for one stored dataset."""
        handle = self._datasets.get(name)
        if handle is None:
            directory = self.root / _DATASETS / name
            if not (directory / "MANIFEST.json").exists():
                raise StorageError(
                    f"no dataset {name!r} in store {self.root} "
                    f"(have: {self.dataset_names()})")
            handle = StoredDataset(directory)
            self._datasets[name] = handle
        return handle

    def import_table(self, name: str, table: Table,
                     shard_rows: int | None = None) -> StoredDataset:
        """Write an in-memory table as a new stored dataset (version 0)."""
        handle = StoredDataset.create(self.root / _DATASETS / name, name,
                                      table, shard_rows=shard_rows)
        self._datasets[name] = handle
        return handle

    def import_bundle(self, bundle, config: CauSumXConfig | None = None,
                      name: str | None = None,
                      shard_rows: int | None = None) -> StoredDataset:
        """Import a :class:`~repro.datasets.DatasetBundle` plus its registration.

        Writes the table shards *and* a registry entry (DAG, config,
        grouping/treatment attributes), so ``repro serve --store`` can serve
        the dataset without re-deriving anything.
        """
        name = name or bundle.name
        handle = self.import_table(name, bundle.table, shard_rows=shard_rows)
        self.register_entry(
            name, dag=bundle.dag, config=config,
            grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        return handle

    def compact(self, name: str, shard_rows: int | None = None,
                cluster_by: str | None = None,
                min_rows: int | None = None) -> dict:
        """Compact one stored dataset (see :meth:`StoredDataset.compact`)."""
        return self.dataset(name).compact(shard_rows=shard_rows,
                                          cluster_by=cluster_by,
                                          min_rows=min_rows)

    # ------------------------------------------------------------------ registry

    def registry(self) -> dict:
        path = self.root / _ENGINE / _REGISTRY
        if not path.exists():
            return {}
        return read_json(path)

    def register_entry(self, name: str, dag: CausalDAG | None = None,
                       config: CauSumXConfig | None = None,
                       grouping_attributes=None,
                       treatment_attributes=None) -> None:
        """Record (or replace) one dataset's engine registration."""
        registry = self.registry()
        registry[name] = {
            "dag": dag.to_dict() if dag is not None else None,
            "config": config_to_dict(config) if config is not None else None,
            "grouping_attributes": list(grouping_attributes)
            if grouping_attributes is not None else None,
            "treatment_attributes": list(treatment_attributes)
            if treatment_attributes is not None else None,
        }
        (self.root / _ENGINE).mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.root / _ENGINE / _REGISTRY, registry)

    # ------------------------------------------------------------------ warm restarts

    def snapshot(self, engine) -> dict:
        """Persist the engine's restorable state into the store.

        Refreshes ``registry.json`` from the engine's live registrations and
        pickles the summary-cache entries of every store-backed dataset.
        Returns ``{"datasets": ..., "summaries": ...}`` counts.  Summaries
        are keyed ``(dataset, version, fingerprint)``; on restore only the
        entries matching each dataset's committed manifest version are
        accepted, so snapshots taken moments before a crash can never serve
        stale explanations.
        """
        names = set(self.dataset_names())
        registered = 0
        for name in engine.datasets():
            if name not in names:
                continue
            state = engine.dataset_state(name)
            self.register_entry(
                name, dag=state.dag, config=state.config,
                grouping_attributes=state.grouping_attributes,
                treatment_attributes=state.treatment_attributes)
            registered += 1
        entries = [(key, summary)
                   for key, summary in engine.summary_cache_items()
                   if key[0] in names]
        payload = pickle.dumps({"format_version": FORMAT_VERSION,
                                "entries": entries},
                               protocol=pickle.HIGHEST_PROTOCOL)
        (self.root / _ENGINE).mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self.root / _ENGINE / _SUMMARIES, payload)
        return {"datasets": registered, "summaries": len(entries)}

    def load_summaries(self) -> list[tuple]:
        """The pickled summary-cache entries, or ``[]`` when none were saved."""
        path = self.root / _ENGINE / _SUMMARIES
        if not path.exists():
            return []
        with path.open("rb") as handle:
            payload = pickle.load(handle)
        if payload.get("format_version") != FORMAT_VERSION:
            return []
        return list(payload.get("entries", []))

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        return {name: self.dataset(name).stats()
                for name in self.dataset_names()}


# ---------------------------------------------------------------------- config codec


def config_to_dict(config: CauSumXConfig) -> dict:
    """JSON-compatible encoding of a :class:`CauSumXConfig` (nested miner too)."""
    return dataclasses.asdict(config)


def config_from_dict(spec: dict) -> CauSumXConfig:
    spec = dict(spec)
    treatment = spec.pop("treatment", None)
    if isinstance(treatment, dict):
        spec["treatment"] = TreatmentMinerConfig(**treatment)
    elif treatment is not None:
        spec["treatment"] = treatment
    return CauSumXConfig(**spec)
