"""The treatment-pattern lattice traversed by Algorithm 2.

Nodes are conjunctive patterns over the treatment attributes; there is an edge
from ``P1`` to ``P2`` when ``P2`` extends ``P1`` by exactly one predicate.  The
lattice is generated level by level and only the nodes whose parents all
survived the previous level are materialised.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.dataframe import Op, Pattern, Predicate, Table


class PatternLattice:
    """Level-wise generator of candidate treatment patterns.

    When a shared :class:`~repro.dataframe.MaskCache` is supplied, atomic
    predicates are evaluated through it (warming the cache for the estimator
    that shares it) and predicates whose full-table support is below
    ``min_support`` are pruned: a treatment that covers fewer than
    ``min_group_size`` tuples in the whole table can never satisfy the
    positivity check inside any sub-population, so pruning it cannot change
    any result.
    """

    def __init__(self, table: Table, attributes: Sequence[str],
                 max_values_per_attribute: int = 20, numeric_bins: int = 3,
                 mask_cache=None, min_support: int = 1, atom_cache: dict | None = None):
        self.table = table
        self.attributes = list(attributes)
        self.max_values_per_attribute = max_values_per_attribute
        self.numeric_bins = numeric_bins
        self.mask_cache = mask_cache
        self.min_support = min_support
        self.atom_cache = atom_cache

    # ------------------------------------------------------------------ level 1

    def atomic_predicates(self) -> list[Predicate]:
        """All single predicates ``A_i op a_j`` over the treatment attributes.

        Categorical attributes produce equality predicates over their most
        frequent values.  Numeric attributes with many distinct values produce
        threshold predicates (``<=`` / ``>``) at quantile cut points, mirroring
        the binned treatments used in the paper's experiments.

        With an ``atom_cache`` (a plain dict shared by the caller, typically
        via :class:`~repro.causal.CATEEstimator`), the enumerated atoms are
        memoized per generation parameters, so repeated lattices over the same
        table — one per (grouping pattern, direction) — enumerate them once.
        The enumeration is deterministic, so concurrent miners that race on a
        cold cache store identical values.
        """
        if self.atom_cache is not None:
            cache_key = (tuple(self.attributes), self.max_values_per_attribute,
                         self.numeric_bins,
                         self.min_support if self.mask_cache is not None else None)
            cached = self.atom_cache.get(cache_key)
            if cached is not None:
                return list(cached)
        candidates: list[tuple[Predicate, int | None]] = []
        for attribute in self.attributes:
            column = self.table.column(attribute)
            # Candidate values come straight from the dictionary-encoded
            # column: value_counts/unique are bincount/np.unique over the
            # cached codes, so no row rescan happens per attribute.
            counts = self.table.value_counts(attribute)
            if not counts:
                continue
            if column.numeric and len(counts) > self.max_values_per_attribute:
                candidates.extend(self._numeric_predicates(attribute))
            else:
                values = sorted(counts, key=lambda v: (-counts[v], repr(v)))
                values = values[:self.max_values_per_attribute]
                # An equality atom's support is exactly the value's count
                # (missing values satisfy neither), known without any mask.
                candidates.extend((Predicate(attribute, Op.EQ, v), counts[v])
                                  for v in values)
        if self.mask_cache is not None and self.min_support > 0:
            predicates = self._prune_by_support(candidates)
        else:
            predicates = [p for p, _ in candidates]
        if self.atom_cache is not None:
            self.atom_cache[cache_key] = tuple(predicates)
        return predicates

    def _prune_by_support(
            self, candidates: list[tuple[Predicate, int | None]]
    ) -> list[Predicate]:
        """Drop atoms whose full-table support is below ``min_support``.

        With planning enabled, the supports computed *during enumeration*
        (value counts for equality atoms, one sorted pass for threshold
        atoms) decide directly: low-support atoms are deferred — pruned
        without ever evaluating their boolean masks — and surviving atoms'
        masks are left to be computed (and cached) on first real use.  The
        surviving atom list is identical to the oracle's, which evaluates
        every atom's mask through the shared cache to take its support.
        """
        from repro.plan.config import planner_enabled
        from repro.plan.planner import GLOBAL_PLANNER_STATS

        if not planner_enabled():
            return [p for p, _ in candidates
                    if self.mask_cache.support(p) >= self.min_support]
        survivors = []
        deferred = 0
        for predicate, support in candidates:
            if support is None:  # no closed form: fall back to the mask
                support = self.mask_cache.support(predicate)
            if support >= self.min_support:
                survivors.append(predicate)
            else:
                deferred += 1
        GLOBAL_PLANNER_STATS.record_deferred_atoms(deferred)
        return survivors

    def _numeric_predicates(self, attribute: str
                            ) -> list[tuple[Predicate, int]]:
        """Threshold atoms at quantile cuts, with their exact supports.

        One sorted pass per attribute prices every cut: ``searchsorted``
        gives the row count at or below each threshold, so the support of
        both atoms of a cut is known without evaluating either mask.
        """
        values = self.table.column(attribute).values.astype(np.float64)
        values = values[~np.isnan(values)]
        if values.size == 0:
            return []
        quantiles = np.linspace(0, 1, self.numeric_bins + 1)[1:-1]
        cuts = sorted({round(float(np.quantile(values, q)), 6) for q in quantiles})
        ordered = np.sort(values)
        predicates = []
        for cut in cuts:
            at_or_below = int(np.searchsorted(ordered, cut, side="right"))
            predicates.append((Predicate(attribute, Op.LE, cut), at_or_below))
            predicates.append((Predicate(attribute, Op.GT, cut),
                               int(ordered.size) - at_or_below))
        return predicates

    def level_one(self) -> list[Pattern]:
        return [Pattern([p]) for p in self.atomic_predicates()]

    # ------------------------------------------------------------------ deeper levels

    @staticmethod
    def next_level(survivors: Iterable[Pattern]) -> list[Pattern]:
        """Generate all patterns one predicate longer whose parents all survived.

        ``survivors`` is the set of patterns of the current level that passed
        the CATE sign filter; a candidate of the next level is materialised only
        if *every* sub-pattern obtained by removing one predicate is a survivor
        (the paper's "all parents have a positive CATE" condition).
        """
        survivors = list(survivors)
        if not survivors:
            return []
        survivor_set = set(survivors)
        length = len(survivors[0].predicates)
        candidates: set[Pattern] = set()
        for p1, p2 in combinations(survivors, 2):
            union = set(p1.predicates) | set(p2.predicates)
            if len(union) != length + 1:
                continue
            attributes = [p.attribute for p in union]
            if len(set(attributes)) != len(attributes):
                continue  # conflicting predicates on the same attribute
            candidate = Pattern(union)
            if candidate in candidates:
                continue
            if all(Pattern(candidate.predicates[:i] + candidate.predicates[i + 1:])
                   in survivor_set for i in range(len(candidate.predicates))):
                candidates.add(candidate)
        return sorted(candidates, key=repr)

    @staticmethod
    def parents(pattern: Pattern) -> list[Pattern]:
        """Immediate parents of a pattern in the lattice."""
        preds = pattern.predicates
        return [Pattern(preds[:i] + preds[i + 1:]) for i in range(len(preds))]
