"""Algorithm 2: greedy lattice search for the top treatment pattern per grouping pattern."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.causal import CATEEstimator, EffectEstimate
from repro.dataframe import Pattern
from repro.graph import CausalDAG
from repro.mining.lattice import PatternLattice


@dataclass(frozen=True)
class TreatmentCandidate:
    """A treatment pattern together with its estimated CATE for a grouping pattern."""

    pattern: Pattern
    estimate: EffectEstimate

    @property
    def cate(self) -> float:
        return self.estimate.value

    def __repr__(self) -> str:
        return f"TreatmentCandidate({self.pattern!r}, CATE={self.cate:.4g})"


@dataclass
class TreatmentMinerConfig:
    """Knobs of Algorithm 2 and its optimisations (Section 5.2).

    Attributes
    ----------
    max_levels:
        Hard cap on lattice depth (the algorithm usually stops earlier via the
        "maximum not improved" rule).
    keep_fraction:
        Optimisation (b): fraction of the highest-|CATE| survivors carried to the
        next level (the paper keeps the top 50%).
    near_zero:
        Optimisation (b): patterns with |CATE| below this value are discarded.
    significance_level:
        Only treatments whose CATE is statistically significant at this level
        are eligible to be returned (the case studies report p < 1e-3).
    prune_attributes:
        Optimisation (a): drop treatment attributes with no causal path to the
        outcome in the DAG.
    max_values_per_attribute / numeric_bins:
        Passed to the lattice's atomic-predicate generation.
    min_group_size:
        Minimum treated/control group size for a CATE to be considered valid.
    """

    max_levels: int = 4
    keep_fraction: float = 0.5
    near_zero: float = 0.0
    significance_level: float = 0.05
    prune_attributes: bool = True
    max_values_per_attribute: int = 20
    numeric_bins: int = 3
    min_group_size: int = 10


def mine_top_treatment(estimator: CATEEstimator, grouping_pattern: Pattern,
                       treatment_attributes: Sequence[str], direction: str = "+",
                       dag: CausalDAG | None = None,
                       config: TreatmentMinerConfig | None = None,
                       ) -> TreatmentCandidate | None:
    """Find the treatment pattern with the highest (or lowest) CATE for a grouping pattern.

    This is Algorithm 2.  ``direction`` is ``sigma``: ``"+"`` searches for the
    most positive CATE, ``"-"`` for the most negative.  Returns ``None`` when no
    valid, statistically significant treatment with the requested sign exists.
    """
    if direction not in {"+", "-"}:
        raise ValueError("direction must be '+' or '-'")
    config = config or TreatmentMinerConfig()
    dag = dag if dag is not None else estimator.dag

    attributes = list(treatment_attributes)
    if config.prune_attributes and dag is not None:
        relevant = dag.causally_relevant(estimator.outcome)
        pruned = [a for a in attributes if a in relevant]
        if pruned:
            attributes = pruned
    if not attributes:
        return None

    lattice = PatternLattice(
        estimator.table, attributes,
        max_values_per_attribute=config.max_values_per_attribute,
        numeric_bins=config.numeric_bins,
        mask_cache=estimator.mask_cache,
        min_support=estimator.min_group_size,
        atom_cache=estimator.atom_cache,
    )
    sign = 1.0 if direction == "+" else -1.0

    def evaluate(patterns: Sequence[Pattern]) -> list[TreatmentCandidate]:
        """ComputeCATEnFilter: estimate CATE and keep valid patterns with sign sigma.

        Whole lattice levels are estimated through one ``estimate_many`` batch
        call so the grouping pattern's sub-population is bound only once.
        """
        survivors = []
        estimates = estimator.estimate_many(patterns, grouping_pattern)
        for pattern, estimate in zip(patterns, estimates):
            if not estimate.is_valid():
                continue
            if sign * estimate.value <= config.near_zero:
                continue
            survivors.append(TreatmentCandidate(pattern, estimate))
        survivors.sort(key=lambda c: sign * c.cate, reverse=True)
        return survivors

    def truncate(candidates: list[TreatmentCandidate]) -> list[TreatmentCandidate]:
        if not candidates or config.keep_fraction >= 1.0:
            return candidates
        keep = max(1, int(len(candidates) * config.keep_fraction))
        return candidates[:keep]

    # Level 1.
    level = evaluate(lattice.level_one())
    if not level:
        return None
    best = level[0]
    survivors = truncate(level)

    depth = 1
    while depth < config.max_levels:
        next_patterns = lattice.next_level([c.pattern for c in survivors])
        if not next_patterns:
            break
        level = evaluate(next_patterns)
        if not level:
            break
        top = level[0]
        if sign * top.cate > sign * best.cate:
            best = top
        else:
            break  # the running maximum is not in this level: terminate
        survivors = truncate(level)
        depth += 1

    if best.estimate.p_value > config.significance_level:
        return None
    return best


def mine_top_treatments(estimator: CATEEstimator, grouping_pattern: Pattern,
                        treatment_attributes: Sequence[str],
                        dag: CausalDAG | None = None,
                        config: TreatmentMinerConfig | None = None,
                        ) -> dict[str, TreatmentCandidate | None]:
    """Top positive and top negative treatment pattern for one grouping pattern."""
    return {
        "+": mine_top_treatment(estimator, grouping_pattern, treatment_attributes,
                                "+", dag, config),
        "-": mine_top_treatment(estimator, grouping_pattern, treatment_attributes,
                                "-", dag, config),
    }


def mine_top_k_treatments(estimator: CATEEstimator, grouping_pattern: Pattern,
                          treatment_attributes: Sequence[str], k: int,
                          direction: str = "+", dag: CausalDAG | None = None,
                          config: TreatmentMinerConfig | None = None,
                          ) -> list[TreatmentCandidate]:
    """The ``k`` treatment patterns with the highest (or lowest) CATE for a grouping pattern.

    Section 4.2 describes a UI that lets analysts request the top-k positive or
    negative treatments for a grouping pattern; this runs the same lattice
    traversal as Algorithm 2 but keeps every significant candidate it evaluates
    and returns the ``k`` best, sorted by signed CATE.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if direction not in {"+", "-"}:
        raise ValueError("direction must be '+' or '-'")
    config = config or TreatmentMinerConfig()
    dag = dag if dag is not None else estimator.dag
    attributes = list(treatment_attributes)
    if config.prune_attributes and dag is not None:
        relevant = dag.causally_relevant(estimator.outcome)
        pruned = [a for a in attributes if a in relevant]
        if pruned:
            attributes = pruned
    if not attributes:
        return []

    lattice = PatternLattice(
        estimator.table, attributes,
        max_values_per_attribute=config.max_values_per_attribute,
        numeric_bins=config.numeric_bins,
        mask_cache=estimator.mask_cache,
        min_support=estimator.min_group_size,
        atom_cache=estimator.atom_cache,
    )
    sign = 1.0 if direction == "+" else -1.0
    collected: dict[Pattern, TreatmentCandidate] = {}

    level = lattice.level_one()
    depth = 0
    while level and depth < config.max_levels:
        survivors = []
        estimates = estimator.estimate_many(level, grouping_pattern)
        for pattern, estimate in zip(level, estimates):
            if not estimate.is_valid() or sign * estimate.value <= config.near_zero:
                continue
            candidate = TreatmentCandidate(pattern, estimate)
            survivors.append(candidate)
            if estimate.p_value <= config.significance_level:
                collected[pattern] = candidate
        survivors.sort(key=lambda c: sign * c.cate, reverse=True)
        if config.keep_fraction < 1.0 and survivors:
            survivors = survivors[:max(1, int(len(survivors) * config.keep_fraction))]
        level = lattice.next_level([c.pattern for c in survivors])
        depth += 1

    ranked = sorted(collected.values(), key=lambda c: sign * c.cate, reverse=True)
    return ranked[:k]
