"""Grouping-pattern mining and redundancy removal (Section 5.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dataframe import Pattern
from repro.mining.apriori import apriori
from repro.sql import AggregateView


@dataclass
class GroupingPattern:
    """A grouping pattern together with the set of view groups it covers."""

    pattern: Pattern
    covered_groups: frozenset
    support: int = 0

    @property
    def coverage(self) -> int:
        return len(self.covered_groups)

    def __repr__(self) -> str:
        return f"GroupingPattern({self.pattern!r}, covers={self.coverage})"


def mine_grouping_patterns(view: AggregateView, grouping_attributes: Sequence[str],
                           min_support: float = 0.1, max_length: int | None = 3,
                           include_singleton_groups: bool = False,
                           max_values_per_attribute: int | None = None,
                           ) -> list[GroupingPattern]:
    """Mine candidate grouping patterns with Apriori and remove redundant ones.

    Parameters
    ----------
    view:
        The materialised aggregate view ``Q(D)``.
    grouping_attributes:
        Attributes ``W`` with ``A_gb -> W`` (eligible for grouping patterns).
    min_support:
        Apriori threshold ``tau`` (fraction of tuples of ``D``).
    max_length:
        Maximum number of predicates per grouping pattern.
    include_singleton_groups:
        When True, additionally add one equality pattern per group-by value so
        that every individual group can be explained even without FDs (used for
        datasets such as German where no FD-derived attributes exist).

    Post-processing keeps, for each distinct set of covered groups, only the
    shortest pattern (ties broken lexicographically), which enforces the
    incomparability constraint of Definition 4.5 item (3).
    """
    table = view.table
    candidates: list[GroupingPattern] = []
    if grouping_attributes:
        for frequent in apriori(table, list(grouping_attributes), min_support,
                                max_length=max_length,
                                max_values_per_attribute=max_values_per_attribute):
            covered = view.covered_groups(frequent.pattern)
            if covered:
                candidates.append(GroupingPattern(frequent.pattern, covered,
                                                  frequent.support))
    if include_singleton_groups or not candidates:
        candidates.extend(_singleton_group_patterns(view))
    return deduplicate_grouping_patterns(candidates)


def _singleton_group_patterns(view: AggregateView) -> list[GroupingPattern]:
    """One equality pattern per group over the group-by attributes themselves."""
    patterns = []
    for group in view.groups:
        assignment = dict(zip(view.query.group_by, group.key))
        pattern = Pattern.equalities(assignment)
        patterns.append(GroupingPattern(pattern, frozenset([group.key]),
                                        support=group.size))
    return patterns


def deduplicate_grouping_patterns(candidates: Sequence[GroupingPattern]
                                  ) -> list[GroupingPattern]:
    """Keep only the shortest pattern per distinct covered-group set."""
    best: dict[frozenset, GroupingPattern] = {}
    for candidate in candidates:
        key = candidate.covered_groups
        current = best.get(key)
        if current is None or _pattern_sort_key(candidate) < _pattern_sort_key(current):
            best[key] = candidate
    return sorted(best.values(), key=lambda g: (-g.coverage, repr(g.pattern)))


def _pattern_sort_key(grouping: GroupingPattern) -> tuple:
    return (len(grouping.pattern), repr(grouping.pattern))
