"""The Apriori frequent-itemset algorithm over attribute-value pairs.

Items are equality predicates ``attribute = value``.  A pattern (itemset) is
frequent when the fraction of tuples satisfying all of its predicates is at
least the support threshold ``tau``.  Frequency is anti-monotone in the number
of predicates, which is what Apriori exploits (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.dataframe import Op, Pattern, Predicate, Table


@dataclass(frozen=True)
class FrequentPattern:
    """A frequent conjunctive equality pattern together with its support."""

    pattern: Pattern
    support: int
    support_fraction: float


def apriori(table: Table, attributes: Sequence[str], min_support: float = 0.1,
            max_length: int | None = None, max_values_per_attribute: int | None = None,
            ) -> list[FrequentPattern]:
    """Mine frequent conjunctive equality patterns over ``attributes``.

    Parameters
    ----------
    table:
        The database instance.
    attributes:
        Attributes whose (attribute, value) pairs form the item universe.
    min_support:
        The threshold ``tau`` as a fraction of tuples (0 disables pruning by
        support but still requires at least one matching tuple).
    max_length:
        Optional cap on the number of predicates per pattern.
    max_values_per_attribute:
        Optional cap on the number of distinct values considered per attribute
        (the most frequent values are kept), useful for high-cardinality data.
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError("min_support must be in [0, 1]")
    n_rows = table.n_rows
    min_count = max(1, int(np.ceil(min_support * n_rows)))
    max_length = max_length or len(attributes)

    # Level 1: single-predicate patterns and their row masks.  Candidate
    # values and their counts come from the column vocabulary (a bincount
    # over dictionary codes), and each mask is one vectorized code
    # comparison — the rows are never rescanned per (attribute, value) pair.
    level: dict[Pattern, np.ndarray] = {}
    results: list[FrequentPattern] = []
    for attribute in attributes:
        counts = table.value_counts(attribute)
        values = sorted(counts, key=lambda v: (-counts[v], repr(v)))
        if max_values_per_attribute is not None:
            values = values[:max_values_per_attribute]
        for value in values:
            if counts[value] < min_count:
                continue
            predicate = Predicate(attribute, Op.EQ, value)
            pattern = Pattern([predicate])
            mask = predicate.evaluate(table)
            level[pattern] = mask
            results.append(FrequentPattern(pattern, int(mask.sum()),
                                           float(mask.sum()) / n_rows))

    length = 1
    while level and length < max_length:
        next_level: dict[Pattern, np.ndarray] = {}
        frequent_patterns = list(level)
        frequent_set = set(frequent_patterns)
        for p1, p2 in combinations(frequent_patterns, 2):
            candidate = _join(p1, p2)
            if candidate is None or candidate in next_level:
                continue
            if not _all_subsets_frequent(candidate, frequent_set):
                continue
            mask = level[p1] & level[p2]
            count = int(mask.sum())
            if count >= min_count:
                next_level[candidate] = mask
                results.append(FrequentPattern(candidate, count, count / n_rows))
        level = next_level
        length += 1
    return results


def _join(p1: Pattern, p2: Pattern) -> Pattern | None:
    """Apriori join: combine two k-patterns sharing k-1 predicates into a (k+1)-pattern."""
    preds1, preds2 = set(p1.predicates), set(p2.predicates)
    union = preds1 | preds2
    if len(union) != len(preds1) + 1:
        return None
    attributes = [p.attribute for p in union]
    if len(set(attributes)) != len(attributes):
        return None  # two different values for the same attribute
    return Pattern(union)


def _all_subsets_frequent(candidate: Pattern, frequent: set[Pattern]) -> bool:
    predicates = candidate.predicates
    if len(predicates) <= 1:
        return True
    for i in range(len(predicates)):
        subset = Pattern(predicates[:i] + predicates[i + 1:])
        if subset not in frequent:
            return False
    return True
