"""Pattern mining: Apriori grouping patterns and greedy treatment-pattern lattice."""

from repro.mining.apriori import apriori, FrequentPattern
from repro.mining.grouping import GroupingPattern, mine_grouping_patterns
from repro.mining.treatments import (
    TreatmentCandidate,
    TreatmentMinerConfig,
    mine_top_k_treatments,
    mine_top_treatment,
    mine_top_treatments,
)
from repro.mining.lattice import PatternLattice

__all__ = [
    "apriori",
    "FrequentPattern",
    "GroupingPattern",
    "mine_grouping_patterns",
    "TreatmentCandidate",
    "TreatmentMinerConfig",
    "mine_top_k_treatments",
    "mine_top_treatment",
    "mine_top_treatments",
    "PatternLattice",
]
