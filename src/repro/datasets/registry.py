"""Common dataset bundle type and name-based registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dataframe import Table
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery


@dataclass
class DatasetBundle:
    """A generated dataset together with its causal DAG and default query.

    Attributes
    ----------
    name:
        Dataset identifier.
    table:
        The generated database instance.
    dag:
        The ground-truth causal DAG used by the generator (and handed to
        CauSumX as background knowledge).
    query:
        The representative group-by-average query analysed in the paper.
    grouping_attributes / treatment_attributes:
        The attribute partition used in the paper's case study (overrides the
        automatic FD-based partition when provided).
    ground_truth:
        Optional generator-specific ground-truth information (e.g. the true
        treatment effects of the synthetic dataset).
    """

    name: str
    table: Table
    dag: CausalDAG
    query: GroupByAvgQuery
    grouping_attributes: list[str] | None = None
    treatment_attributes: list[str] | None = None
    ground_truth: dict = field(default_factory=dict)

    def describe(self) -> dict:
        """Table 3 style statistics for this dataset.

        The "max values per attribute" statistic is computed over the
        non-outcome attributes (the outcome is continuous and would dominate).
        """
        attrs = [a for a in self.table.attributes if a != self.query.average]
        stats = {
            "name": self.name,
            "tuples": self.table.n_rows,
            "attributes": self.table.n_cols,
            "max_values_per_attribute": max(
                len(self.table.domain(a)) for a in attrs),
        }
        return stats

    def to_store(self, store, config=None, name: str | None = None,
                 shard_rows: int | None = None):
        """Export the bundle into a :class:`~repro.storage.DatasetStore`.

        Writes the table as sharded columnar files *and* records the
        registration (DAG, config, grouping/treatment attributes) in the
        store's registry, so ``repro serve --store`` can serve the dataset
        directly.  Returns the :class:`~repro.storage.StoredDataset` handle.
        """
        return store.import_bundle(self, config=config, name=name,
                                   shard_rows=shard_rows)


_REGISTRY: dict[str, Callable[..., DatasetBundle]] = {}


def register(name: str):
    """Decorator registering a generator under a dataset name."""

    def wrapper(fn: Callable[..., DatasetBundle]):
        _REGISTRY[name] = fn
        return fn

    return wrapper


def list_datasets() -> list[str]:
    """Names of all registered dataset generators."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def load_dataset(name: str, **kwargs) -> DatasetBundle:
    """Generate a dataset by name (``stackoverflow``, ``adult``, ``german``,
    ``accidents``, ``cps``, or ``synthetic``)."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    return _REGISTRY[name](**kwargs)


def _ensure_loaded() -> None:
    """Import generator modules so their ``register`` decorators run."""
    from repro.datasets import (  # noqa: F401  (import for side effect)
        accidents, adult, cps, german, stackoverflow, synthetic,
    )
