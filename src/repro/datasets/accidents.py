"""US-Accidents style dataset (average accident severity per city).

Cities are functionally mapped to one of four regions (Northeast, Midwest,
South, West).  Weather exposure differs by region — snow and cold dominate the
Midwest, rain dominates the South — and severity is generated from structural
equations where adverse weather and poor visibility raise severity while
traffic signals and calming measures reduce it (Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import Column, Table
from repro.datasets.registry import DatasetBundle, register
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery

CITIES = {
    "Boston": "Northeast", "Albany": "Northeast", "New York": "Northeast",
    "Philadelphia": "Northeast", "Pittsburgh": "Northeast",
    "Chicago": "Midwest", "Detroit": "Midwest", "Minneapolis": "Midwest",
    "Cleveland": "Midwest", "Kansas City": "Midwest",
    "Houston": "South", "Miami": "South", "Atlanta": "South",
    "Dallas": "South", "Charlotte": "South",
    "Phoenix": "West", "Los Angeles": "West", "Seattle": "West",
    "Denver": "West", "San Francisco": "West",
}
WEATHER = ["Clear", "Rain", "Snow", "Overcast", "Fog"]
REGION_WEATHER_P = {
    "Northeast": [0.40, 0.20, 0.14, 0.18, 0.08],
    "Midwest": [0.38, 0.16, 0.22, 0.16, 0.08],
    "South": [0.48, 0.30, 0.02, 0.14, 0.06],
    "West": [0.58, 0.16, 0.06, 0.14, 0.06],
}


def make_accidents(n: int = 6000, seed: int = 0) -> DatasetBundle:
    """Generate an Accidents-like table with ``n`` accident records."""
    rng = np.random.default_rng(seed)
    city_names = list(CITIES)
    cities = rng.choice(city_names, size=n)
    region = np.array([CITIES[c] for c in cities], dtype=object)

    weather = np.empty(n, dtype=object)
    temperature = np.empty(n, dtype=object)
    for i in range(n):
        weather[i] = rng.choice(WEATHER, p=REGION_WEATHER_P[region[i]])
        if region[i] == "Midwest":
            temperature[i] = rng.choice(["Cold", "Mild", "Hot"], p=[0.45, 0.40, 0.15])
        elif region[i] == "South":
            temperature[i] = rng.choice(["Cold", "Mild", "Hot"], p=[0.10, 0.45, 0.45])
        else:
            temperature[i] = rng.choice(["Cold", "Mild", "Hot"], p=[0.25, 0.50, 0.25])

    visibility = np.where(
        np.isin(weather, ["Fog", "Snow"]) & (rng.random(n) < 0.7), "Low",
        np.where(rng.random(n) < 0.15, "Low", "Normal")).astype(object)
    traffic_signal = rng.choice(["Yes", "No"], size=n, p=[0.35, 0.65])
    traffic_calming = rng.choice(["Yes", "No"], size=n, p=[0.12, 0.88])
    road_type = rng.choice(["Highway", "City road"], size=n, p=[0.4, 0.6])
    rush_hour = rng.choice(["Yes", "No"], size=n, p=[0.3, 0.7])
    daylight = rng.choice(["Day", "Night"], size=n, p=[0.65, 0.35])

    severity = 2.0 * np.ones(n)
    severity += np.where(weather == "Snow", 0.55, 0.0)
    severity += np.where(weather == "Rain", 0.30, 0.0)
    severity += np.where(weather == "Overcast", 0.15, 0.0)
    severity += np.where(weather == "Fog", 0.40, 0.0)
    severity += np.where(temperature == "Cold", 0.25, 0.0)
    severity += np.where(visibility == "Low", 0.35, 0.0)
    severity += np.where(traffic_signal == "Yes", -0.40, 0.0)
    severity += np.where(traffic_calming == "Yes", -0.35, 0.0)
    severity += np.where(road_type == "Highway", 0.25, -0.10)
    severity += np.where(daylight == "Night", 0.15, 0.0)
    severity += rng.normal(0.0, 0.35, size=n)
    severity = np.clip(np.round(severity), 1, 4)

    table = Table([
        Column("City", cities, numeric=False),
        Column("Region", region, numeric=False),
        Column("Weather", weather, numeric=False),
        Column("Temperature", temperature, numeric=False),
        Column("Visibility", visibility, numeric=False),
        Column("TrafficSignal", traffic_signal, numeric=False),
        Column("TrafficCalming", traffic_calming, numeric=False),
        Column("RoadType", road_type, numeric=False),
        Column("RushHour", rush_hour, numeric=False),
        Column("Daylight", daylight, numeric=False),
        Column("Severity", [float(s) for s in severity], numeric=True),
    ], name="accidents")

    dag = CausalDAG.from_dict({
        "Region": ["City"],
        "Weather": ["Region"],
        "Temperature": ["Region"],
        "Visibility": ["Weather"],
        "Severity": ["Weather", "Temperature", "Visibility", "TrafficSignal",
                     "TrafficCalming", "RoadType", "Daylight"],
        "TrafficSignal": ["City"],
        "TrafficCalming": ["City"],
        "RoadType": [],
        "RushHour": [],
        "Daylight": [],
        "City": [],
    })

    query = GroupByAvgQuery(group_by="City", average="Severity",
                            table_name="accidents")
    return DatasetBundle(
        name="accidents",
        table=table,
        dag=dag,
        query=query,
        grouping_attributes=["Region"],
        treatment_attributes=["Weather", "Temperature", "Visibility", "TrafficSignal",
                              "TrafficCalming", "RoadType", "RushHour", "Daylight"],
        ground_truth={
            "positive_drivers": ["Weather", "Temperature", "Visibility"],
            "negative_drivers": ["TrafficSignal", "TrafficCalming"],
        },
    )


@register("accidents")
def _load(**kwargs) -> DatasetBundle:
    return make_accidents(**kwargs)
