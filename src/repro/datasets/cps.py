"""IPUMS-CPS style census dataset (average income per state / occupation group).

Used in the scalability experiments (Figures 11 and 13) — it is the large,
low-attribute-count dataset of Table 3.  The schema has 10 attributes and the
income is generated from education, occupation category, age, sex, and hours
worked, following the causal DAG adopted from the fairness literature.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import Column, Table
from repro.datasets.registry import DatasetBundle, register
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery

STATES = {
    "California": "West", "Washington": "West", "Oregon": "West", "Nevada": "West",
    "Texas": "South", "Florida": "South", "Georgia": "South", "Virginia": "South",
    "New York": "Northeast", "Massachusetts": "Northeast", "Pennsylvania": "Northeast",
    "Illinois": "Midwest", "Ohio": "Midwest", "Michigan": "Midwest", "Minnesota": "Midwest",
}
STATE_WAGE_LEVEL = {
    "California": "High", "Washington": "High", "New York": "High",
    "Massachusetts": "High", "Illinois": "Medium", "Virginia": "Medium",
    "Minnesota": "Medium", "Pennsylvania": "Medium", "Texas": "Medium",
    "Oregon": "Medium", "Nevada": "Medium", "Florida": "Low", "Georgia": "Low",
    "Ohio": "Low", "Michigan": "Low",
}
EDUCATIONS = ["No diploma", "High school", "Some college", "Bachelors", "Advanced"]
OCC_CATEGORIES = ["Management", "Professional", "Service", "Sales", "Production"]


def make_cps(n: int = 8000, seed: int = 0) -> DatasetBundle:
    """Generate an IPUMS-CPS-like table with ``n`` respondents."""
    rng = np.random.default_rng(seed)
    states = rng.choice(list(STATES), size=n)
    region = np.array([STATES[s] for s in states], dtype=object)
    wage_level = np.array([STATE_WAGE_LEVEL[s] for s in states], dtype=object)

    age = rng.integers(18, 70, size=n)
    sex = rng.choice(["Male", "Female"], size=n, p=[0.52, 0.48])
    marital = np.where(age < 28,
                       rng.choice(["Married", "Single"], size=n, p=[0.25, 0.75]),
                       rng.choice(["Married", "Single"], size=n, p=[0.6, 0.4])).astype(object)

    education = np.empty(n, dtype=object)
    for i in range(n):
        probs = np.array([0.08, 0.28, 0.28, 0.24, 0.12])
        if age[i] < 24:
            probs = probs * np.array([1.3, 1.4, 1.2, 0.5, 0.1])
        education[i] = rng.choice(EDUCATIONS, p=probs / probs.sum())

    education_rank = {e: i for i, e in enumerate(EDUCATIONS)}
    occupation = np.empty(n, dtype=object)
    for i in range(n):
        probs = np.array([0.12, 0.20, 0.25, 0.20, 0.23])
        rank = education_rank[education[i]]
        probs = probs * np.array([0.6 + 0.3 * rank, 0.5 + 0.4 * rank, 1.6 - 0.25 * rank,
                                  1.0, 1.5 - 0.25 * rank])
        probs = np.clip(probs, 0.02, None)
        occupation[i] = rng.choice(OCC_CATEGORIES, p=probs / probs.sum())

    hours = np.clip(rng.normal(39, 9, size=n).round(), 5, 80)

    wage_effect = {"High": 18.0, "Medium": 6.0, "Low": 0.0}
    occ_effect = {"Management": 30.0, "Professional": 24.0, "Service": 2.0,
                  "Sales": 10.0, "Production": 6.0}
    income = 20.0 * np.ones(n)
    income += np.array([wage_effect[w] for w in wage_level])
    income += np.array([occ_effect[o] for o in occupation])
    income += 7.0 * np.array([education_rank[e] for e in education])
    income += 0.25 * (age - 18)
    income += 0.5 * (hours - 39)
    income += np.where(sex == "Male", 5.0, -2.0)
    income += np.where(marital == "Married", 4.0, 0.0)
    income += rng.normal(0.0, 8.0, size=n)
    income = np.clip(income, 2.0, None) * 1000.0

    table = Table([
        Column("State", states, numeric=False),
        Column("Region", region, numeric=False),
        Column("WageLevel", wage_level, numeric=False),
        Column("Age", [int(a) for a in age], numeric=True),
        Column("Sex", sex, numeric=False),
        Column("MaritalStatus", marital, numeric=False),
        Column("Education", education, numeric=False),
        Column("OccupationCategory", occupation, numeric=False),
        Column("HoursPerWeek", [float(h) for h in hours], numeric=True),
        Column("Income", [float(v) for v in income], numeric=True),
    ], name="cps")

    dag = CausalDAG.from_dict({
        "Region": ["State"],
        "WageLevel": ["State"],
        "Education": ["Age"],
        "OccupationCategory": ["Education"],
        "MaritalStatus": ["Age"],
        "HoursPerWeek": ["OccupationCategory", "Sex"],
        "Income": ["WageLevel", "OccupationCategory", "Education", "Age", "Sex",
                   "HoursPerWeek", "MaritalStatus"],
        "State": [],
        "Sex": [],
        "Age": [],
    })

    query = GroupByAvgQuery(group_by="State", average="Income", table_name="cps")
    return DatasetBundle(
        name="cps",
        table=table,
        dag=dag,
        query=query,
        grouping_attributes=["Region", "WageLevel"],
        treatment_attributes=["Age", "Sex", "MaritalStatus", "Education",
                              "OccupationCategory", "HoursPerWeek"],
        ground_truth={
            "positive_drivers": ["OccupationCategory", "Education"],
            "negative_drivers": ["Education", "Age"],
        },
    )


@register("cps")
def _load(**kwargs) -> DatasetBundle:
    return make_cps(**kwargs)
