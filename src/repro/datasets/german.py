"""German-credit style dataset (average credit risk per loan purpose).

The German dataset has no attributes functionally determined by the grouping
attribute (loan purpose), so each group needs its own explanation — the case
CauSumX handles with per-group singleton grouping patterns (Figure 18).
Checking/saving account status, credit history, and loan duration drive the
risk score, mirroring the Schufa-style discussion of Appendix B.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import Column, Table
from repro.datasets.registry import DatasetBundle, register
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery

PURPOSES = ["new car", "used car", "furniture/equipment", "radio/TV",
            "domestic appliances", "repairs", "education", "vacation",
            "retraining", "business"]
CHECKING = ["none", "<0 DM", "0-200 DM", ">=200 DM"]
SAVINGS = ["<100 DM", "100-500 DM", "500-1000 DM", ">=1000 DM"]
HISTORY = ["delayed", "existing paid", "all paid duly", "critical"]
HOUSING = ["rent", "own", "free"]
EMPLOYMENT = ["unemployed", "<1 year", "1-4 years", "4-7 years", ">=7 years"]


def make_german(n: int = 1000, seed: int = 0) -> DatasetBundle:
    """Generate a German-credit-like table with ``n`` loan applications."""
    rng = np.random.default_rng(seed)
    purpose = rng.choice(PURPOSES, size=n,
                         p=[0.22, 0.10, 0.18, 0.12, 0.12, 0.06, 0.06, 0.04, 0.04, 0.06])
    age = rng.integers(19, 75, size=n)
    employment = rng.choice(EMPLOYMENT, size=n, p=[0.06, 0.17, 0.34, 0.18, 0.25])
    housing = rng.choice(HOUSING, size=n, p=[0.28, 0.62, 0.10])
    checking = rng.choice(CHECKING, size=n, p=[0.39, 0.27, 0.21, 0.13])
    savings = rng.choice(SAVINGS, size=n, p=[0.60, 0.17, 0.11, 0.12])
    history = rng.choice(HISTORY, size=n, p=[0.09, 0.53, 0.25, 0.13])
    duration_bucket = rng.choice(["<=12 months", "13-24 months", "25-48 months",
                                  ">48 months"], size=n, p=[0.30, 0.38, 0.25, 0.07])
    amount = np.round(np.exp(rng.normal(7.7, 0.9, size=n)), 0)

    checking_effect = {"none": -0.35, "<0 DM": -0.25, "0-200 DM": 0.05, ">=200 DM": 0.5}
    savings_effect = {"<100 DM": -0.15, "100-500 DM": 0.05, "500-1000 DM": 0.2,
                      ">=1000 DM": 0.4}
    history_effect = {"delayed": -0.5, "existing paid": 0.0, "all paid duly": 0.45,
                      "critical": -0.3}
    duration_effect = {"<=12 months": 0.35, "13-24 months": 0.05,
                       "25-48 months": -0.25, ">48 months": -0.6}
    housing_effect = {"rent": -0.15, "own": 0.15, "free": 0.0}

    logits = 0.6 * np.ones(n)
    logits += np.array([checking_effect[c] for c in checking])
    logits += np.array([savings_effect[s] for s in savings])
    logits += np.array([history_effect[h] for h in history])
    logits += np.array([duration_effect[d] for d in duration_bucket])
    logits += np.array([housing_effect[h] for h in housing])
    logits += 0.008 * (age - 35)
    logits += np.where(employment == "unemployed", -0.35, 0.0)
    logits -= 0.00002 * (amount - amount.mean())
    risk = (rng.random(n) < 1.0 / (1.0 + np.exp(-logits))).astype(float)

    table = Table([
        Column("Purpose", purpose, numeric=False),
        Column("Age", [int(a) for a in age], numeric=True),
        Column("Employment", employment, numeric=False),
        Column("Housing", housing, numeric=False),
        Column("CheckingAccount", checking, numeric=False),
        Column("SavingsAccount", savings, numeric=False),
        Column("CreditHistory", history, numeric=False),
        Column("Duration", duration_bucket, numeric=False),
        Column("CreditAmount", [float(a) for a in amount], numeric=True),
        Column("RiskScore", [float(r) for r in risk], numeric=True),
    ], name="german")

    dag = CausalDAG.from_dict({
        "CheckingAccount": ["Employment", "Age"],
        "SavingsAccount": ["Employment", "Age"],
        "CreditHistory": ["Age"],
        "Housing": ["Age", "Employment"],
        "Duration": ["Purpose", "CreditAmount"],
        "CreditAmount": ["Purpose"],
        "RiskScore": ["CheckingAccount", "SavingsAccount", "CreditHistory",
                      "Duration", "Housing", "Age", "Employment", "CreditAmount"],
        "Purpose": [],
        "Age": [],
        "Employment": [],
    })

    query = GroupByAvgQuery(group_by="Purpose", average="RiskScore",
                            table_name="german")
    return DatasetBundle(
        name="german",
        table=table,
        dag=dag,
        query=query,
        grouping_attributes=[],  # no FDs from Purpose — per-group explanations
        treatment_attributes=["CheckingAccount", "SavingsAccount", "CreditHistory",
                              "Duration", "Housing", "Employment", "Age"],
        ground_truth={
            "positive_drivers": ["CheckingAccount", "CreditHistory", "SavingsAccount"],
            "negative_drivers": ["Duration", "CreditHistory"],
        },
    )


@register("german")
def _load(**kwargs) -> DatasetBundle:
    return make_german(**kwargs)
