"""UCI-Adult style census dataset (average income per occupation).

The paper groups by occupation and uses the binary high-income indicator as
the outcome; occupations are functionally mapped to an occupation category
(blue-collar / white-collar / service), which is the grouping-pattern
attribute.  The structural equations reproduce the findings of Section 6.2 and
Figure 19: marital status, education, and gender drive income, with higher
education mattering most for white-collar occupations.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import Column, Table
from repro.datasets.registry import DatasetBundle, register
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery

OCCUPATIONS = {
    "Machine-op-inspct": "Blue-collar",
    "Craft-repair": "Blue-collar",
    "Transport-moving": "Blue-collar",
    "Handlers-cleaners": "Blue-collar",
    "Farming-fishing": "Blue-collar",
    "Exec-managerial": "White-collar",
    "Prof-specialty": "White-collar",
    "Adm-clerical": "White-collar",
    "Tech-support": "White-collar",
    "Sales": "Service",
    "Other-service": "Service",
    "Protective-serv": "Service",
    "Priv-house-serv": "Service",
}
EDUCATIONS = ["HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate"]
MARITAL = ["Married", "Never-married", "Divorced", "Widowed"]
WORKCLASSES = ["Private", "Self-emp", "Government"]
RACES = ["White", "Black", "Asian-Pac-Islander", "Other"]


def make_adult(n: int = 4000, seed: int = 0) -> DatasetBundle:
    """Generate an Adult-census-like table with ``n`` individuals."""
    rng = np.random.default_rng(seed)
    occupations = rng.choice(list(OCCUPATIONS), size=n)
    category = np.array([OCCUPATIONS[o] for o in occupations], dtype=object)

    age = rng.integers(18, 75, size=n)
    sex = rng.choice(["Male", "Female"], size=n, p=[0.67, 0.33])
    race = rng.choice(RACES, size=n, p=[0.78, 0.10, 0.07, 0.05])
    workclass = rng.choice(WORKCLASSES, size=n, p=[0.72, 0.13, 0.15])
    hours = np.clip(rng.normal(41, 11, size=n).round(), 10, 90)

    # Education depends on sex and age (Section 6.2: males tend to have higher
    # education levels in this data).
    education = np.empty(n, dtype=object)
    for i in range(n):
        probs = np.array([0.34, 0.28, 0.22, 0.12, 0.04])
        if sex[i] == "Male":
            probs = probs * np.array([0.9, 0.95, 1.1, 1.2, 1.3])
        if age[i] < 25:
            probs = probs * np.array([1.4, 1.3, 0.7, 0.3, 0.1])
        education[i] = rng.choice(EDUCATIONS, p=probs / probs.sum())

    # Marital status depends on age.
    marital = np.empty(n, dtype=object)
    for i in range(n):
        if age[i] < 28:
            probs = [0.25, 0.68, 0.06, 0.01]
        elif age[i] < 50:
            probs = [0.62, 0.20, 0.16, 0.02]
        else:
            probs = [0.60, 0.08, 0.22, 0.10]
        marital[i] = rng.choice(MARITAL, p=probs)

    education_rank = {e: i for i, e in enumerate(EDUCATIONS)}
    logits = -1.2 * np.ones(n)
    logits += np.where(marital == "Married", 1.3, 0.0)
    logits += np.where(marital == "Never-married", -0.7, 0.0)
    edu_term = np.array([education_rank[e] for e in education], dtype=float)
    white_collar = category == "White-collar"
    logits += 0.35 * edu_term + 0.35 * edu_term * white_collar
    logits += np.where(sex == "Male", 0.45, -0.2)
    logits += 0.012 * (age - 40)
    logits += 0.02 * (hours - 40)
    logits += np.where(category == "Blue-collar", -0.3, 0.0)
    income = (rng.random(n) < 1.0 / (1.0 + np.exp(-logits))).astype(float)

    table = Table([
        Column("Occupation", occupations, numeric=False),
        Column("OccupationCategory", category, numeric=False),
        Column("Age", [int(a) for a in age], numeric=True),
        Column("Sex", sex, numeric=False),
        Column("Race", race, numeric=False),
        Column("Education", education, numeric=False),
        Column("MaritalStatus", marital, numeric=False),
        Column("Workclass", workclass, numeric=False),
        Column("HoursPerWeek", [float(h) for h in hours], numeric=True),
        Column("Income", [float(v) for v in income], numeric=True),
    ], name="adult")

    dag = CausalDAG.from_dict({
        "OccupationCategory": ["Occupation"],
        "Education": ["Sex", "Age"],
        "MaritalStatus": ["Age"],
        "HoursPerWeek": ["Occupation", "Sex"],
        "Income": ["Education", "MaritalStatus", "Sex", "Age", "HoursPerWeek",
                   "Occupation", "Workclass"],
        "Occupation": ["Education"],
        "Workclass": [],
        "Race": [],
        "Sex": [],
        "Age": [],
    })

    query = GroupByAvgQuery(group_by="Occupation", average="Income",
                            table_name="adult")
    return DatasetBundle(
        name="adult",
        table=table,
        dag=dag,
        query=query,
        grouping_attributes=["OccupationCategory"],
        treatment_attributes=["Age", "Sex", "Race", "Education", "MaritalStatus",
                              "Workclass", "HoursPerWeek"],
        ground_truth={
            "positive_drivers": ["MaritalStatus", "Education", "Sex"],
            "negative_drivers": ["MaritalStatus"],
        },
    )


@register("adult")
def _load(**kwargs) -> DatasetBundle:
    return make_adult(**kwargs)
