"""Stack Overflow developer-survey style dataset (the paper's running example).

The generator synthesises respondents from 20 countries on 5 continents with
country-level economic attributes (HDI, Gini, GDP — functionally determined by
the country), demographic attributes, job attributes, and an annual salary
generated from structural equations that follow the causal DAG of Figure 3:

* salary grows with GDP of the country, education, seniority (years coding /
  age band), and role (C-level executives earn the most);
* being a student strongly reduces salary;
* age above 55 reduces salary (the ageism effect discussed in Section 6.2);
* gender and ethnicity introduce the disparities analysed in Figure 6.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import Column, Table
from repro.datasets.registry import DatasetBundle, register
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery

# Country -> (continent, HDI level, Gini level, GDP level, base salary multiplier)
COUNTRIES = {
    "United States": ("N. America", "High", "High", "High", 1.60),
    "Canada": ("N. America", "High", "Medium", "High", 1.25),
    "Mexico": ("N. America", "Medium", "High", "Medium", 0.45),
    "Brazil": ("S. America", "Medium", "High", "Medium", 0.40),
    "Argentina": ("S. America", "Medium", "High", "Medium", 0.35),
    "United Kingdom": ("Europe", "High", "Medium", "High", 1.20),
    "Germany": ("Europe", "High", "Low", "High", 1.15),
    "France": ("Europe", "High", "Low", "High", 1.05),
    "Spain": ("Europe", "High", "Medium", "Medium", 0.80),
    "Italy": ("Europe", "High", "Medium", "Medium", 0.75),
    "Poland": ("Europe", "High", "Low", "Medium", 0.55),
    "Sweden": ("Europe", "High", "Low", "High", 1.10),
    "Netherlands": ("Europe", "High", "Low", "High", 1.15),
    "Russia": ("Europe", "Medium", "Medium", "Medium", 0.40),
    "Turkey": ("Asia", "Medium", "High", "Medium", 0.35),
    "India": ("Asia", "Medium", "Medium", "Low", 0.25),
    "China": ("Asia", "Medium", "Medium", "Medium", 0.35),
    "Israel": ("Asia", "High", "Medium", "High", 1.10),
    "Japan": ("Asia", "High", "Low", "High", 0.95),
    "Australia": ("Oceania", "High", "Low", "High", 1.25),
}

ROLES = ["Back-end developer", "Front-end developer", "Full-stack developer",
         "QA developer", "Data Scientist", "DevOps specialist",
         "Machine learning specialist", "C-suite executive", "Product manager"]
ROLE_EFFECT = {  # thousands of USD added to the base salary
    "Back-end developer": 8, "Front-end developer": 5, "Full-stack developer": 9,
    "QA developer": 0, "Data Scientist": 18, "DevOps specialist": 14,
    "Machine learning specialist": 22, "C-suite executive": 45, "Product manager": 16,
}

EDUCATIONS = ["No degree", "B.Sc.", "Master's degree", "PhD"]
EDUCATION_EFFECT = {"No degree": -12, "B.Sc.": 0, "Master's degree": 14, "PhD": 20}

MAJORS = ["C.S", "Math.", "Mech. Eng.", "Elec. Eng.", "Other"]
GENDERS = ["Male", "Female", "Non-binary"]
ETHNICITIES = ["White", "Asian", "Hispanic", "Black", "Other"]
AGE_BANDS = ["Under 25", "25-34", "35-44", "45-54", "55+"]
AGE_EFFECT = {"Under 25": -14, "25-34": 6, "35-44": 10, "45-54": 2, "55+": -16}
GDP_EFFECT = {"Low": -8, "Medium": 0, "High": 18}


def make_stackoverflow(n: int = 4000, seed: int = 0) -> DatasetBundle:
    """Generate a Stack-Overflow-like survey table with ``n`` respondents."""
    rng = np.random.default_rng(seed)
    country_names = list(COUNTRIES)
    # Larger, richer countries are over-represented among respondents.
    weights = np.array([COUNTRIES[c][4] for c in country_names])
    weights = (weights + 0.3) / (weights + 0.3).sum()
    countries = rng.choice(country_names, size=n, p=weights)

    continent = np.array([COUNTRIES[c][0] for c in countries], dtype=object)
    hdi = np.array([COUNTRIES[c][1] for c in countries], dtype=object)
    gini = np.array([COUNTRIES[c][2] for c in countries], dtype=object)
    gdp = np.array([COUNTRIES[c][3] for c in countries], dtype=object)

    gender = rng.choice(GENDERS, size=n, p=[0.72, 0.24, 0.04])
    ethnicity = rng.choice(ETHNICITIES, size=n, p=[0.52, 0.24, 0.10, 0.08, 0.06])
    age_band = rng.choice(AGE_BANDS, size=n, p=[0.22, 0.40, 0.22, 0.10, 0.06])

    # Education depends on age (older people have had more time for degrees)
    # and mildly on gender (matches the Adult-dataset discussion in the paper).
    education = np.empty(n, dtype=object)
    for i in range(n):
        base = np.array([0.18, 0.45, 0.27, 0.10])
        if age_band[i] == "Under 25":
            base = np.array([0.35, 0.50, 0.13, 0.02])
        elif age_band[i] in ("45-54", "55+"):
            base = np.array([0.15, 0.40, 0.30, 0.15])
        if gender[i] == "Male":
            base = base * np.array([1.0, 1.0, 1.05, 1.1])
        education[i] = rng.choice(EDUCATIONS, p=base / base.sum())

    major = rng.choice(MAJORS, size=n, p=[0.55, 0.12, 0.10, 0.13, 0.10])
    student = np.where((age_band == "Under 25") & (rng.random(n) < 0.55), "Yes",
                       np.where(rng.random(n) < 0.05, "Yes", "No")).astype(object)

    years_coding = np.empty(n, dtype=object)
    for i in range(n):
        if age_band[i] == "Under 25":
            years_coding[i] = rng.choice(["0-2", "3-5", "6-10"], p=[0.55, 0.35, 0.10])
        elif age_band[i] == "25-34":
            years_coding[i] = rng.choice(["0-2", "3-5", "6-10", "11-20"],
                                         p=[0.10, 0.35, 0.40, 0.15])
        elif age_band[i] == "35-44":
            years_coding[i] = rng.choice(["3-5", "6-10", "11-20", "20+"],
                                         p=[0.10, 0.30, 0.45, 0.15])
        else:
            years_coding[i] = rng.choice(["6-10", "11-20", "20+"], p=[0.15, 0.40, 0.45])
    years_effect = {"0-2": -10, "3-5": -2, "6-10": 6, "11-20": 10, "20+": 4}

    # Role depends on education, major, years coding, and age (Figure 3).
    role = np.empty(n, dtype=object)
    for i in range(n):
        probs = np.ones(len(ROLES))
        if education[i] in ("Master's degree", "PhD"):
            probs[ROLES.index("Data Scientist")] += 2.0
            probs[ROLES.index("Machine learning specialist")] += 2.0
        if years_coding[i] in ("11-20", "20+") and age_band[i] in ("35-44", "45-54", "55+"):
            probs[ROLES.index("C-suite executive")] += 2.5
            probs[ROLES.index("Product manager")] += 1.5
        if major[i] == "C.S":
            probs[ROLES.index("Back-end developer")] += 1.0
            probs[ROLES.index("Full-stack developer")] += 1.0
        if student[i] == "Yes":
            probs[ROLES.index("QA developer")] += 1.0
            probs[ROLES.index("C-suite executive")] = 0.05
        role[i] = rng.choice(ROLES, p=probs / probs.sum())

    dependents = rng.choice(["Yes", "No"], size=n, p=[0.35, 0.65])
    hobby = rng.choice(["Yes", "No"], size=n, p=[0.8, 0.2])
    sexual_orientation = rng.choice(["Straight", "LGBTQ+", "Undisclosed"], size=n,
                                    p=[0.82, 0.10, 0.08])
    education_parents = rng.choice(EDUCATIONS, size=n, p=[0.35, 0.40, 0.18, 0.07])
    hours_computer = rng.choice(["<5", "5-8", "9-12", ">12"], size=n,
                                p=[0.05, 0.45, 0.40, 0.10])
    exercise = rng.choice(["Never", "1-2/week", "3+/week"], size=n, p=[0.3, 0.45, 0.25])

    base = np.array([COUNTRIES[c][4] for c in countries]) * 55.0  # thousands USD
    salary = base.copy()
    salary += np.array([ROLE_EFFECT[r] for r in role])
    salary += np.array([EDUCATION_EFFECT[e] for e in education])
    salary += np.array([AGE_EFFECT[a] for a in age_band])
    salary += np.array([years_effect[y] for y in years_coding])
    salary += np.array([GDP_EFFECT[g] for g in gdp])
    salary += np.where(student == "Yes", -30.0, 0.0)
    salary += np.where(gender == "Male", 6.0, np.where(gender == "Female", -4.0, -2.0))
    salary += np.where(ethnicity == "White", 5.0, 0.0)
    salary += rng.normal(0.0, 8.0, size=n)
    salary = np.clip(salary, 3.0, None) * 1000.0

    table = Table([
        Column("Country", countries, numeric=False),
        Column("Continent", continent, numeric=False),
        Column("HDI", hdi, numeric=False),
        Column("Gini", gini, numeric=False),
        Column("GDP", gdp, numeric=False),
        Column("Gender", gender, numeric=False),
        Column("Ethnicity", ethnicity, numeric=False),
        Column("AgeBand", age_band, numeric=False),
        Column("Education", education, numeric=False),
        Column("EducationParents", education_parents, numeric=False),
        Column("Major", major, numeric=False),
        Column("Role", role, numeric=False),
        Column("YearsCoding", years_coding, numeric=False),
        Column("Student", student, numeric=False),
        Column("Dependents", dependents, numeric=False),
        Column("Hobby", hobby, numeric=False),
        Column("SexualOrientation", sexual_orientation, numeric=False),
        Column("HoursComputer", hours_computer, numeric=False),
        Column("Exercise", exercise, numeric=False),
        Column("Salary", [float(s) for s in salary], numeric=True),
    ], name="stackoverflow")

    dag = CausalDAG.from_dict({
        "Continent": ["Country"],
        "HDI": ["Country"],
        "Gini": ["Country"],
        "GDP": ["Country"],
        "Education": ["AgeBand", "Gender", "EducationParents", "Country"],
        "Role": ["Education", "AgeBand", "Major", "YearsCoding", "Student"],
        "YearsCoding": ["AgeBand"],
        "Student": ["AgeBand"],
        "Major": [],
        "Salary": ["Country", "GDP", "Role", "Education", "AgeBand", "YearsCoding",
                   "Student", "Gender", "Ethnicity"],
        "Dependents": ["AgeBand"],
        "Hobby": [],
        "SexualOrientation": [],
        "HoursComputer": ["Role"],
        "Exercise": [],
        "EducationParents": [],
        "Gender": [],
        "Ethnicity": [],
        "AgeBand": [],
        "Country": [],
    })

    query = GroupByAvgQuery(group_by="Country", average="Salary",
                            table_name="stackoverflow")
    return DatasetBundle(
        name="stackoverflow",
        table=table,
        dag=dag,
        query=query,
        grouping_attributes=["Continent", "HDI", "Gini", "GDP"],
        treatment_attributes=["Gender", "Ethnicity", "AgeBand", "Education",
                              "Role", "YearsCoding", "Student", "Major"],
        ground_truth={
            "positive_drivers": ["Role", "Education", "AgeBand"],
            "negative_drivers": ["Student", "AgeBand"],
            "sensitive_attributes": ["Gender", "Ethnicity", "AgeBand"],
        },
    )


@register("stackoverflow")
def _load(**kwargs) -> DatasetBundle:
    return make_stackoverflow(**kwargs)
