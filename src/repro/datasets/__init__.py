"""Dataset generators replicating the schemas and causal structure of the paper's datasets.

The public datasets used by the paper (Stack Overflow 2018 survey, UCI Adult,
UCI German credit, IPUMS-CPS, US-Accidents) cannot be downloaded in this
offline environment, so each is replaced by a structural-causal-model generator
producing a table with the same schema, functional dependencies, attribute
domains, and causal DAG, at a configurable scale.  The synthetic dataset of
Section 6.1 (ground-truth known) is implemented exactly as described.
"""

from repro.datasets.registry import DatasetBundle, load_dataset, list_datasets
from repro.datasets.synthetic import make_synthetic
from repro.datasets.stackoverflow import make_stackoverflow
from repro.datasets.adult import make_adult
from repro.datasets.german import make_german
from repro.datasets.accidents import make_accidents
from repro.datasets.cps import make_cps

__all__ = [
    "DatasetBundle",
    "load_dataset",
    "list_datasets",
    "make_synthetic",
    "make_stackoverflow",
    "make_adult",
    "make_german",
    "make_accidents",
    "make_cps",
]
