"""The synthetic dataset of Section 6.1 with known ground truth.

Schema: ``G, G_1..G_i, T_1..T_j, O`` where

* ``G`` is the grouping attribute, one distinct value per tuple;
* ``G_1..G_i`` bucket the values of ``G`` into varying numbers of buckets and
  are therefore functionally determined by ``G`` (grouping-pattern attributes);
* ``T_1..T_j`` take independent uniform values in {1..5} (treatment attributes);
* ``O = T_1 - T_2 + T_3 - ... ± T_j`` plus optional Gaussian noise.

The treatment with the highest positive causal effect for every group sets odd
``T`` attributes high and even ``T`` attributes low, which is the ground truth
against which the mining accuracy (Figure 10) is evaluated.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import Column, Table
from repro.datasets.registry import DatasetBundle, register
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery


def make_synthetic(n: int = 1000, n_grouping: int = 3, n_treatment: int = 4,
                   noise: float = 0.0, seed: int = 0) -> DatasetBundle:
    """Generate the synthetic dataset (``n`` tuples, ``i`` grouping and ``j`` treatment attributes)."""
    if n < 2:
        raise ValueError("need at least two tuples")
    if n_grouping < 1 or n_treatment < 1:
        raise ValueError("need at least one grouping and one treatment attribute")
    rng = np.random.default_rng(seed)

    group_ids = np.arange(1, n + 1)
    columns = [Column("G", [int(v) for v in group_ids], numeric=False)]

    grouping_names = []
    for g in range(1, n_grouping + 1):
        buckets = g + 1  # G_1 has 2 buckets, G_2 has 3, ...
        name = f"G{g}"
        grouping_names.append(name)
        values = [f"bucket{int(v)}" for v in (group_ids * buckets - 1) // n]
        columns.append(Column(name, values, numeric=False))

    treatment_names = []
    treatment_values = []
    for t in range(1, n_treatment + 1):
        name = f"T{t}"
        treatment_names.append(name)
        values = rng.integers(1, 6, size=n)
        treatment_values.append(values)
        columns.append(Column(name, [int(v) for v in values], numeric=False))

    signs = np.array([(-1.0) ** t for t in range(n_treatment)])  # O = T1 - T2 + T3 - ...
    outcome = np.zeros(n)
    true_effects = {}
    for idx, values in enumerate(treatment_values):
        outcome += signs[idx] * values
        true_effects[treatment_names[idx]] = float(signs[idx])
    if noise > 0:
        outcome = outcome + rng.normal(0.0, noise, size=n)
    columns.append(Column("O", [float(v) for v in outcome], numeric=True))

    table = Table(columns, name="synthetic")

    dag = CausalDAG([*grouping_names, *treatment_names, "O", "G"])
    for name in treatment_names:
        dag.add_edge(name, "O")

    query = GroupByAvgQuery(group_by="G", average="O", table_name="synthetic")
    return DatasetBundle(
        name="synthetic",
        table=table,
        dag=dag,
        query=query,
        grouping_attributes=grouping_names,
        treatment_attributes=treatment_names,
        ground_truth={
            "signs": {name: float(signs[idx]) for idx, name in enumerate(treatment_names)},
            "best_positive_assignment": {
                name: 5 if signs[idx] > 0 else 1
                for idx, name in enumerate(treatment_names)
            },
            "best_negative_assignment": {
                name: 1 if signs[idx] > 0 else 5
                for idx, name in enumerate(treatment_names)
            },
        },
    )


@register("synthetic")
def _load(**kwargs) -> DatasetBundle:
    return make_synthetic(**kwargs)
