"""Natural-language rendering of explanation summaries (Figure 2 style).

The original system produced these sentences through fixed templates; the
templates here are deterministic equivalents.
"""

from __future__ import annotations

from repro.core.patterns import ExplanationPattern, ExplanationSummary
from repro.dataframe import Op, Pattern, Predicate


def describe_predicate(predicate: Predicate) -> str:
    """Human-readable phrase for one simple predicate."""
    attribute = predicate.attribute.replace("_", " ")
    value = predicate.value
    if predicate.op is Op.EQ:
        return f"{attribute} is {value}"
    if predicate.op is Op.NE:
        return f"{attribute} is not {value}"
    if predicate.op in (Op.LT, Op.LE):
        bound = "below" if predicate.op is Op.LT else "at most"
        return f"{attribute} is {bound} {value}"
    bound = "above" if predicate.op is Op.GT else "at least"
    return f"{attribute} is {bound} {value}"


def describe_pattern(pattern: Pattern) -> str:
    """Human-readable phrase for a conjunctive pattern."""
    if pattern.is_empty():
        return "all tuples"
    return " and ".join(describe_predicate(p) for p in pattern)


def render_pattern(pattern: ExplanationPattern, outcome: str = "the outcome") -> str:
    """Render one explanation pattern as a Figure 2 style bullet."""
    group_clause = describe_pattern(pattern.grouping_pattern)
    lines = [f"For groups where {group_clause}:"]
    if pattern.positive is not None:
        effect = pattern.positive.estimate
        lines.append(
            f"  the most substantial positive effect on {outcome} "
            f"(effect size {effect.value:,.3g}, p {_format_p(effect.p_value)}) is observed "
            f"when {describe_pattern(pattern.positive.pattern)}.")
    if pattern.negative is not None:
        effect = pattern.negative.estimate
        lines.append(
            f"  conversely, {describe_pattern(pattern.negative.pattern)} has the "
            f"greatest adverse impact on {outcome} "
            f"(effect size {effect.value:,.3g}, p {_format_p(effect.p_value)}).")
    if pattern.positive is None and pattern.negative is None:
        lines.append("  no statistically significant treatment was found.")
    return "\n".join(lines)


def render_summary(summary: ExplanationSummary, outcome: str = "the outcome") -> str:
    """Render the whole explanation summary as bullet text."""
    if not summary.patterns:
        return ("No explanation patterns satisfy the constraints "
                f"(k={summary.k}, theta={summary.theta}).")
    blocks = [render_pattern(p, outcome) for p in summary.sorted_by_weight()]
    footer = (f"[{len(summary.patterns)} explanation pattern(s), "
              f"coverage {summary.coverage:.0%} of {len(summary.all_groups)} groups, "
              f"total explainability {summary.total_explainability:,.4g}]")
    return "\n".join(["• " + block for block in blocks] + [footer])


def _format_p(p_value: float) -> str:
    if p_value < 1e-4:
        return "< 1e-4"
    if p_value < 1e-3:
        return "< 1e-3"
    if p_value < 1e-2:
        return "< 1e-2"
    if p_value < 0.05:
        return "< 0.05"
    return f"= {p_value:.2g}"
