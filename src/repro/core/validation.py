"""Input diagnostics for CauSumX runs.

The paper's framework rests on assumptions that are easy to violate silently:
the causal DAG should cover the analysed attributes, the outcome must be
numeric, SUTVA presumes no duplicate / dependent tuples, and CATE estimation
needs overlap inside each sub-population.  ``validate_inputs`` checks these up
front and returns a structured report so callers (and the CLI) can warn the
user before spending minutes mining treatments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataframe import Table, grouping_attribute_partition
from repro.graph import CausalDAG
from repro.sql import AggregateView, GroupByAvgQuery


@dataclass(frozen=True)
class ValidationIssue:
    """One diagnostic finding.  Frozen (and therefore hashable) so reports can
    be deduplicated and issues collected into sets."""

    severity: str  # "error" | "warning"
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """The set of findings for one (table, query, DAG) triple."""

    issues: list[ValidationIssue] = field(default_factory=list)

    def add(self, severity: str, code: str, message: str) -> None:
        """Record a finding unless the same ``(severity, code)`` is already present.

        Callers may run ``validate_inputs``-style checks against the same
        report object more than once; deduplicating here keeps the report
        stable under re-validation.
        """
        if any(i.severity == severity and i.code == code for i in self.issues):
            return
        self.issues.append(ValidationIssue(severity, code, message))

    @property
    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    def ok(self) -> bool:
        """True when no blocking errors were found (warnings allowed)."""
        return not self.errors


def validate_inputs(table: Table, query: GroupByAvgQuery,
                    dag: CausalDAG | None = None,
                    min_group_size: int = 10) -> ValidationReport:
    """Check a CauSumX input triple and return a diagnostics report.

    Errors (block the run): missing/ill-typed query attributes, fewer than two
    groups in the view.  Warnings (degrade quality): attributes absent from
    the DAG, outcome with no parents in the DAG, duplicate tuples (SUTVA),
    groups too small for CATE estimation, missing outcome values, and the
    absence of FD-derived grouping attributes.
    """
    report = ValidationReport()

    # --- query vs schema ------------------------------------------------------
    try:
        query.validate(table)
    except (KeyError, TypeError) as exc:
        report.add("error", "invalid-query", str(exc))
        return report

    view = AggregateView(table, query)
    if view.m < 2:
        report.add("error", "degenerate-view",
                   f"the query produces {view.m} group(s); explanations need at least 2")

    # --- causal DAG coverage --------------------------------------------------
    if dag is None:
        report.add("warning", "no-dag",
                   "no causal DAG supplied; CATE estimates will be unadjusted "
                   "or rely on a discovered DAG")
    else:
        missing = [a for a in table.attributes if a not in dag]
        if missing:
            report.add("warning", "attributes-missing-from-dag",
                       f"{len(missing)} attribute(s) absent from the DAG: "
                       f"{', '.join(missing[:5])}"
                       + ("…" if len(missing) > 5 else ""))
        if query.average in dag and not dag.parents(query.average):
            report.add("warning", "outcome-has-no-parents",
                       f"the outcome {query.average!r} has no parents in the DAG; "
                       "no attribute will be considered causally relevant")
        extra = [n for n in dag.nodes if n not in table]
        if extra:
            report.add("warning", "dag-nodes-missing-from-table",
                       f"DAG nodes not present in the table: {', '.join(extra[:5])}")

    # --- SUTVA / duplicates ---------------------------------------------------
    seen = set()
    duplicates = 0
    for row in table.iter_rows():
        key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
        if key in seen:
            duplicates += 1
        else:
            seen.add(key)
    if duplicates:
        report.add("warning", "duplicate-tuples",
                   f"{duplicates} duplicate tuple(s) found; dependent or duplicated "
                   "units can violate SUTVA")

    # --- outcome quality ------------------------------------------------------
    n_missing = table.column(query.average).n_missing()
    if n_missing:
        report.add("warning", "missing-outcome-values",
                   f"{n_missing} tuple(s) have a missing {query.average!r}; "
                   "they are ignored during CATE estimation")

    # --- group sizes and attribute partition -----------------------------------
    small_groups = [g.label() for g in view.groups if g.size < 2 * min_group_size]
    if small_groups:
        report.add("warning", "small-groups",
                   f"{len(small_groups)} group(s) have fewer than "
                   f"{2 * min_group_size} tuples (e.g. {small_groups[0]}); "
                   "treatments for them are unlikely to reach significance")
    grouping, treatment = grouping_attribute_partition(
        view.table, list(query.group_by), query.average)
    if not grouping:
        report.add("warning", "no-grouping-attributes",
                   "no attribute is functionally determined by the group-by "
                   "attributes; each group will need its own explanation "
                   "(enable include_singleton_groups)")
    if not treatment:
        report.add("error", "no-treatment-attributes",
                   "no attributes are available for treatment patterns")
    return report
