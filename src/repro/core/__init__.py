"""The CauSumX framework: summarized causal explanations for aggregate views."""

from repro.core.config import CauSumXConfig
from repro.core.patterns import ExplanationPattern, ExplanationSummary
from repro.core.causumx import CauSumX, brute_force, brute_force_lp, greedy_last_step
from repro.core.render import render_summary, render_pattern
from repro.core.export import (
    summary_to_dict,
    summary_to_json,
    summary_to_markdown,
    pattern_to_dict,
    pattern_from_dict,
)
from repro.core.validation import ValidationIssue, ValidationReport, validate_inputs

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "validate_inputs",
    "summary_to_dict",
    "summary_to_json",
    "summary_to_markdown",
    "pattern_to_dict",
    "pattern_from_dict",
    "CauSumXConfig",
    "ExplanationPattern",
    "ExplanationSummary",
    "CauSumX",
    "brute_force",
    "brute_force_lp",
    "greedy_last_step",
    "render_summary",
    "render_pattern",
]
