"""Export explanation summaries to machine-readable and report formats."""

from __future__ import annotations

import json
from typing import Any

from repro.core.patterns import ExplanationPattern, ExplanationSummary
from repro.core.render import describe_pattern
from repro.dataframe import Pattern, Predicate


def pattern_to_dict(pattern: Pattern) -> list[dict]:
    """Serialise a conjunctive pattern as a list of predicate dictionaries."""
    return [{"attribute": p.attribute, "op": p.op.value, "value": p.value}
            for p in pattern]


def pattern_from_dict(spec: list[dict]) -> Pattern:
    """Inverse of :func:`pattern_to_dict`."""
    return Pattern(Predicate(item["attribute"], item["op"], item["value"])
                   for item in spec)


def explanation_to_dict(pattern: ExplanationPattern) -> dict[str, Any]:
    """Serialise one explanation pattern."""
    payload: dict[str, Any] = {
        "grouping_pattern": pattern_to_dict(pattern.grouping_pattern),
        "covered_groups": [list(key) for key in sorted(pattern.covered_groups, key=repr)],
        "explainability": pattern.explainability,
    }
    for direction, candidate in (("positive", pattern.positive),
                                 ("negative", pattern.negative)):
        if candidate is None:
            payload[direction] = None
        else:
            payload[direction] = {
                "treatment_pattern": pattern_to_dict(candidate.pattern),
                "cate": candidate.estimate.value,
                "std_error": candidate.estimate.std_error,
                "p_value": candidate.estimate.p_value,
                "n_treated": candidate.estimate.n_treated,
                "n_control": candidate.estimate.n_control,
            }
    return payload


def summary_to_dict(summary: ExplanationSummary) -> dict[str, Any]:
    """Serialise a whole explanation summary (JSON-compatible)."""
    return {
        "k": summary.k,
        "theta": summary.theta,
        "coverage": summary.coverage,
        "total_explainability": summary.total_explainability,
        "feasible": summary.feasible,
        "n_candidates": summary.n_candidates,
        "groups": [list(key) for key in summary.all_groups],
        "timings": dict(summary.timings),
        "patterns": [explanation_to_dict(p) for p in summary.sorted_by_weight()],
    }


def summary_to_json(summary: ExplanationSummary, indent: int = 2) -> str:
    """Serialise a summary to a JSON string."""
    return json.dumps(summary_to_dict(summary), indent=indent, default=str)


def summary_to_markdown(summary: ExplanationSummary, outcome: str = "the outcome") -> str:
    """Render a summary as a Markdown report (one section per explanation pattern)."""
    lines = ["# Causal explanation summary", "",
             f"- explanation patterns: {len(summary)} (k = {summary.k})",
             f"- coverage: {summary.coverage:.0%} of {len(summary.all_groups)} groups "
             f"(θ = {summary.theta})",
             f"- total explainability: {summary.total_explainability:,.4g}", ""]
    for i, pattern in enumerate(summary.sorted_by_weight(), 1):
        lines.append(f"## Insight {i}: groups where {describe_pattern(pattern.grouping_pattern)}")
        lines.append("")
        lines.append("| direction | treatment | effect on " + outcome + " | p-value |")
        lines.append("|---|---|---|---|")
        for label, candidate in (("positive", pattern.positive),
                                 ("negative", pattern.negative)):
            if candidate is None:
                lines.append(f"| {label} | — | — | — |")
            else:
                lines.append(
                    f"| {label} | {describe_pattern(candidate.pattern)} "
                    f"| {candidate.estimate.value:,.4g} "
                    f"| {candidate.estimate.p_value:.2g} |")
        covered = ", ".join("/".join(str(v) for v in key)
                            for key in sorted(pattern.covered_groups, key=repr)[:8])
        more = len(pattern.covered_groups) - 8
        if more > 0:
            covered += f" (+{more} more)"
        lines.append("")
        lines.append(f"Covers: {covered}")
        lines.append("")
    return "\n".join(lines)
