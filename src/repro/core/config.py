"""Configuration of the CauSumX algorithm and its variants."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mining.treatments import TreatmentMinerConfig


@dataclass
class CauSumXConfig:
    """All knobs of Algorithm 1.

    Attributes
    ----------
    k:
        Size constraint — the maximum number of explanation patterns (default 5,
        the paper's default).
    theta:
        Coverage constraint — the fraction of view groups that must be covered
        (default 0.75, the paper's default).
    apriori_threshold:
        Support threshold ``tau`` of the Apriori grouping-pattern miner
        (default 0.1, the paper's recommendation).
    max_grouping_length:
        Maximum number of predicates in a grouping pattern.
    grouping_mode:
        ``"apriori"`` (CauSumX) or ``"exhaustive"`` (Brute-Force variants).
    treatment_mode:
        ``"lattice"`` (Algorithm 2, CauSumX) or ``"exhaustive"`` (Brute-Force).
    solver:
        ``"lp_rounding"`` (CauSumX), ``"exact"`` (Brute-Force), or ``"greedy"``
        (Greedy-Last-Step).
    directions:
        Which treatment directions to mine: ``"+"``, ``"-"``, or ``"+-"`` (both,
        the system default — the weight is then |CATE+| + |CATE-|).
    sample_size:
        Optional tuple-count cap for CATE estimation (the paper samples 1M).
    include_singleton_groups:
        Add one grouping pattern per individual group when no FD-derived
        grouping attributes exist (German-style datasets).
    treatment:
        Configuration of the Algorithm 2 lattice search.
    use_mask_cache:
        Enable the shared pattern-evaluation engine
        (:class:`repro.dataframe.MaskCache`): predicate masks are memoized per
        table and every grouping pattern's sub-population is bound once and
        reused for all of its treatment candidates.  Explanation summaries are
        identical with the cache on or off — the cache only removes redundant
        recomputation (see ``benchmarks/bench_mask_cache.py``).  Default on.
    n_jobs:
        Number of worker threads used to mine treatment patterns for
        independent grouping patterns concurrently during step 2.  ``1``
        (the default) mines serially; ``-1`` uses one thread per CPU.  A
        thread pool is used (rather than processes) so all workers share one
        mask cache and one table without pickling; results are deterministic
        and independent of ``n_jobs``.
    coverage_weighting:
        How the greedy selector scores marginal coverage: ``"uniform"``
        (default — every group counts 1, the paper's semantics) or
        ``"group_size"`` (groups weighted by their tuple count, taken from
        the view's ``GroupByIndex``, so a pattern covering a few huge groups
        can beat one covering many tiny ones).  Only the ``"greedy"`` solver
        consults the weights; the LP/exact feasibility constraints always
        count groups.
    seed:
        Seed for randomized rounding and sampling.
    """

    k: int = 5
    theta: float = 0.75
    apriori_threshold: float = 0.1
    max_grouping_length: int | None = 3
    grouping_mode: str = "apriori"
    treatment_mode: str = "lattice"
    solver: str = "lp_rounding"
    directions: str = "+-"
    sample_size: int | None = 1_000_000
    include_singleton_groups: bool = False
    adjustment: str = "parents"
    min_group_size: int = 10
    treatment: TreatmentMinerConfig = field(default_factory=TreatmentMinerConfig)
    use_mask_cache: bool = True
    n_jobs: int = 1
    coverage_weighting: str = "uniform"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.grouping_mode not in {"apriori", "exhaustive"}:
            raise ValueError(f"unknown grouping_mode {self.grouping_mode!r}")
        if self.treatment_mode not in {"lattice", "exhaustive"}:
            raise ValueError(f"unknown treatment_mode {self.treatment_mode!r}")
        if self.solver not in {"lp_rounding", "exact", "greedy"}:
            raise ValueError(f"unknown solver {self.solver!r}")
        if self.directions not in {"+", "-", "+-"}:
            raise ValueError(f"directions must be '+', '-', or '+-'")
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError("theta must be in [0, 1]")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if not isinstance(self.n_jobs, int) or (self.n_jobs < 1 and self.n_jobs != -1):
            raise ValueError("n_jobs must be a positive integer or -1")
        if self.coverage_weighting not in {"uniform", "group_size"}:
            raise ValueError(
                f"unknown coverage_weighting {self.coverage_weighting!r}")

    def with_overrides(self, **kwargs) -> "CauSumXConfig":
        """Return a copy of the configuration with the given fields replaced."""
        return replace(self, **kwargs)
