"""Algorithm 1 — the CauSumX algorithm — and its Brute-Force / Greedy variants."""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from itertools import combinations
from typing import Sequence

from repro.causal import CATEEstimator
from repro.core.config import CauSumXConfig
from repro.core.patterns import ExplanationPattern, ExplanationSummary
from repro.dataframe import Pattern, Table, grouping_attribute_partition
from repro.graph import CausalDAG
from repro.mining.grouping import (
    GroupingPattern,
    deduplicate_grouping_patterns,
    mine_grouping_patterns,
)
from repro.mining.lattice import PatternLattice
from repro.mining.treatments import (
    TreatmentCandidate,
    mine_top_treatment,
)
from repro.optimize import (
    CoverageILP,
    greedy_selection,
    randomized_rounding,
    solve_exact,
    solve_lp_relaxation,
)
from repro.sql import AggregateView, GroupByAvgQuery, parse_query


class CauSumX:
    """Summarized causal explanations for a group-by-average query.

    Parameters
    ----------
    table:
        The database instance ``D``.
    dag:
        Causal background knowledge as a causal DAG over the attributes.
    config:
        Algorithm configuration (defaults follow the paper: k=5, theta=0.75,
        Apriori threshold 0.1, LP-rounding last step).

    Example
    -------
    >>> summary = CauSumX(table, dag).explain(
    ...     "SELECT Country, AVG(Salary) FROM SO GROUP BY Country")
    >>> for pattern in summary:
    ...     print(pattern)
    """

    def __init__(self, table: Table, dag: CausalDAG | None = None,
                 config: CauSumXConfig | None = None):
        self.table = table
        self.dag = dag
        self.config = config or CauSumXConfig()

    # ------------------------------------------------------------------ public API

    def explain(self, query: GroupByAvgQuery | str,
                grouping_attributes: Sequence[str] | None = None,
                treatment_attributes: Sequence[str] | None = None,
                *, view: AggregateView | None = None,
                estimator: CATEEstimator | None = None,
                ) -> ExplanationSummary:
        """Run Algorithm 1 and return the explanation summary.

        ``grouping_attributes`` / ``treatment_attributes`` override the
        automatic FD-based partition of Section 4.1 when provided (the paper's
        case studies restrict the treatment attributes this way, e.g. to
        sensitive attributes only).

        ``view`` / ``estimator`` are reuse hooks for long-lived callers (the
        ``repro.service`` engine): a pre-materialised :class:`AggregateView`
        of this table and query, and a :class:`CATEEstimator` over the view's
        (filtered) table.  Passing them skips re-materialisation and lets
        many queries share one mask cache / lattice-atom cache; results are
        identical to the self-built path.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if view is None:
            view = AggregateView(self.table, query)
        timings: dict[str, float] = {}

        # --- attribute partition -------------------------------------------------
        auto_grouping, auto_treatment = grouping_attribute_partition(
            view.table, list(query.group_by), query.average)
        grouping_attrs = list(grouping_attributes) if grouping_attributes is not None \
            else auto_grouping
        treatment_attrs = list(treatment_attributes) if treatment_attributes is not None \
            else auto_treatment

        # --- step 1: grouping patterns (Section 5.1) -----------------------------
        start = time.perf_counter()
        groupings = self._mine_groupings(view, grouping_attrs)
        timings["grouping_patterns"] = time.perf_counter() - start

        # --- step 2: treatment patterns per grouping pattern (Section 5.2) -------
        start = time.perf_counter()
        if estimator is None:
            estimator = self._estimator(view)
        candidates = self._mine_candidates(estimator, groupings, treatment_attrs)
        timings["treatment_patterns"] = time.perf_counter() - start

        # --- step 3: LP / exact / greedy selection (Section 5.3) -----------------
        start = time.perf_counter()
        summary = self._select(view, candidates, timings)
        timings["selection"] = time.perf_counter() - start
        summary.timings = timings
        return summary

    # ------------------------------------------------------------------ step 1

    def _mine_groupings(self, view: AggregateView,
                        grouping_attrs: Sequence[str]) -> list[GroupingPattern]:
        cfg = self.config
        if cfg.grouping_mode == "apriori":
            return mine_grouping_patterns(
                view, grouping_attrs,
                min_support=cfg.apriori_threshold,
                max_length=cfg.max_grouping_length,
                include_singleton_groups=cfg.include_singleton_groups,
            )
        return self._exhaustive_groupings(view, grouping_attrs)

    def _exhaustive_groupings(self, view: AggregateView,
                              grouping_attrs: Sequence[str]) -> list[GroupingPattern]:
        """All conjunctive equality grouping patterns (Brute-Force variants)."""
        table = view.table
        max_length = self.config.max_grouping_length or len(grouping_attrs)
        candidates: list[GroupingPattern] = []
        attrs = list(grouping_attrs)
        for length in range(1, min(max_length, len(attrs)) + 1):
            for subset in combinations(attrs, length):
                candidates.extend(self._enumerate_assignments(view, table, subset))
        # Singleton per-group patterns so every group is coverable.
        for group in view.groups:
            assignment = dict(zip(view.query.group_by, group.key))
            pattern = Pattern.equalities(assignment)
            candidates.append(GroupingPattern(pattern, frozenset([group.key]),
                                              support=group.size))
        return deduplicate_grouping_patterns(candidates)

    @staticmethod
    def _enumerate_assignments(view: AggregateView, table: Table,
                               attributes: tuple) -> list[GroupingPattern]:
        domains = [table.domain(a) for a in attributes]

        def recurse(index: int, assignment: dict) -> list[GroupingPattern]:
            if index == len(attributes):
                pattern = Pattern.equalities(assignment)
                covered = view.covered_groups(pattern)
                if not covered:
                    return []
                return [GroupingPattern(pattern, covered, pattern.support(table))]
            results = []
            for value in domains[index]:
                assignment[attributes[index]] = value
                results.extend(recurse(index + 1, assignment))
            assignment.pop(attributes[index], None)
            return results

        return recurse(0, {})

    # ------------------------------------------------------------------ step 2

    def _estimator(self, view: AggregateView) -> CATEEstimator:
        return self.build_estimator(view.table, view.query.average, self.dag,
                                    self.config)

    @staticmethod
    def build_estimator(table: Table, outcome: str, dag: CausalDAG | None,
                        config: CauSumXConfig) -> CATEEstimator:
        """The estimator `explain` would build for this table/outcome/config.

        Shared with the serving engine so cached populations are constructed
        exactly like the one-shot path (results stay byte-identical).
        """
        return CATEEstimator(
            table, outcome, dag=dag,
            adjustment=config.adjustment,
            sample_size=config.sample_size,
            min_group_size=config.min_group_size,
            seed=config.seed,
            use_cache=config.use_mask_cache,
        )

    def _resolved_n_jobs(self) -> int:
        n_jobs = self.config.n_jobs
        if n_jobs == -1:
            return max(os.cpu_count() or 1, 1)
        return n_jobs

    def _mine_candidates(self, estimator: CATEEstimator,
                         groupings: Sequence[GroupingPattern],
                         treatment_attrs: Sequence[str]) -> list[ExplanationPattern]:
        """Mine the best treatments for every grouping pattern (step 2).

        Grouping patterns are independent, so with ``config.n_jobs > 1`` they
        are mined concurrently by a thread pool sharing one estimator (and
        therefore one mask cache).  The output order follows ``groupings``
        regardless of the number of workers.

        Each grouping's data scan may itself fan shards out over the
        process-wide morsel pool (:mod:`repro.parallel`): that pool is a
        single shared executor of at most ``REPRO_WORKERS`` threads, and a
        morsel worker never re-submits to it (``map_morsels`` runs serially
        from worker threads), so total thread count stays bounded by
        ``n_jobs + REPRO_WORKERS`` — there is no pool-in-pool explosion.
        """
        def mine(grouping: GroupingPattern):
            return self._treatments_for(estimator, grouping, treatment_attrs)

        n_jobs = self._resolved_n_jobs()
        if n_jobs > 1 and len(groupings) > 1:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                mined = list(pool.map(mine, groupings))
        else:
            mined = [mine(grouping) for grouping in groupings]

        candidates = []
        for grouping, (positive, negative) in zip(groupings, mined):
            candidate = ExplanationPattern(grouping, positive, negative)
            if candidate.has_treatment():
                candidates.append(candidate)
        return candidates

    def _treatments_for(self, estimator: CATEEstimator, grouping: GroupingPattern,
                        treatment_attrs: Sequence[str]
                        ) -> tuple[TreatmentCandidate | None, TreatmentCandidate | None]:
        cfg = self.config
        if cfg.treatment_mode == "exhaustive":
            return self._exhaustive_treatments(estimator, grouping, treatment_attrs)
        positive = negative = None
        if "+" in cfg.directions:
            positive = mine_top_treatment(estimator, grouping.pattern,
                                          treatment_attrs, "+", self.dag,
                                          cfg.treatment)
        if "-" in cfg.directions:
            negative = mine_top_treatment(estimator, grouping.pattern,
                                          treatment_attrs, "-", self.dag,
                                          cfg.treatment)
        return positive, negative

    def _exhaustive_treatments(self, estimator: CATEEstimator,
                               grouping: GroupingPattern,
                               treatment_attrs: Sequence[str]
                               ) -> tuple[TreatmentCandidate | None, TreatmentCandidate | None]:
        """Evaluate every lattice node up to the depth cap (Brute-Force variants)."""
        cfg = self.config
        lattice = PatternLattice(
            estimator.table, list(treatment_attrs),
            max_values_per_attribute=cfg.treatment.max_values_per_attribute,
            numeric_bins=cfg.treatment.numeric_bins,
            mask_cache=estimator.mask_cache,
            min_support=estimator.min_group_size,
            atom_cache=estimator.atom_cache,
        )
        level = lattice.level_one()
        best_positive: TreatmentCandidate | None = None
        best_negative: TreatmentCandidate | None = None
        depth = 0
        evaluated: set[Pattern] = set()
        while level and depth < cfg.treatment.max_levels:
            valid_patterns = []
            fresh = [p for p in level if p not in evaluated]
            evaluated.update(fresh)
            estimates = estimator.estimate_many(fresh, grouping.pattern)
            for pattern, estimate in zip(fresh, estimates):
                if not estimate.is_valid():
                    continue
                valid_patterns.append(pattern)
                candidate = TreatmentCandidate(pattern, estimate)
                if estimate.p_value <= cfg.treatment.significance_level:
                    if estimate.value > 0 and (best_positive is None
                                               or estimate.value > best_positive.cate):
                        best_positive = candidate
                    if estimate.value < 0 and (best_negative is None
                                               or estimate.value < best_negative.cate):
                        best_negative = candidate
            level = lattice.next_level(valid_patterns)
            depth += 1
        positive = best_positive if "+" in cfg.directions else None
        negative = best_negative if "-" in cfg.directions else None
        return positive, negative

    # ------------------------------------------------------------------ step 3

    def _select(self, view: AggregateView, candidates: list[ExplanationPattern],
                timings: dict) -> ExplanationSummary:
        cfg = self.config
        problem = CoverageILP(
            weights=[c.explainability for c in candidates],
            coverage=[c.covered_groups for c in candidates],
            groups=view.group_keys(),
            k=cfg.k,
            theta=cfg.theta,
            group_weights=view.group_weights()
            if cfg.coverage_weighting == "group_size" else None,
        )
        if cfg.solver == "greedy":
            selection = greedy_selection(problem)
        elif cfg.solver == "exact":
            selection = solve_exact(problem)
        else:
            lp = solve_lp_relaxation(problem)
            selection = randomized_rounding(problem, lp, seed=cfg.seed)

        if selection is None:
            chosen: list[ExplanationPattern] = []
            feasible = False
        else:
            chosen = [candidates[j] for j in selection.chosen]
            feasible = selection.feasible
        return ExplanationSummary(
            patterns=chosen,
            all_groups=tuple(view.group_keys()),
            k=cfg.k,
            theta=cfg.theta,
            timings=timings,
            n_candidates=len(candidates),
            feasible=feasible,
        )


# ---------------------------------------------------------------------- variants


def brute_force(table: Table, dag: CausalDAG | None = None,
                config: CauSumXConfig | None = None) -> CauSumX:
    """The Brute-Force baseline: exhaustive mining + exact ILP solution."""
    config = (config or CauSumXConfig()).with_overrides(
        grouping_mode="exhaustive", treatment_mode="exhaustive", solver="exact")
    return CauSumX(table, dag, config)


def brute_force_lp(table: Table, dag: CausalDAG | None = None,
                   config: CauSumXConfig | None = None) -> CauSumX:
    """Brute-Force-LP: exhaustive mining, LP-rounding last step."""
    config = (config or CauSumXConfig()).with_overrides(
        grouping_mode="exhaustive", treatment_mode="exhaustive", solver="lp_rounding")
    return CauSumX(table, dag, config)


def greedy_last_step(table: Table, dag: CausalDAG | None = None,
                     config: CauSumXConfig | None = None) -> CauSumX:
    """Greedy-Last-Step: CauSumX mining, greedy selection instead of the LP."""
    config = (config or CauSumXConfig()).with_overrides(solver="greedy")
    return CauSumX(table, dag, config)
