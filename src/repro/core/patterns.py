"""Explanation patterns and explanation summaries (Definitions 4.2-4.5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dataframe import Pattern
from repro.mining.grouping import GroupingPattern
from repro.mining.treatments import TreatmentCandidate


@dataclass
class ExplanationPattern:
    """One entry of the explanation summary.

    It pairs a grouping pattern with a positive and/or a negative treatment
    pattern; its weight is the sum of the absolute explainabilities of the
    directions present (Section 4.2).
    """

    grouping: GroupingPattern
    positive: TreatmentCandidate | None = None
    negative: TreatmentCandidate | None = None

    @property
    def grouping_pattern(self) -> Pattern:
        return self.grouping.pattern

    @property
    def covered_groups(self) -> frozenset:
        return self.grouping.covered_groups

    @property
    def explainability(self) -> float:
        """|CATE+| + |CATE-| over the directions that were found (Section 4.2)."""
        total = 0.0
        if self.positive is not None:
            total += abs(self.positive.cate)
        if self.negative is not None:
            total += abs(self.negative.cate)
        return total

    def has_treatment(self) -> bool:
        return self.positive is not None or self.negative is not None

    def __repr__(self) -> str:
        pos = f"+{self.positive.cate:.3g}" if self.positive else "+none"
        neg = f"{self.negative.cate:.3g}" if self.negative else "-none"
        return (f"ExplanationPattern({self.grouping_pattern!r}, {pos}, {neg}, "
                f"covers={len(self.covered_groups)})")


@dataclass
class ExplanationSummary:
    """The output of CauSumX: a set of explanation patterns plus bookkeeping."""

    patterns: list[ExplanationPattern]
    all_groups: tuple
    k: int
    theta: float
    timings: dict = field(default_factory=dict)
    n_candidates: int = 0
    feasible: bool = True

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    @property
    def covered_groups(self) -> frozenset:
        covered: set = set()
        for pattern in self.patterns:
            covered |= pattern.covered_groups
        return frozenset(covered) & set(self.all_groups)

    @property
    def coverage(self) -> float:
        """Fraction of view groups covered by the summary."""
        if not self.all_groups:
            return 0.0
        return len(self.covered_groups) / len(self.all_groups)

    @property
    def total_explainability(self) -> float:
        """The optimisation objective: total explainability of the selected patterns."""
        return sum(p.explainability for p in self.patterns)

    def satisfies_constraints(self) -> bool:
        """Size, coverage, and incomparability constraints of Definition 4.5."""
        if len(self.patterns) > self.k:
            return False
        if self.coverage + 1e-9 < self.theta:
            return False
        coverages = [p.covered_groups for p in self.patterns]
        return len(set(coverages)) == len(coverages)

    def group_assignment(self) -> dict:
        """Map each covered group to the explanation patterns covering it."""
        assignment: dict = {g: [] for g in self.all_groups}
        for i, pattern in enumerate(self.patterns):
            for group in pattern.covered_groups:
                if group in assignment:
                    assignment[group].append(i)
        return assignment

    def uncovered_groups(self) -> list:
        covered = self.covered_groups
        return [g for g in self.all_groups if g not in covered]

    def sorted_by_weight(self) -> list[ExplanationPattern]:
        return sorted(self.patterns, key=lambda p: -p.explainability)
