"""FCI-lite: PC skeleton with an extra possible-d-separation pruning pass.

The full FCI algorithm targets latent-confounder settings and outputs a PAG.
For the purposes of the paper's DAG-sensitivity experiment (Figure 23) only the
*sparsity* behaviour matters: FCI removes more edges than PC because it tests
additional separating sets.  This lite variant reproduces that behaviour by
running the PC skeleton and then re-testing every remaining edge against
larger conditioning sets drawn from the union of both endpoints' neighbours,
finally orienting edges exactly as our PC implementation does.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.dataframe import Table
from repro.discovery.citest import fisher_z_independent
from repro.discovery.pc import pc_algorithm
from repro.graph import CausalDAG


def fci_lite(table: Table, attributes: Sequence[str] | None = None,
             alpha: float = 0.05, max_condition_size: int = 3) -> CausalDAG:
    """Run FCI-lite and return a DAG (sparser than PC's on the same data)."""
    attributes = list(attributes or table.attributes)
    base = pc_algorithm(table, attributes, alpha=alpha,
                        max_condition_size=min(2, max_condition_size))
    pruned = CausalDAG(attributes)
    for parent, child in base.edges:
        neighbours = sorted((base.neighbors(parent) | base.neighbors(child))
                            - {parent, child})
        independent = False
        for size in range(min(len(neighbours), max_condition_size) + 1):
            for conditioning in combinations(neighbours, size):
                if fisher_z_independent(table, parent, child, list(conditioning),
                                        alpha=alpha):
                    independent = True
                    break
            if independent:
                break
        if not independent:
            try:
                pruned.add_edge(parent, child)
            except ValueError:
                continue
    return pruned
