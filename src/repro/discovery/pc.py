"""The PC causal discovery algorithm (Spirtes et al.) on table data.

The implementation follows the classic three phases: skeleton discovery via
conditional-independence tests with growing conditioning-set sizes, v-structure
orientation using the recorded separating sets, and Meek-style orientation
propagation.  Remaining undirected edges are oriented by a deterministic
tie-break (attribute order) so the output is always a DAG, which is what the
downstream CATE machinery needs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Sequence

from repro.dataframe import Table
from repro.discovery.citest import fisher_z_independent
from repro.graph import CausalDAG


def pc_algorithm(table: Table, attributes: Sequence[str] | None = None,
                 alpha: float = 0.05, max_condition_size: int = 2,
                 ci_test: Callable | None = None) -> CausalDAG:
    """Run the PC algorithm and return a fully oriented DAG."""
    attributes = list(attributes or table.attributes)
    independent = ci_test or (
        lambda x, y, given: fisher_z_independent(table, x, y, given, alpha=alpha))

    adjacency: dict[str, set[str]] = {a: set(attributes) - {a} for a in attributes}
    separating_sets: dict[frozenset, tuple] = {}

    # Phase 1: skeleton.
    for level in range(max_condition_size + 1):
        removed_any = False
        for x in attributes:
            for y in sorted(adjacency[x]):
                if x >= y:
                    continue
                neighbours = sorted((adjacency[x] | adjacency[y]) - {x, y})
                if len(neighbours) < level:
                    continue
                for conditioning in combinations(neighbours, level):
                    if independent(x, y, list(conditioning)):
                        adjacency[x].discard(y)
                        adjacency[y].discard(x)
                        separating_sets[frozenset((x, y))] = conditioning
                        removed_any = True
                        break
        if not removed_any and level > 0:
            break

    # Phase 2: orient v-structures x -> z <- y when z not in sepset(x, y).
    oriented: set[tuple[str, str]] = set()
    for z in attributes:
        neighbours = sorted(adjacency[z])
        for x, y in combinations(neighbours, 2):
            if y in adjacency[x]:
                continue  # x and y adjacent, not a v-structure candidate
            sepset = separating_sets.get(frozenset((x, y)), ())
            if z not in sepset:
                oriented.add((x, z))
                oriented.add((y, z))

    # Phase 3: Meek rule 1 propagation (avoid new v-structures) plus a
    # deterministic fallback ordering for whatever remains undirected.
    undirected = {frozenset((x, y)) for x in attributes for y in adjacency[x] if x < y}
    undirected = {e for e in undirected
                  if not ((tuple(sorted(e))[0], tuple(sorted(e))[1]) in oriented
                          or (tuple(sorted(e))[1], tuple(sorted(e))[0]) in oriented)}
    changed = True
    while changed:
        changed = False
        for edge in list(undirected):
            a, b = tuple(sorted(edge))
            # Meek rule 1: if c -> a and c not adjacent to b, orient a -> b.
            for c, d in list(oriented):
                if d == a and c not in adjacency[b] and c != b:
                    oriented.add((a, b))
                    undirected.discard(edge)
                    changed = True
                    break
                if d == b and c not in adjacency[a] and c != a:
                    oriented.add((b, a))
                    undirected.discard(edge)
                    changed = True
                    break

    order = {a: i for i, a in enumerate(attributes)}
    for edge in undirected:
        a, b = sorted(edge, key=lambda n: order[n])
        oriented.add((a, b))

    dag = CausalDAG(attributes)
    # Conflicting orientations (both directions recorded) resolve to attribute order.
    for parent, child in sorted(oriented, key=lambda e: (order[e[0]], order[e[1]])):
        if dag.has_edge(parent, child) or dag.has_edge(child, parent):
            continue
        try:
            dag.add_edge(parent, child)
        except ValueError:
            continue  # would create a cycle; skip the conflicting orientation
    return dag
