"""LiNGAM-lite: causal ordering by non-Gaussianity (DirectLiNGAM-style).

DirectLiNGAM repeatedly extracts the variable most plausibly exogenous
(judged by the independence between it and the residuals of regressing the
other variables on it), then regresses it out and recurses.  We reproduce that
procedure using a kurtosis/skewness-based independence surrogate, then keep an
edge ``x -> y`` whenever the regression coefficient of ``x`` in ``y``'s
residual regression exceeds a threshold.  The output DAG is typically sparse,
as reported in Table 4.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataframe import Table
from repro.graph import CausalDAG


def _standardise(matrix: np.ndarray) -> np.ndarray:
    matrix = matrix - matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    return matrix / std


def _mutual_independence_score(x: np.ndarray, residuals: np.ndarray) -> float:
    """Lower is "more independent" — surrogate for DirectLiNGAM's kernel measure."""
    if residuals.size == 0:
        return 0.0
    score = 0.0
    for j in range(residuals.shape[1]):
        r = residuals[:, j]
        # Higher-order cross moments vanish under independence.
        score += abs(float(np.mean(x ** 2 * r) - np.mean(x ** 2) * np.mean(r)))
        score += abs(float(np.mean(x * r ** 2) - np.mean(x) * np.mean(r ** 2)))
    return score


def lingam_lite(table: Table, attributes: Sequence[str] | None = None,
                edge_threshold: float = 0.15) -> CausalDAG:
    """Estimate a causal DAG assuming a linear non-Gaussian acyclic model."""
    attributes = list(attributes or table.attributes)
    matrix = np.column_stack([table.column(a).as_float() for a in attributes])
    for j in range(matrix.shape[1]):
        col = matrix[:, j]
        missing = np.isnan(col)
        if missing.any():
            col[missing] = col[~missing].mean() if (~missing).any() else 0.0
    matrix = _standardise(matrix)

    remaining = list(range(len(attributes)))
    order: list[int] = []
    working = matrix.copy()
    while len(remaining) > 1:
        scores = []
        for idx_pos, i in enumerate(remaining):
            x = working[:, idx_pos]
            others = np.delete(working, idx_pos, axis=1)
            if x.std() == 0:
                scores.append(float("inf"))
                continue
            coefs = (others.T @ x) / (x @ x)
            residuals = others - np.outer(x, coefs)
            scores.append(_mutual_independence_score(x, residuals))
        best_pos = int(np.argmin(scores))
        best = remaining[best_pos]
        order.append(best)
        x = working[:, best_pos]
        others = np.delete(working, best_pos, axis=1)
        if x.std() > 0:
            coefs = (others.T @ x) / (x @ x)
            others = others - np.outer(x, coefs)
        working = _standardise(others) if others.shape[1] else others
        remaining.pop(best_pos)
    order.extend(remaining)

    dag = CausalDAG([attributes[i] for i in order])
    # Estimate a lower-triangular coefficient matrix along the causal order and
    # keep edges whose standardized coefficient is large enough.
    for pos, child_idx in enumerate(order):
        if pos == 0:
            continue
        parent_indices = order[:pos]
        design = matrix[:, parent_indices]
        target = matrix[:, child_idx]
        coefs, *_ = np.linalg.lstsq(design, target, rcond=None)
        for parent_pos, parent_idx in enumerate(parent_indices):
            if abs(float(coefs[parent_pos])) >= edge_threshold:
                dag.add_edge(attributes[parent_idx], attributes[child_idx])
    return dag
