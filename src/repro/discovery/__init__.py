"""Causal discovery algorithms used to build candidate causal DAGs (Section 6.6)."""

from repro.discovery.citest import fisher_z_independent, partial_correlation
from repro.discovery.pc import pc_algorithm
from repro.discovery.fci import fci_lite
from repro.discovery.lingam import lingam_lite
from repro.discovery.nodag import no_dag

__all__ = [
    "fisher_z_independent",
    "partial_correlation",
    "pc_algorithm",
    "fci_lite",
    "lingam_lite",
    "no_dag",
]
