"""Conditional-independence testing via Fisher-z partial correlation."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from repro.dataframe import Table


def _encoded_matrix(table: Table, attributes: Sequence[str]) -> np.ndarray:
    """Numeric matrix for CI testing: categoricals are label-encoded."""
    columns = []
    for attr in attributes:
        columns.append(table.column(attr).as_float())
    matrix = np.column_stack(columns) if columns else np.zeros((table.n_rows, 0))
    # Impute missing values with the column mean so correlations stay defined.
    for j in range(matrix.shape[1]):
        col = matrix[:, j]
        missing = np.isnan(col)
        if missing.any():
            fill = col[~missing].mean() if (~missing).any() else 0.0
            col[missing] = fill
    return matrix


def partial_correlation(table: Table, x: str, y: str,
                        given: Sequence[str] = ()) -> float:
    """Partial correlation of ``x`` and ``y`` given the conditioning attributes."""
    attrs = [x, y, *given]
    matrix = _encoded_matrix(table, attrs)
    if matrix.shape[0] < 3:
        return 0.0
    # Guard against constant columns.
    stds = matrix.std(axis=0)
    if stds[0] == 0 or stds[1] == 0:
        return 0.0
    corr = np.corrcoef(matrix, rowvar=False)
    corr = np.nan_to_num(corr, nan=0.0)
    if not given:
        return float(np.clip(corr[0, 1], -0.999999, 0.999999))
    try:
        precision = np.linalg.pinv(corr)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return 0.0
    denom = np.sqrt(precision[0, 0] * precision[1, 1])
    if denom == 0:
        return 0.0
    return float(np.clip(-precision[0, 1] / denom, -0.999999, 0.999999))


def fisher_z_independent(table: Table, x: str, y: str, given: Sequence[str] = (),
                         alpha: float = 0.05) -> bool:
    """Fisher-z test: True if ``x`` and ``y`` are conditionally independent given ``given``."""
    n = table.n_rows
    k = len(given)
    if n - k - 3 <= 0:
        return True
    r = partial_correlation(table, x, y, given)
    z = 0.5 * np.log((1 + r) / (1 - r))
    statistic = abs(z) * np.sqrt(n - k - 3)
    p_value = 2 * stats.norm.sf(statistic)
    return bool(p_value > alpha)
