"""The No-DAG baseline of Section 6.6.

Every attribute is linked directly to the outcome and no other edges exist,
mimicking the approach of assuming all attributes are direct causes (and hence
mutual confounders are ignored).
"""

from __future__ import annotations

from typing import Sequence

from repro.dataframe import Table
from repro.graph import CausalDAG


def no_dag(table: Table, outcome: str, attributes: Sequence[str] | None = None) -> CausalDAG:
    """Build the star-shaped DAG: every attribute -> outcome, nothing else."""
    attributes = list(attributes or table.attributes)
    dag = CausalDAG(attributes)
    if outcome not in attributes:
        dag.add_node(outcome)
    for attr in attributes:
        if attr != outcome:
            dag.add_edge(attr, outcome)
    return dag
