"""Shared utilities of the baseline methods."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataframe import Column, Pattern, Table


@dataclass(frozen=True)
class Rule:
    """A predictive rule: ``IF pattern THEN outcome`` with supporting statistics."""

    pattern: Pattern
    prediction: float
    support: int
    confidence: float

    def __repr__(self) -> str:
        return (f"Rule({self.pattern!r} => {self.prediction:.3g}, "
                f"support={self.support}, confidence={self.confidence:.2f})")


def binarize_outcome(table: Table, outcome: str, threshold: float | None = None,
                     new_name: str | None = None) -> tuple[Table, str]:
    """Bin a numeric outcome into {0, 1} around its mean (or a given threshold).

    IDS, FRL, and Explanation-Table assume a binary outcome; the paper bins the
    outcome at its average value for those baselines.
    """
    values = table.column(outcome).values.astype(np.float64)
    if threshold is None:
        threshold = float(np.nanmean(values))
    new_name = new_name or f"{outcome}_high"
    binary = [float(v > threshold) if v == v else None for v in values]
    columns = [table.column(a) for a in table.attributes]
    columns.append(Column(new_name, binary, numeric=True))
    return Table(columns, name=table.name), new_name
