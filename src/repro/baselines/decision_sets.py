"""Interpretable Decision Sets (Lakkaraju et al., KDD 2016) — IDS baseline.

IDS selects a small, non-overlapping set of if-then rules jointly optimising
accuracy, coverage, conciseness, and overlap via submodular maximisation.  We
implement the standard greedy surrogate: rules are added one at a time,
scoring each candidate by correct-coverage gain minus overlap and length
penalties, until the rule budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import Rule, binarize_outcome
from repro.dataframe import Pattern, Table
from repro.mining.apriori import apriori
from repro.mining.lattice import PatternLattice


@dataclass
class InterpretableDecisionSets:
    """Greedy IDS: a bounded set of non-overlapping predictive rules.

    Parameters
    ----------
    max_rules:
        Rule budget (set to CauSumX's ``k`` in the comparison).
    max_uncovered_fraction:
        Target fraction of tuples that may remain uncovered (1 - coverage
        constraint analogue).
    min_support:
        Minimum support of candidate rule antecedents.
    overlap_penalty / length_penalty:
        Weights of the IDS objective's overlap and conciseness terms.
    """

    max_rules: int = 5
    max_uncovered_fraction: float = 0.25
    min_support: float = 0.05
    max_length: int = 2
    overlap_penalty: float = 0.5
    length_penalty: float = 0.01
    rules: list[Rule] = field(default_factory=list)

    def fit(self, table: Table, outcome: str, attributes=None) -> "InterpretableDecisionSets":
        if table.is_numeric(outcome) and set(table.domain(outcome)) - {0.0, 1.0}:
            table, outcome = binarize_outcome(table, outcome)
        attributes = [a for a in (attributes or table.attributes) if a != outcome]
        outcome_values = table.column(outcome).values.astype(np.float64)
        valid = ~np.isnan(outcome_values)
        labels = np.where(valid, outcome_values, 0.0)

        candidates = self._candidate_antecedents(table, attributes)
        covered = np.zeros(table.n_rows, dtype=bool)
        rules: list[Rule] = []
        while len(rules) < self.max_rules:
            uncovered_fraction = float((~covered).sum()) / table.n_rows
            best = None
            best_score = 0.0
            for pattern, mask in candidates:
                new = mask & ~covered
                support = int(new.sum())
                if support == 0:
                    continue
                positive_rate = float(labels[mask].mean())
                prediction = 1.0 if positive_rate >= 0.5 else 0.0
                correct = int((labels[new] == prediction).sum())
                overlap = int((mask & covered).sum())
                score = (correct
                         - self.overlap_penalty * overlap
                         - self.length_penalty * len(pattern) * table.n_rows / 100)
                if score > best_score:
                    best_score = score
                    best = (pattern, mask, prediction, support, positive_rate)
            if best is None:
                break
            pattern, mask, prediction, support, positive_rate = best
            confidence = positive_rate if prediction == 1.0 else 1.0 - positive_rate
            rules.append(Rule(pattern, prediction, support, confidence))
            covered |= mask
            if uncovered_fraction <= self.max_uncovered_fraction:
                # Budget and coverage target both satisfied — stop early only
                # if adding more rules no longer improves correct coverage.
                if best_score <= 0:
                    break
        self.rules = rules
        return self

    def _candidate_antecedents(self, table: Table, attributes):
        frequent = apriori(table, attributes, min_support=self.min_support,
                           max_length=self.max_length,
                           max_values_per_attribute=15)
        patterns = [f.pattern for f in frequent]
        if not patterns:
            patterns = PatternLattice(table, attributes,
                                      max_values_per_attribute=15).level_one()
        return [(p, p.evaluate(table)) for p in patterns]

    def predict(self, table: Table) -> np.ndarray:
        """Predict with the first matching rule; default is the majority class 0."""
        predictions = np.zeros(table.n_rows)
        assigned = np.zeros(table.n_rows, dtype=bool)
        for rule in self.rules:
            mask = rule.pattern.evaluate(table) & ~assigned
            predictions[mask] = rule.prediction
            assigned |= mask
        return predictions

    def accuracy(self, table: Table, outcome: str) -> float:
        if table.is_numeric(outcome) and set(table.domain(outcome)) - {0.0, 1.0}:
            table, outcome = binarize_outcome(table, outcome)
        labels = table.column(outcome).values.astype(np.float64)
        predictions = self.predict(table)
        valid = ~np.isnan(labels)
        if not valid.any():
            return 0.0
        return float((predictions[valid] == labels[valid]).mean())
