"""Falling Rule Lists (Chen & Rudin, AISTATS 2018) — FRL baseline.

A falling rule list is an *ordered* list of if-then rules whose positive-class
probabilities are monotonically non-increasing.  We implement the standard
greedy construction: repeatedly pick the unused antecedent with the highest
positive rate among the not-yet-covered tuples (subject to a minimum support),
which automatically yields the falling property up to estimation noise, then
enforce monotonicity by truncation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import Rule, binarize_outcome
from repro.dataframe import Table
from repro.mining.apriori import apriori
from repro.mining.lattice import PatternLattice


@dataclass
class FallingRuleList:
    """Greedy falling rule list for a binary (or binarised) outcome."""

    max_rules: int = 8
    min_support: float = 0.05
    max_length: int = 2
    rules: list[Rule] = field(default_factory=list)
    default_probability: float = 0.0

    def fit(self, table: Table, outcome: str, attributes=None) -> "FallingRuleList":
        if table.is_numeric(outcome) and set(table.domain(outcome)) - {0.0, 1.0}:
            table, outcome = binarize_outcome(table, outcome)
        attributes = [a for a in (attributes or table.attributes) if a != outcome]
        labels = table.column(outcome).values.astype(np.float64)
        labels = np.where(np.isnan(labels), 0.0, labels)

        frequent = apriori(table, attributes, min_support=self.min_support,
                           max_length=self.max_length, max_values_per_attribute=15)
        patterns = [f.pattern for f in frequent]
        if not patterns:
            patterns = PatternLattice(table, attributes,
                                      max_values_per_attribute=15).level_one()
        masks = {p: p.evaluate(table) for p in patterns}

        min_count = max(5, int(self.min_support * table.n_rows))
        remaining = np.ones(table.n_rows, dtype=bool)
        rules: list[Rule] = []
        previous_probability = 1.0
        while len(rules) < self.max_rules:
            best = None
            best_probability = -1.0
            for pattern, mask in masks.items():
                if any(pattern == r.pattern for r in rules):
                    continue
                active = mask & remaining
                support = int(active.sum())
                if support < min_count:
                    continue
                probability = float(labels[active].mean())
                if probability > best_probability:
                    best_probability = probability
                    best = (pattern, active, support, probability)
            if best is None:
                break
            pattern, active, support, probability = best
            # Falling property: probabilities must not increase down the list.
            probability = min(probability, previous_probability)
            rules.append(Rule(pattern, prediction=round(probability),
                              support=support, confidence=probability))
            previous_probability = probability
            remaining &= ~active
            # Once the rule probability drops to the overall base rate the list
            # stops being informative.
            if probability <= float(labels.mean()):
                break
        self.rules = rules
        self.default_probability = float(labels[remaining].mean()) if remaining.any() else 0.0
        return self

    def predict_proba(self, table: Table) -> np.ndarray:
        """Positive-class probability from the first matching rule (or the default)."""
        probabilities = np.full(table.n_rows, self.default_probability)
        assigned = np.zeros(table.n_rows, dtype=bool)
        for rule in self.rules:
            mask = rule.pattern.evaluate(table) & ~assigned
            probabilities[mask] = rule.confidence
            assigned |= mask
        return probabilities

    def is_falling(self) -> bool:
        """Whether the rule-list probabilities are monotonically non-increasing."""
        confidences = [r.confidence for r in self.rules]
        return all(confidences[i] >= confidences[i + 1]
                   for i in range(len(confidences) - 1))
