"""XInsight-style pairwise causal difference explanations (Ma et al., SIGMOD 2023).

XInsight explains the difference between *two* groups of a query result by
finding attribute-value patterns with a causal influence on the outcome whose
distribution differs between the two groups.  To compare against CauSumX the
paper runs it over all m-choose-2 pairs of groups.  This implementation scores,
for every pair of groups, each causally relevant treatment pattern by its CATE
(within the pair's union) weighted by the difference of its prevalence between
the two groups — high scores mean "this pattern is causal for the outcome and
much more common in the higher group", which is XInsight's explanation shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.causal import CATEEstimator
from repro.dataframe import Pattern
from repro.graph import CausalDAG
from repro.mining.lattice import PatternLattice
from repro.sql import AggregateView


@dataclass(frozen=True)
class PairwiseExplanation:
    """Explanation of the outcome difference between one pair of groups."""

    group_a: tuple
    group_b: tuple
    difference: float
    pattern: Pattern
    cate: float
    prevalence_a: float
    prevalence_b: float

    @property
    def score(self) -> float:
        return abs(self.cate * (self.prevalence_a - self.prevalence_b))


@dataclass
class XInsightPairwise:
    """All-pairs difference explanations for an aggregate view."""

    dag: CausalDAG | None = None
    max_values_per_attribute: int = 10
    min_group_size: int = 10
    explanations: list[PairwiseExplanation] = field(default_factory=list)

    def fit(self, view: AggregateView, treatment_attributes: Sequence[str],
            max_pairs: int | None = None) -> "XInsightPairwise":
        """Explain the outcome difference of every pair of groups in the view."""
        outcome = view.query.average
        table = view.table
        lattice = PatternLattice(table, list(treatment_attributes),
                                 max_values_per_attribute=self.max_values_per_attribute)
        atomic = lattice.level_one()
        explanations: list[PairwiseExplanation] = []
        pairs = list(combinations(view.group_keys(), 2))
        if max_pairs is not None:
            pairs = pairs[:max_pairs]
        for key_a, key_b in pairs:
            explanation = self._explain_pair(view, key_a, key_b, atomic, outcome)
            if explanation is not None:
                explanations.append(explanation)
        self.explanations = explanations
        return self

    def _explain_pair(self, view: AggregateView, key_a: tuple, key_b: tuple,
                      atomic: list[Pattern], outcome: str) -> PairwiseExplanation | None:
        table_a = view.group_table(key_a)
        table_b = view.group_table(key_b)
        pair_table = table_a.concat(table_b)
        if pair_table.n_rows < 2 * self.min_group_size:
            return None
        estimator = CATEEstimator(pair_table, outcome, dag=self.dag,
                                  min_group_size=self.min_group_size)
        difference = view.group(key_a).average - view.group(key_b).average
        best: PairwiseExplanation | None = None
        for pattern in atomic:
            estimate = estimator.estimate(pattern)
            if not estimate.is_valid() or estimate.p_value > 0.05:
                continue
            prevalence_a = float(pattern.evaluate(table_a).mean())
            prevalence_b = float(pattern.evaluate(table_b).mean())
            candidate = PairwiseExplanation(
                group_a=key_a, group_b=key_b, difference=difference,
                pattern=pattern, cate=estimate.value,
                prevalence_a=prevalence_a, prevalence_b=prevalence_b)
            if best is None or candidate.score > best.score:
                best = candidate
        return best

    def explanation_size(self) -> int:
        """Total number of pairwise explanations (the paper notes this grows as m^2)."""
        return len(self.explanations)

    def top(self, n: int = 10) -> list[PairwiseExplanation]:
        return sorted(self.explanations, key=lambda e: -e.score)[:n]
