"""Explanation tables (El Gebaly et al., VLDB 2014) — information-gain pattern selection.

An explanation table is a small list of patterns that best summarises the
distribution of a binary outcome.  Patterns are chosen greedily to maximise the
information gain of the outcome given the pattern partition, which is the core
idea of the original algorithm (we do not reproduce its sampling machinery —
dataset sizes here do not need it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import Rule, binarize_outcome
from repro.dataframe import Pattern, Table
from repro.mining.lattice import PatternLattice
from repro.sql import AggregateView


def _entropy(positive: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = positive / total
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return float(-(p * np.log2(p) + (1 - p) * np.log2(1 - p)))


@dataclass
class ExplanationTable:
    """Greedy information-gain explanation table for a binary (or binarised) outcome.

    Parameters
    ----------
    n_patterns:
        Number of patterns in the table (analogous to CauSumX's ``k``).
    max_length:
        Maximum number of predicates per pattern.
    max_values / numeric_bins:
        Candidate-generation limits (mirroring the treatment lattice).
    """

    n_patterns: int = 5
    max_length: int = 2
    max_values: int = 15
    numeric_bins: int = 3
    rules: list[Rule] = field(default_factory=list)

    def fit(self, table: Table, outcome: str, attributes=None) -> "ExplanationTable":
        """Build the explanation table for ``outcome`` over ``attributes``."""
        if table.is_numeric(outcome) and set(table.domain(outcome)) - {0.0, 1.0}:
            table, outcome = binarize_outcome(table, outcome)
        attributes = [a for a in (attributes or table.attributes) if a != outcome]
        outcome_values = table.column(outcome).values.astype(np.float64)
        valid = ~np.isnan(outcome_values)
        outcome_values = np.where(valid, outcome_values, 0.0)

        candidates = self._candidates(table, attributes)
        overall_entropy = _entropy(float(outcome_values[valid].sum()),
                                   float(valid.sum()))
        chosen: list[Rule] = []
        used: set[Pattern] = set()
        explained = np.zeros(table.n_rows, dtype=bool)
        for _ in range(self.n_patterns):
            best = None
            best_gain = -1.0
            for pattern in candidates:
                if pattern in used:
                    continue
                mask = pattern.evaluate(table) & valid
                inside = int(mask.sum())
                if inside == 0:
                    continue
                outside = int(valid.sum()) - inside
                gain = overall_entropy
                gain -= (inside / valid.sum()) * _entropy(
                    float(outcome_values[mask].sum()), inside)
                gain -= (outside / valid.sum()) * _entropy(
                    float(outcome_values[valid & ~mask].sum()), outside)
                # Prefer patterns explaining not-yet-covered tuples (diversity),
                # as the original algorithm does through residual updating.
                novelty = 1.0 + float((mask & ~explained).sum()) / table.n_rows
                gain *= novelty
                if gain > best_gain:
                    best_gain = gain
                    best = (pattern, mask, inside)
            if best is None:
                break
            pattern, mask, inside = best
            used.add(pattern)
            explained |= mask
            confidence = float(outcome_values[mask].mean()) if inside else 0.0
            chosen.append(Rule(pattern, prediction=round(confidence),
                               support=inside, confidence=confidence))
        self.rules = chosen
        return self

    def _candidates(self, table: Table, attributes) -> list[Pattern]:
        lattice = PatternLattice(table, list(attributes),
                                 max_values_per_attribute=self.max_values,
                                 numeric_bins=self.numeric_bins)
        level = lattice.level_one()
        candidates = list(level)
        depth = 1
        while depth < self.max_length:
            level = lattice.next_level(level)
            candidates.extend(level)
            depth += 1
        return candidates

    def predict(self, table: Table) -> np.ndarray:
        """Predict the binary outcome using the first matching rule (default 0)."""
        predictions = np.zeros(table.n_rows)
        assigned = np.zeros(table.n_rows, dtype=bool)
        for rule in self.rules:
            mask = rule.pattern.evaluate(table) & ~assigned
            predictions[mask] = rule.prediction
            assigned |= mask
        return predictions


@dataclass
class ExplanationTableG:
    """Explanation-Table-G: one explanation table per CauSumX grouping pattern."""

    n_patterns: int = 3
    max_length: int = 2
    tables: dict = field(default_factory=dict)

    def fit(self, view: AggregateView, grouping_patterns, outcome: str,
            attributes=None) -> "ExplanationTableG":
        """Fit one explanation table per grouping pattern's sub-population."""
        self.tables = {}
        for grouping in grouping_patterns:
            sub = view.table.select(grouping.pattern)
            if sub.n_rows < 5:
                continue
            fitted = ExplanationTable(n_patterns=self.n_patterns,
                                      max_length=self.max_length).fit(
                sub, outcome, attributes)
            self.tables[grouping.pattern] = fitted
        return self
