"""Baseline explanation methods compared against CauSumX in Section 6."""

from repro.baselines.common import binarize_outcome, Rule
from repro.baselines.explanation_table import ExplanationTable, ExplanationTableG
from repro.baselines.decision_sets import InterpretableDecisionSets
from repro.baselines.falling_rule_list import FallingRuleList
from repro.baselines.xinsight import XInsightPairwise, PairwiseExplanation

__all__ = [
    "binarize_outcome",
    "Rule",
    "ExplanationTable",
    "ExplanationTableG",
    "InterpretableDecisionSets",
    "FallingRuleList",
    "XInsightPairwise",
    "PairwiseExplanation",
]
