"""Combinatorial optimisation: the ILP of Figure 5, its LP relaxation, rounding, and greedy."""

from repro.optimize.ilp import CoverageILP, Selection
from repro.optimize.lp import solve_lp_relaxation, LPSolution
from repro.optimize.rounding import randomized_rounding
from repro.optimize.exact import solve_exact
from repro.optimize.greedy import greedy_selection

__all__ = [
    "CoverageILP",
    "Selection",
    "solve_lp_relaxation",
    "LPSolution",
    "randomized_rounding",
    "solve_exact",
    "greedy_selection",
]
