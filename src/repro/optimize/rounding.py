"""Randomized rounding of the LP relaxation (Appendix A, Proposition A.1).

The procedure interprets ``g_j / k`` as a probability distribution over the
candidate patterns and draws ``k`` patterns independently, which yields a
``(1 - 1/e)`` approximation to the coverage constraint and a ``1/k`` fraction of
the optimal objective in expectation.  As in the paper's implementation, we
repeat the draw a few times and keep the best feasible draw found.
"""

from __future__ import annotations

import numpy as np

from repro.optimize.ilp import CoverageILP, Selection
from repro.optimize.lp import LPSolution, solve_lp_relaxation


def randomized_rounding(problem: CoverageILP, lp_solution: LPSolution | None = None,
                        n_draws: int = 32, seed: int = 0) -> Selection | None:
    """Round the LP relaxation to an integral selection of at most ``k`` patterns.

    Returns ``None`` when the LP itself is infeasible (then the ILP is too).
    Among the repeated draws, a feasible selection with the highest objective is
    preferred; if no draw satisfies the coverage constraint, the draw covering
    the most groups is returned (marked infeasible in the result).
    """
    if lp_solution is None:
        lp_solution = solve_lp_relaxation(problem)
    if not lp_solution.feasible:
        return None
    if problem.n_patterns == 0 or problem.k == 0:
        empty = problem.selection(())
        return empty if empty.feasible else None

    rng = np.random.default_rng(seed)
    raw = np.clip(lp_solution.pattern_values, 0.0, None)
    probabilities = raw / problem.k
    leftover = max(0.0, 1.0 - probabilities.sum())
    # Distribute any remaining probability mass uniformly so that we always
    # draw k patterns even when the LP uses fewer than k fractional units.
    probabilities = probabilities + leftover / problem.n_patterns
    probabilities = probabilities / probabilities.sum()

    best_feasible: Selection | None = None
    best_any: Selection | None = None
    for _ in range(n_draws):
        drawn = rng.choice(problem.n_patterns, size=problem.k, replace=True,
                           p=probabilities)
        selection = problem.selection(_dedupe_conflicting(problem, drawn))
        if best_any is None or _rank(selection) > _rank(best_any):
            best_any = selection
        if selection.feasible and (best_feasible is None
                                   or selection.objective > best_feasible.objective):
            best_feasible = selection
    return best_feasible if best_feasible is not None else best_any


def _dedupe_conflicting(problem: CoverageILP, drawn) -> list[int]:
    """Drop duplicate patterns and patterns whose covered-group set was already taken.

    This enforces the incomparability constraint (Definition 4.5 item 3) on the
    sampled selection while keeping the highest-weight representative.
    """
    order = sorted(set(int(j) for j in drawn), key=lambda j: -problem.weights[j])
    seen_coverages: set[frozenset] = set()
    kept = []
    for j in order:
        coverage = problem.coverage[j]
        if coverage in seen_coverages:
            continue
        seen_coverages.add(coverage)
        kept.append(j)
    return kept


def _rank(selection: Selection) -> tuple:
    return (len(selection.covered_groups), selection.objective)
