"""Exact solver for the coverage ILP (used by the Brute-Force baseline).

For the candidate-set sizes produced by the mining stages (tens of patterns) a
branch-and-bound over pattern subsets is fast; an optional exhaustive
enumeration is also provided for testing the optimiser itself.
"""

from __future__ import annotations

from itertools import combinations

from repro.optimize.ilp import CoverageILP, Selection


def solve_exact(problem: CoverageILP, method: str = "branch_and_bound") -> Selection | None:
    """Return an optimal feasible selection, or ``None`` when none exists."""
    if method == "enumerate":
        return _enumerate(problem)
    if method == "branch_and_bound":
        return _branch_and_bound(problem)
    raise ValueError(f"unknown exact method {method!r}")


def _enumerate(problem: CoverageILP) -> Selection | None:
    best: Selection | None = None
    indices = range(problem.n_patterns)
    for size in range(0, problem.k + 1):
        for subset in combinations(indices, size):
            selection = problem.selection(subset)
            if not selection.feasible:
                continue
            if best is None or selection.objective > best.objective:
                best = selection
    return best


def _branch_and_bound(problem: CoverageILP) -> Selection | None:
    # Order candidates by decreasing weight so the greedy upper bound is tight.
    order = sorted(range(problem.n_patterns), key=lambda j: -problem.weights[j])
    weights = [problem.weights[j] for j in order]
    suffix_best: list[list[float]] = _suffix_top_weights(weights, problem.k)

    best: dict = {"selection": None, "objective": float("-inf")}

    def bound(position: int, current_objective: float, slots_left: int) -> float:
        return current_objective + sum(suffix_best[position][:slots_left])

    def recurse(position: int, chosen: list[int], covered: set, objective: float) -> None:
        slots_left = problem.k - len(chosen)
        if len(covered) >= problem.required_groups and \
                objective > best["objective"]:
            selection = problem.selection(tuple(order[j] for j in chosen))
            if selection.feasible:
                best["selection"] = selection
                best["objective"] = selection.objective
        if position >= len(order) or slots_left == 0:
            return
        if bound(position, objective, slots_left) <= best["objective"]:
            return
        remaining_coverage = set()
        for j in range(position, len(order)):
            remaining_coverage |= problem.coverage[order[j]]
        if len(covered | remaining_coverage) < problem.required_groups:
            return
        # Branch 1: take the pattern at `position` (if its coverage set is new).
        candidate = order[position]
        coverage = problem.coverage[candidate]
        taken_coverages = {problem.coverage[order[j]] for j in chosen}
        if coverage not in taken_coverages:
            recurse(position + 1, chosen + [position],
                    covered | coverage, objective + problem.weights[candidate])
        # Branch 2: skip it.
        recurse(position + 1, chosen, covered, objective)

    recurse(0, [], set(), 0.0)
    return best["selection"]


def _suffix_top_weights(weights: list[float], k: int) -> list[list[float]]:
    """``suffix_best[i]`` = the k largest weights among ``weights[i:]``, descending."""
    suffix: list[list[float]] = [[] for _ in range(len(weights) + 1)]
    for i in range(len(weights) - 1, -1, -1):
        merged = sorted(suffix[i + 1] + [max(weights[i], 0.0)], reverse=True)
        suffix[i] = merged[:k]
    return suffix
