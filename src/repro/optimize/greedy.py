"""Greedy final-step selection used by the Greedy-Last-Step variant (Section 6).

The strategy iteratively selects the explanation pattern with the best
combination of explainability and marginal coverage gain, without any guarantee
of satisfying the coverage constraint.
"""

from __future__ import annotations

from repro.optimize.ilp import CoverageILP, Selection


def greedy_selection(problem: CoverageILP, coverage_weight: float = 1.0) -> Selection:
    """Greedy weighted max-cover selection of at most ``k`` patterns.

    Each step picks the unused pattern maximising
    ``weight + coverage_weight * marginal_coverage`` (after normalising both
    terms to comparable scales), skipping patterns whose covered-group set was
    already selected (incomparability constraint).
    """
    chosen: list[int] = []
    covered: set = set()
    taken_coverages: set[frozenset] = set()
    max_weight = max([abs(w) for w in problem.weights], default=1.0) or 1.0
    m = max(problem.m, 1)

    while len(chosen) < problem.k:
        best_j = None
        best_score = float("-inf")
        for j in range(problem.n_patterns):
            if j in chosen:
                continue
            coverage = problem.coverage[j]
            if coverage in taken_coverages:
                continue
            marginal = len(coverage - covered)
            score = problem.weights[j] / max_weight + coverage_weight * marginal / m
            if score > best_score:
                best_score = score
                best_j = j
        if best_j is None:
            break
        chosen.append(best_j)
        covered |= problem.coverage[best_j]
        taken_coverages.add(problem.coverage[best_j])
    return problem.selection(chosen)
