"""Greedy final-step selection used by the Greedy-Last-Step variant (Section 6).

The strategy iteratively selects the explanation pattern with the best
combination of explainability and marginal coverage gain, without any guarantee
of satisfying the coverage constraint.

The marginal-coverage computation is vectorized: pattern coverage is an
``(n_patterns, m)`` boolean incidence matrix over the view's group ids (the
same dense ids the dataframe layer's :class:`~repro.dataframe.GroupByIndex`
factorizes), and every round scores all candidates with one matrix-vector
product instead of a per-group Python set difference.  When the problem
carries ``group_weights`` (e.g. group sizes from the view's index), marginal
coverage is weighted group mass; with uniform weights the scores — and
therefore the selection — are identical to the historical set-based loop.
"""

from __future__ import annotations

import numpy as np

from repro.optimize.ilp import CoverageILP, Selection


def greedy_selection(problem: CoverageILP, coverage_weight: float = 1.0) -> Selection:
    """Greedy weighted max-cover selection of at most ``k`` patterns.

    Each step picks the unused pattern maximising
    ``weight + coverage_weight * marginal_coverage`` (after normalising both
    terms to comparable scales), skipping patterns whose covered-group set was
    already selected (incomparability constraint).  Ties go to the lowest
    pattern index, matching the original sequential scan.
    """
    n = problem.n_patterns
    weights = np.asarray(problem.weights, dtype=np.float64)
    max_weight = float(np.abs(weights).max()) if n else 1.0
    max_weight = max_weight or 1.0
    incidence = problem.coverage_matrix()
    group_weights = problem.group_weight_array()
    total_mass = float(group_weights.sum())
    # With uniform weights this is max(m, 1), reproducing the historical
    # ``marginal / m`` normalisation exactly.
    denominator = total_mass if total_mass > 0 else 1.0

    chosen: list[int] = []
    eligible = np.ones(n, dtype=bool)
    uncovered = np.ones(problem.m, dtype=bool)
    taken_coverages: set[frozenset] = set()

    while len(chosen) < problem.k and eligible.any():
        gains = incidence @ (group_weights * uncovered)
        scores = weights / max_weight + coverage_weight * gains / denominator
        scores[~eligible] = -np.inf
        best_j = int(np.argmax(scores))  # first maximum, like the old scan
        if not np.isfinite(scores[best_j]):
            break
        chosen.append(best_j)
        eligible[best_j] = False
        uncovered &= ~incidence[best_j]
        taken_coverages.add(problem.coverage[best_j])
        # Incomparability: patterns repeating an already-taken coverage set
        # can never be selected any more.
        for j in np.nonzero(eligible)[0]:
            if problem.coverage[j] in taken_coverages:
                eligible[j] = False
    return problem.selection(chosen)
