"""LP relaxation of the coverage ILP, solved with scipy's HiGHS backend."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.optimize.ilp import CoverageILP


@dataclass(frozen=True)
class LPSolution:
    """Fractional solution of the LP relaxation."""

    pattern_values: np.ndarray  # g_j in [0, 1]
    group_values: np.ndarray    # t_i in [0, 1]
    objective: float
    feasible: bool


def solve_lp_relaxation(problem: CoverageILP) -> LPSolution:
    """Solve the LP relaxation of Figure 5.

    Infeasibility of the relaxation proves infeasibility of the ILP
    (Proposition A.1 case 1).
    """
    if problem.n_patterns == 0:
        feasible = problem.required_groups == 0
        return LPSolution(np.zeros(0), np.zeros(problem.m), 0.0, feasible)
    arrays = problem.lp_arrays()
    result = linprog(
        c=arrays["c"],
        A_ub=arrays["A_ub"],
        b_ub=arrays["b_ub"],
        bounds=arrays["bounds"],
        method="highs",
    )
    if not result.success:
        return LPSolution(
            pattern_values=np.zeros(problem.n_patterns),
            group_values=np.zeros(problem.m),
            objective=0.0,
            feasible=False,
        )
    l = arrays["n_patterns"]
    values = np.clip(result.x, 0.0, 1.0)
    return LPSolution(
        pattern_values=values[:l],
        group_values=values[l:],
        objective=float(-result.fun),
        feasible=True,
    )
