"""The integer linear program of Figure 5.

Variables ``g_j`` select explanation patterns and ``t_i`` mark covered groups:

    max  sum_j g_j * w_j
    s.t. sum_j g_j <= k
         t_i <= sum_{j : group i covered by pattern j} g_j     for all i
         sum_i t_i >= theta * m
         t_i, g_j in {0, 1}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class Selection:
    """The result of solving the selection problem: chosen pattern indices."""

    chosen: tuple[int, ...]
    objective: float
    covered_groups: frozenset
    feasible: bool

    @property
    def size(self) -> int:
        return len(self.chosen)


class CoverageILP:
    """The explanation-pattern selection problem (Definition 4.5 / Figure 5).

    Parameters
    ----------
    weights:
        Weight ``w_j`` of each candidate explanation pattern (its explainability,
        or |CATE+| + |CATE-| when both directions are used).
    coverage:
        For each candidate, the set of view groups it covers.
    groups:
        All groups of the view (the universe to be covered).
    k:
        Size constraint (maximum number of selected patterns).
    theta:
        Coverage constraint (fraction of groups that must be covered).
    group_weights:
        Optional per-group importance weights (``{group: weight}``), e.g. the
        group sizes from the view's :class:`~repro.dataframe.GroupByIndex`.
        Used by the greedy selector to score marginal coverage by weighted
        group mass instead of group count; groups without an entry weigh 1.
        The ILP/LP feasibility constraints are unchanged (they always count
        groups, per Definition 4.5).
    """

    def __init__(self, weights: Sequence[float],
                 coverage: Sequence[frozenset],
                 groups: Sequence[Hashable], k: int, theta: float,
                 group_weights: Mapping[Hashable, float] | None = None):
        if len(weights) != len(coverage):
            raise ValueError("weights and coverage must have the same length")
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be in [0, 1]")
        if k < 0:
            raise ValueError("k must be non-negative")
        self.weights = [float(w) for w in weights]
        self.groups = list(dict.fromkeys(groups))
        universe = set(self.groups)
        self.coverage = [frozenset(c) & universe for c in coverage]
        self.k = int(k)
        self.theta = float(theta)
        self.group_weights = None if group_weights is None else {
            g: float(group_weights.get(g, 1.0)) for g in self.groups}

    # ------------------------------------------------------------------ derived quantities

    @property
    def n_patterns(self) -> int:
        return len(self.weights)

    @property
    def m(self) -> int:
        return len(self.groups)

    def group_weight_array(self) -> np.ndarray:
        """Per-group weights aligned with ``self.groups`` (ones when unweighted)."""
        if self.group_weights is None:
            return np.ones(self.m, dtype=np.float64)
        return np.asarray([self.group_weights[g] for g in self.groups],
                          dtype=np.float64)

    def coverage_matrix(self) -> np.ndarray:
        """Boolean ``(n_patterns, m)`` incidence matrix of pattern coverage."""
        matrix = np.zeros((self.n_patterns, self.m), dtype=bool)
        position = {g: i for i, g in enumerate(self.groups)}
        for j, covered in enumerate(self.coverage):
            for g in covered:
                matrix[j, position[g]] = True
        return matrix

    @property
    def required_groups(self) -> int:
        """Minimum number of groups that must be covered (``ceil(theta * m)``)."""
        return int(np.ceil(self.theta * self.m - 1e-9))

    def covered_by(self, chosen: Sequence[int]) -> frozenset:
        covered: set = set()
        for j in chosen:
            covered |= self.coverage[j]
        return frozenset(covered)

    def objective_of(self, chosen: Sequence[int]) -> float:
        return float(sum(self.weights[j] for j in chosen))

    def is_feasible(self, chosen: Sequence[int]) -> bool:
        """Size + coverage + incomparability check for a concrete selection."""
        if len(chosen) > self.k:
            return False
        if len(self.covered_by(chosen)) < self.required_groups:
            return False
        seen_coverages = [self.coverage[j] for j in chosen]
        return len(set(seen_coverages)) == len(seen_coverages)

    def selection(self, chosen: Sequence[int]) -> Selection:
        chosen = tuple(sorted(dict.fromkeys(chosen)))
        return Selection(
            chosen=chosen,
            objective=self.objective_of(chosen),
            covered_groups=self.covered_by(chosen),
            feasible=self.is_feasible(chosen),
        )

    # ------------------------------------------------------------------ LP matrices

    def lp_arrays(self) -> dict:
        """Build the arrays of the LP relaxation for ``scipy.optimize.linprog``.

        Variable vector is ``[g_1..g_l, t_1..t_m]``; linprog minimises, so the
        objective is negated.
        """
        l, m = self.n_patterns, self.m
        n_vars = l + m
        c = np.zeros(n_vars)
        c[:l] = -np.asarray(self.weights)

        rows = []
        rhs = []
        # (1) sum_j g_j <= k
        size_row = np.zeros(n_vars)
        size_row[:l] = 1.0
        rows.append(size_row)
        rhs.append(float(self.k))
        # (2) t_i - sum_{j covers i} g_j <= 0
        group_index = {g: i for i, g in enumerate(self.groups)}
        for g, i in group_index.items():
            row = np.zeros(n_vars)
            row[l + i] = 1.0
            for j, covered in enumerate(self.coverage):
                if g in covered:
                    row[j] -= 1.0
            rows.append(row)
            rhs.append(0.0)
        # (3) -sum_i t_i <= -theta * m
        coverage_row = np.zeros(n_vars)
        coverage_row[l:] = -1.0
        rows.append(coverage_row)
        rhs.append(-float(self.required_groups))

        return {
            "c": c,
            "A_ub": np.vstack(rows),
            "b_ub": np.asarray(rhs),
            "bounds": [(0.0, 1.0)] * n_vars,
            "n_patterns": l,
            "n_groups": m,
        }
