"""Command-line interface for CauSumX.

Usage examples::

    python -m repro list-datasets
    python -m repro explain --dataset stackoverflow --n 2000 --k 3 --theta 1.0
    python -m repro explain --csv data.csv \
        --query "SELECT Region, AVG(Revenue) FROM t GROUP BY Region" --dag dag.json
    python -m repro case-study figure7_accidents --n 3000
    python -m repro serve --dataset stackoverflow --n 2000     # JSON-lines loop
    python -m repro batch --dataset adult --queries q.sql --out summaries.json
    python -m repro store init ./causumx-store
    python -m repro store import ./causumx-store --dataset stackoverflow \
        --n 20000 --shard-rows 5000
    python -m repro store ls ./causumx-store
    python -m repro serve --store ./causumx-store              # warm restarts
    python -m repro lint src --format json                     # invariant lint
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.obs.cli import add_obs_arguments, run_obs
from repro.core import CauSumX, CauSumXConfig, render_summary
from repro.dataframe import read_csv
from repro.datasets import list_datasets, load_dataset
from repro.discovery import no_dag, pc_algorithm
from repro.experiments.case_studies import CASE_STUDIES, run_case_study
from repro.graph import CausalDAG
from repro.service import ExplanationEngine, read_queries, run_batch, serve_loop
from repro.sql import parse_query


def _add_source_arguments(parser: argparse.ArgumentParser,
                          query_help: str, required: bool = True) -> None:
    """The table/DAG/query source options shared by explain, serve, and batch."""
    source = parser.add_mutually_exclusive_group(required=required)
    source.add_argument("--dataset", choices=sorted(list_datasets()),
                        help="built-in dataset generator to use")
    source.add_argument("--csv", type=Path, help="CSV file containing the relation")
    parser.add_argument("--query", help=query_help)
    parser.add_argument("--dag", type=Path,
                        help="causal DAG as JSON ({child: [parents...]}); "
                             "default: the dataset's DAG, or PC discovery for CSV input")
    parser.add_argument("--n", type=int, default=2000,
                        help="number of tuples to generate for built-in datasets")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=5,
                        help="maximum number of explanation patterns")
    parser.add_argument("--theta", type=float, default=0.75, help="coverage constraint")
    parser.add_argument("--apriori-threshold", type=float, default=0.1)
    parser.add_argument("--no-discovery", action="store_true",
                        help="with --csv and no --dag, use the No-DAG baseline instead of PC")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CauSumX: summarized causal explanations for aggregate views")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list the built-in dataset generators")

    explain = sub.add_parser("explain", help="explain an aggregate view")
    _add_source_arguments(explain, "group-by-average SQL query "
                                   "(default: the dataset's representative query)")
    explain.add_argument("--outcome-label", default="the outcome",
                         help="noun used in the rendered explanation text")

    serve = sub.add_parser(
        "serve", help="serve explanations over a JSON-lines stdin/stdout loop")
    _add_source_arguments(serve, "default query (informational; requests carry "
                                 "their own queries)", required=False)
    serve.add_argument("--store", type=Path, default=None,
                       help="serve every dataset of an on-disk store "
                            "(memory-mapped tables, durable appends, warm "
                            "restart from the persisted summary cache; "
                            "state is snapshotted back on quit)")
    serve.add_argument("--store-dataset", default=None,
                       help="with --store: default dataset for requests that "
                            "don't name one (default: the only/first dataset)")
    serve.add_argument("--n-jobs", type=int, default=1,
                       help="worker threads for treatment mining inside one query")
    serve.add_argument("--max-workers", type=int, default=4,
                       help="thread-pool width for batched requests")
    serve.add_argument("--summary-cache-size", type=int, default=256,
                       help="LRU capacity of the summary cache")
    serve.add_argument("--memory-budget-mb", type=float, default=None,
                       help="byte cap for cached summaries (shared LRU "
                            "eviction across datasets)")
    serve.add_argument("--http", metavar="HOST:PORT", default=None,
                       help="serve over HTTP instead of the stdin loop "
                            "(POST /v1/<op>, GET /healthz, GET /metrics; "
                            "multi-tenant via the X-Repro-Tenant header)")
    serve.add_argument("--http-max-inflight", type=int, default=8,
                       help="requests executing concurrently (HTTP mode)")
    serve.add_argument("--http-max-queue", type=int, default=64,
                       help="requests waiting for a slot before 429 shedding")
    serve.add_argument("--http-tenant-inflight", type=int, default=None,
                       help="per-tenant cap on requests inside the server")
    serve.add_argument("--http-deadline-ms", type=float, default=None,
                       help="default per-request deadline (504 on expiry); "
                            "X-Repro-Deadline-Ms overrides per request")
    serve.add_argument("--http-tenant-budget-mb", type=float, default=None,
                       help="isolated summary-cache byte budget per tenant")
    serve.add_argument("--http-drain-timeout", type=float, default=10.0,
                       help="seconds to let in-flight requests finish on "
                            "SIGTERM before snapshotting and closing")

    batch = sub.add_parser(
        "batch", help="answer a file of queries and emit JSON summaries")
    _add_source_arguments(batch, "unused for batch (queries come from --queries)")
    batch.add_argument("--queries", type=Path, required=True,
                       help="file of queries: one SQL per line (# comments) "
                            "or a JSON array of strings")
    batch.add_argument("--out", type=Path, default=None,
                       help="output JSON file (default: stdout)")
    batch.add_argument("--n-jobs", type=int, default=1,
                       help="worker threads for treatment mining inside one query")
    batch.add_argument("--max-workers", type=int, default=4,
                       help="thread-pool width across distinct queries")

    plan = sub.add_parser(
        "plan", help="show how a query would execute (chosen conjunct order, "
                     "estimated vs actual selectivities, shard skips) "
                     "without mining any treatment")
    _add_source_arguments(plan, "group-by-average SQL query "
                                "(default: the dataset's representative query)",
                          required=False)
    plan.add_argument("--store", type=Path, default=None,
                      help="plan against a dataset of an on-disk store")
    plan.add_argument("--store-dataset", default=None,
                      help="with --store: dataset to plan against "
                           "(default: the only/first dataset)")

    lint = sub.add_parser(
        "lint", help="run the project-invariant static analyzer "
                     "(see repro.analysis)")
    add_lint_arguments(lint)

    obs = sub.add_parser(
        "obs", help="aggregate a store's persisted query telemetry "
                    "(see repro.obs)")
    add_obs_arguments(obs)

    case = sub.add_parser("case-study", help="run one of the paper's case studies")
    case.add_argument("name", choices=sorted(CASE_STUDIES),
                      help="case-study identifier (paper figure)")
    case.add_argument("--n", type=int, default=None, help="dataset size override")
    case.add_argument("--seed", type=int, default=0)

    store = sub.add_parser(
        "store", help="manage on-disk dataset stores (sharded columnar format)")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_init = store_sub.add_parser("init", help="create an empty store")
    store_init.add_argument("root", type=Path, help="store directory")

    store_import = store_sub.add_parser(
        "import", help="import a dataset (generator or CSV) into a store")
    store_import.add_argument("root", type=Path, help="store directory")
    _add_source_arguments(store_import,
                          "representative query (informational)")
    store_import.add_argument("--name", default=None,
                              help="dataset name inside the store "
                                   "(default: source name)")
    store_import.add_argument("--shard-rows", type=int, default=None,
                              help="rows per shard (default: one shard; "
                                   "smaller shards enable zone-map pruning)")

    store_ls = store_sub.add_parser("ls", help="list a store's datasets")
    store_ls.add_argument("root", type=Path, help="store directory")

    store_compact = store_sub.add_parser(
        "compact", help="merge undersized shards (and optionally re-cluster "
                        "by a sort key), rebuilding zone maps, statistics, "
                        "and fingerprints")
    store_compact.add_argument("root", type=Path, help="store directory")
    store_compact.add_argument("name", help="dataset to compact")
    store_compact.add_argument("--shard-rows", type=int, default=None,
                               help="target rows per rewritten shard "
                                    "(default: the largest current shard)")
    store_compact.add_argument("--cluster-by", default=None,
                               help="stably re-sort the whole dataset by "
                                    "this attribute while rewriting")
    store_compact.add_argument("--min-rows", type=int, default=None,
                               help="shards smaller than this are merged "
                                    "(default: the target shard size)")

    store_index = store_sub.add_parser(
        "index", help="manage committed per-shard predicate bitmap indexes "
                      "(the adaptive planner promotes hot predicates to "
                      "these automatically; this is the manual path)")
    index_sub = store_index.add_subparsers(dest="index_command", required=True)
    index_ls = index_sub.add_parser(
        "ls", help="list a dataset's committed predicate indexes")
    index_ls.add_argument("root", type=Path, help="store directory")
    index_ls.add_argument("name", help="dataset name")
    index_promote = index_sub.add_parser(
        "promote", help="materialize one predicate's bitmap index")
    index_promote.add_argument("root", type=Path, help="store directory")
    index_promote.add_argument("name", help="dataset name")
    index_promote.add_argument(
        "predicate", help="predicate text, e.g. \"state == 'CA'\" or "
                          "\"age <= 40\" (values parse as Python literals; "
                          "bare words are strings)")
    index_drop = index_sub.add_parser(
        "drop", help="drop one committed predicate index by its key")
    index_drop.add_argument("root", type=Path, help="store directory")
    index_drop.add_argument("name", help="dataset name")
    index_drop.add_argument("key", help="index key as shown by `index ls`")
    return parser


def _cmd_list_datasets() -> int:
    for name in list_datasets():
        print(name)
    return 0


def _load_source(args: argparse.Namespace, require_query: bool,
                 machine_output: bool = False):
    """Resolve (table, dag, query, grouping_attrs, treatment_attrs, config, name).

    Returns ``None`` after printing an error when the source is unusable.
    ``machine_output`` sends informational notices to stderr so commands whose
    stdout is a machine-readable protocol (serve/batch) stay parseable.
    """
    config = CauSumXConfig(k=args.k, theta=args.theta,
                           apriori_threshold=args.apriori_threshold,
                           sample_size=None,
                           n_jobs=getattr(args, "n_jobs", 1))
    grouping_attributes = treatment_attributes = None
    if args.dataset:
        bundle = load_dataset(args.dataset, n=args.n, seed=args.seed)
        table, dag, query = bundle.table, bundle.dag, bundle.query
        grouping_attributes = bundle.grouping_attributes
        treatment_attributes = bundle.treatment_attributes
        name = args.dataset
        if args.dataset == "german":
            config = config.with_overrides(include_singleton_groups=True)
    else:
        table = read_csv(args.csv)
        if require_query and not args.query:
            print("error: --query is required with --csv", file=sys.stderr)
            return None
        query = None
        dag = None
        name = args.csv.stem
    if args.query:
        query = parse_query(args.query)
    if args.dag:
        with args.dag.open() as handle:
            dag = CausalDAG.from_dict(json.load(handle))
    if dag is None:
        if args.no_discovery and query is None:
            print("error: --no-discovery needs --query (or --dag) to know "
                  "the outcome attribute", file=sys.stderr)
            return None
        dag = no_dag(table, query.average) if args.no_discovery \
            else pc_algorithm(table)
        source = "No-DAG baseline" if args.no_discovery else "PC causal discovery"
        print(f"[no causal DAG supplied — using {source}: {dag.n_edges} edges]\n",
              file=sys.stderr if machine_output else sys.stdout)
    return table, dag, query, grouping_attributes, treatment_attributes, config, name


def _cmd_explain(args: argparse.Namespace) -> int:
    source = _load_source(args, require_query=True)
    if source is None:
        return 2
    table, dag, query, grouping_attributes, treatment_attributes, config, _ = source
    summary = CauSumX(table, dag, config).explain(
        query, grouping_attributes=grouping_attributes,
        treatment_attributes=treatment_attributes)
    print(render_summary(summary, outcome=args.outcome_label))
    return 0 if summary.feasible else 1


def _make_engine(args: argparse.Namespace):
    """Build an engine with one registered dataset from the CLI source options."""
    source = _load_source(args, require_query=False, machine_output=True)
    if source is None:
        return None
    table, dag, _, grouping_attributes, treatment_attributes, config, name = source
    engine = ExplanationEngine(
        max_workers=args.max_workers,
        summary_cache_size=getattr(args, "summary_cache_size", 256),
        memory_budget=_memory_budget(args))
    engine.register_dataset(name, table, dag=dag, config=config,
                            grouping_attributes=grouping_attributes,
                            treatment_attributes=treatment_attributes)
    return engine, name


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.store is not None:
        if args.dataset or args.csv:
            print("error: --store cannot be combined with --dataset/--csv",
                  file=sys.stderr)
            return 2
        if args.http:
            return _serve_http(args)
        return _serve_store(args)
    if not args.dataset and not args.csv:
        print("error: one of --dataset, --csv, or --store is required",
              file=sys.stderr)
        return 2
    if args.http:
        return _serve_http(args)
    made = _make_engine(args)
    if made is None:
        return 2
    engine, name = made
    print(f"[serving dataset {name!r}; one JSON request per line, "
          '{"op": "quit"} to stop]', file=sys.stderr)
    serve_loop(engine, name, sys.stdin, sys.stdout)
    return 0


def _http_registry(args: argparse.Namespace):
    """A TenantRegistry from the serve command's source options, or None."""
    from repro.net import TenantRegistry

    budget_mb = args.http_tenant_budget_mb
    tenant_budget = int(budget_mb * 2**20) if budget_mb else None
    if args.store is not None:
        from repro.storage import DatasetStore, StorageError

        try:
            store = DatasetStore(args.store)
        except StorageError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
        overrides = {"n_jobs": args.n_jobs} if args.n_jobs != 1 else None
        try:
            return TenantRegistry.from_store(
                store, default_dataset=args.store_dataset,
                tenant_budget_bytes=tenant_budget,
                config_overrides=overrides, max_workers=args.max_workers,
                summary_cache_size=args.summary_cache_size)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
    source = _load_source(args, require_query=False, machine_output=True)
    if source is None:
        return None
    table, dag, _, grouping_attributes, treatment_attributes, config, name = source
    return TenantRegistry.single_dataset(
        name, table, dag=dag, config=config,
        grouping_attributes=grouping_attributes,
        treatment_attributes=treatment_attributes,
        tenant_budget_bytes=tenant_budget, max_workers=args.max_workers,
        summary_cache_size=args.summary_cache_size)


def _serve_http(args: argparse.Namespace) -> int:
    """Serve over HTTP until SIGTERM/SIGINT, then drain and snapshot."""
    import signal
    import threading

    from repro.net import create_server

    host, _, port_text = args.http.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: --http expects HOST:PORT, got {args.http!r}",
              file=sys.stderr)
        return 2
    registry = _http_registry(args)
    if registry is None:
        return 2
    deadline_ms = args.http_deadline_ms
    server = create_server(
        registry, host, port,
        max_inflight=args.http_max_inflight,
        max_queue=args.http_max_queue,
        tenant_inflight=args.http_tenant_inflight,
        default_deadline=deadline_ms / 1000.0 if deadline_ms else None)

    def request_stop(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    bound_host, bound_port = server.server_address[:2]
    print(f"[serving HTTP on {bound_host}:{bound_port}; default dataset "
          f"{registry.default_dataset!r}; SIGTERM drains and snapshots]",
          file=sys.stderr)
    try:
        server.serve_forever()
    finally:
        result = server.graceful_shutdown(args.http_drain_timeout)
        persisted = sum(1 for s in result["snapshots"].values()
                        if s is not None)
        print(f"[drained={result['drained']}; {persisted} tenant "
              f"snapshot(s) persisted]", file=sys.stderr)
    return 0


def _memory_budget(args: argparse.Namespace):
    """A MemoryBudget from --memory-budget-mb, or None when unset."""
    budget_mb = getattr(args, "memory_budget_mb", None)
    if not budget_mb:
        return None
    from repro.service import MemoryBudget

    return MemoryBudget(int(budget_mb * 2**20))


def _serve_store(args: argparse.Namespace) -> int:
    """Serve every dataset of an on-disk store, with warm-restart state."""
    from repro.storage import DatasetStore, StorageError

    try:
        store = DatasetStore(args.store)
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    names = store.dataset_names()
    if not names:
        print(f"error: store {args.store} holds no datasets "
              "(use `repro store import`)", file=sys.stderr)
        return 2
    default = args.store_dataset or names[0]
    if default not in names:
        print(f"error: no dataset {default!r} in store (have: {names})",
              file=sys.stderr)
        return 2
    overrides = {"n_jobs": args.n_jobs} if args.n_jobs != 1 else None
    engine = ExplanationEngine.from_store(
        store, config_overrides=overrides, max_workers=args.max_workers,
        summary_cache_size=args.summary_cache_size,
        memory_budget=_memory_budget(args))
    restored = engine.stats().get("restored_summaries", 0)
    print(f"[serving store {str(args.store)!r}: datasets {names}, default "
          f"{default!r}, {restored} summaries restored; one JSON request per "
          'line, {"op": "quit"} to stop]', file=sys.stderr)
    serve_loop(engine, default, sys.stdin, sys.stdout)
    snapshot = engine.snapshot()
    print(f"[snapshot: {snapshot['summaries']} summaries persisted]",
          file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.storage import DatasetStore, StorageError

    if args.store_command == "init":
        DatasetStore.init(args.root)
        print(f"initialized store at {args.root}")
        return 0
    if args.store_command == "ls":
        try:
            store = DatasetStore(args.root)
        except StorageError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        registry = store.registry()
        for name in store.dataset_names():
            stats = store.dataset(name).stats()
            registered = "registered" if name in registry else "data only"
            print(f"{name}  rows={stats['rows']}  shards={stats['shards']}  "
                  f"version={stats['version']}  bytes={stats['bytes']}  "
                  f"[{registered}]")
        return 0
    if args.store_command == "index":
        return _cmd_store_index(args)
    if args.store_command == "compact":
        try:
            store = DatasetStore(args.root)
            result = store.compact(args.name, shard_rows=args.shard_rows,
                                   cluster_by=args.cluster_by,
                                   min_rows=args.min_rows)
        except StorageError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        clustered = f"  clustered by {result['cluster_by']}" \
            if result["cluster_by"] else ""
        partials = f"  partial_groups={result['partial_groups']}" \
            if result.get("partial_groups") else ""
        print(f"compacted {args.name!r}: shards "
              f"{result['shards_before']} -> {result['shards_after']} "
              f"({result['rewritten']} rewritten){clustered}{partials}  "
              f"version={result['version']}")
        return 0
    # import
    source = _load_source(args, require_query=False, machine_output=True)
    if source is None:
        return 2
    table, dag, _, grouping_attributes, treatment_attributes, config, name = source
    name = args.name or name
    try:
        store = DatasetStore.init(args.root)
        store.import_table(name, table, shard_rows=args.shard_rows)
        store.register_entry(name, dag=dag, config=config,
                             grouping_attributes=grouping_attributes,
                             treatment_attributes=treatment_attributes)
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = store.dataset(name).stats()
    print(f"imported {name!r}: rows={stats['rows']} shards={stats['shards']} "
          f"bytes={stats['bytes']} -> {args.root}")
    return 0


def _cmd_store_index(args: argparse.Namespace) -> int:
    """``repro store index ls|promote|drop`` — committed bitmap indexes."""
    from repro.adapt import predicate_from_repr
    from repro.storage import DatasetStore, StorageError

    try:
        store = DatasetStore(args.root)
        dataset = store.dataset(args.name)
        if args.index_command == "ls":
            stats = dataset.index_stats()
            for key, entry in sorted(stats["indexes"].items()):
                print(f"{key}  shards={entry['shards']}/"
                      f"{stats['shards_total']}  rows={entry['n_rows']}  "
                      f"matches={entry['matches']}  bytes={entry['nbytes']}")
            print(f"{len(stats['indexes'])} index(es), "
                  f"{stats['total_nbytes']} bytes, "
                  f"version={stats['version']}")
            return 0
        if args.index_command == "promote":
            predicate = predicate_from_repr(args.predicate, strict=False)
            if predicate is None:
                print(f"error: cannot parse predicate {args.predicate!r} "
                      f"(expected e.g. \"state == 'CA'\")", file=sys.stderr)
                return 2
            result = dataset.promote_index(predicate)
            print(f"promoted {result['key']}: shards={result['shards']} "
                  f"bytes={result['nbytes']} version={result['version']}")
            return 0
        # drop
        result = dataset.drop_index(args.key)
        print(f"dropped {result['key']}: shards={result['shards']} "
              f"version={result['version']}")
        return 0
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_plan(args: argparse.Namespace) -> int:
    """Print one query's chosen plan: estimated vs actual selectivities."""
    if args.store is not None:
        if args.dataset or args.csv:
            print("error: --store cannot be combined with --dataset/--csv",
                  file=sys.stderr)
            return 2
        if not args.query:
            print("error: --query is required with --store", file=sys.stderr)
            return 2
        from repro.storage import DatasetStore, StorageError

        try:
            store = DatasetStore(args.store)
        except StorageError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        names = store.dataset_names()
        if not names:
            print(f"error: store {args.store} holds no datasets",
                  file=sys.stderr)
            return 2
        name = args.store_dataset or names[0]
        if name not in names:
            print(f"error: no dataset {name!r} in store (have: {names})",
                  file=sys.stderr)
            return 2
        engine = ExplanationEngine.from_store(store, max_workers=1)
        query = args.query
    else:
        # Planning needs no causal DAG, so the table/query resolve directly
        # (no PC discovery run for --csv input, unlike `repro explain`).
        if args.dataset:
            bundle = load_dataset(args.dataset, n=args.n, seed=args.seed)
            table, query, name = bundle.table, bundle.query, args.dataset
        elif args.csv:
            table = read_csv(args.csv)
            query, name = None, args.csv.stem
        else:
            print("error: one of --dataset, --csv, or --store is required",
                  file=sys.stderr)
            return 2
        if args.query:
            query = parse_query(args.query)
        if query is None:
            print("error: --query is required with --csv", file=sys.stderr)
            return 2
        engine = ExplanationEngine(max_workers=1)
        engine.register_dataset(name, table)
    try:
        report = engine.explain_plan(name, query)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report["logical_plan"])
    print(f"\ndataset {report['dataset']!r} v{report['version']}  "
          f"fingerprint {report['fingerprint']}  "
          f"planner {'on' if report['planner_enabled'] else 'off (oracle)'}")
    scan = report["scan"]
    if scan is None:
        print("scan: no WHERE clause (or planner disabled) — full scan")
    else:
        order = "planner-reordered" if scan["reordered"] else "canonical order"
        print(f"scan ({order}):")
        for i, conjunct in enumerate(scan["conjuncts"], start=1):
            actual = conjunct["actual_selectivity"]
            print(f"  {i}. {conjunct['predicate']}  "
                  f"est={conjunct['estimated_selectivity']:.4f}  "
                  f"actual={'n/a' if actual is None else format(actual, '.4f')}  "
                  f"cost={conjunct['cost']:g}  "
                  f"candidates {conjunct['candidates_in']} -> "
                  f"{conjunct['candidates_out']}")
        shards = scan["shards"]
        if shards["total"]:
            print(f"shards: {shards['total']} total, "
                  f"{shards['zone_map_skipped']} zone-map skipped, "
                  f"{shards['stats_skipped']} stats skipped, "
                  f"{shards['scanned']} scanned")
    rows = report["rows"]
    print(f"rows: {rows['table']} -> {rows['filtered']}  "
          f"groups: {report['groups']}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    made = _make_engine(args)
    if made is None:
        return 2
    engine, name = made
    try:
        queries = read_queries(args.queries.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read --queries file: {exc}", file=sys.stderr)
        return 2
    if not queries:
        print("error: no queries found in --queries file", file=sys.stderr)
        return 2
    try:
        if args.out is None:
            run_batch(engine, name, queries, sys.stdout)
        else:
            with args.out.open("w") as handle:
                run_batch(engine, name, queries, handle)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    _, text = run_case_study(args.name, n=args.n, seed=args.seed)
    print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "lint":
        return run_lint(args)
    if args.command == "obs":
        return run_obs(args)
    return _cmd_case_study(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
