"""Command-line interface for CauSumX.

Usage examples::

    python -m repro list-datasets
    python -m repro explain --dataset stackoverflow --n 2000 --k 3 --theta 1.0
    python -m repro explain --csv data.csv \
        --query "SELECT Region, AVG(Revenue) FROM t GROUP BY Region" --dag dag.json
    python -m repro case-study figure7_accidents --n 3000
    python -m repro serve --dataset stackoverflow --n 2000     # JSON-lines loop
    python -m repro batch --dataset adult --queries q.sql --out summaries.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import CauSumX, CauSumXConfig, render_summary
from repro.dataframe import read_csv
from repro.datasets import list_datasets, load_dataset
from repro.discovery import no_dag, pc_algorithm
from repro.experiments.case_studies import CASE_STUDIES, run_case_study
from repro.graph import CausalDAG
from repro.service import ExplanationEngine, read_queries, run_batch, serve_loop
from repro.sql import parse_query


def _add_source_arguments(parser: argparse.ArgumentParser,
                          query_help: str) -> None:
    """The table/DAG/query source options shared by explain, serve, and batch."""
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=sorted(list_datasets()),
                        help="built-in dataset generator to use")
    source.add_argument("--csv", type=Path, help="CSV file containing the relation")
    parser.add_argument("--query", help=query_help)
    parser.add_argument("--dag", type=Path,
                        help="causal DAG as JSON ({child: [parents...]}); "
                             "default: the dataset's DAG, or PC discovery for CSV input")
    parser.add_argument("--n", type=int, default=2000,
                        help="number of tuples to generate for built-in datasets")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=5,
                        help="maximum number of explanation patterns")
    parser.add_argument("--theta", type=float, default=0.75, help="coverage constraint")
    parser.add_argument("--apriori-threshold", type=float, default=0.1)
    parser.add_argument("--no-discovery", action="store_true",
                        help="with --csv and no --dag, use the No-DAG baseline instead of PC")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CauSumX: summarized causal explanations for aggregate views")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list the built-in dataset generators")

    explain = sub.add_parser("explain", help="explain an aggregate view")
    _add_source_arguments(explain, "group-by-average SQL query "
                                   "(default: the dataset's representative query)")
    explain.add_argument("--outcome-label", default="the outcome",
                         help="noun used in the rendered explanation text")

    serve = sub.add_parser(
        "serve", help="serve explanations over a JSON-lines stdin/stdout loop")
    _add_source_arguments(serve, "default query (informational; requests carry "
                                 "their own queries)")
    serve.add_argument("--n-jobs", type=int, default=1,
                       help="worker threads for treatment mining inside one query")
    serve.add_argument("--max-workers", type=int, default=4,
                       help="thread-pool width for batched requests")
    serve.add_argument("--summary-cache-size", type=int, default=256,
                       help="LRU capacity of the summary cache")

    batch = sub.add_parser(
        "batch", help="answer a file of queries and emit JSON summaries")
    _add_source_arguments(batch, "unused for batch (queries come from --queries)")
    batch.add_argument("--queries", type=Path, required=True,
                       help="file of queries: one SQL per line (# comments) "
                            "or a JSON array of strings")
    batch.add_argument("--out", type=Path, default=None,
                       help="output JSON file (default: stdout)")
    batch.add_argument("--n-jobs", type=int, default=1,
                       help="worker threads for treatment mining inside one query")
    batch.add_argument("--max-workers", type=int, default=4,
                       help="thread-pool width across distinct queries")

    case = sub.add_parser("case-study", help="run one of the paper's case studies")
    case.add_argument("name", choices=sorted(CASE_STUDIES),
                      help="case-study identifier (paper figure)")
    case.add_argument("--n", type=int, default=None, help="dataset size override")
    case.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list_datasets() -> int:
    for name in list_datasets():
        print(name)
    return 0


def _load_source(args: argparse.Namespace, require_query: bool,
                 machine_output: bool = False):
    """Resolve (table, dag, query, grouping_attrs, treatment_attrs, config, name).

    Returns ``None`` after printing an error when the source is unusable.
    ``machine_output`` sends informational notices to stderr so commands whose
    stdout is a machine-readable protocol (serve/batch) stay parseable.
    """
    config = CauSumXConfig(k=args.k, theta=args.theta,
                           apriori_threshold=args.apriori_threshold,
                           sample_size=None,
                           n_jobs=getattr(args, "n_jobs", 1))
    grouping_attributes = treatment_attributes = None
    if args.dataset:
        bundle = load_dataset(args.dataset, n=args.n, seed=args.seed)
        table, dag, query = bundle.table, bundle.dag, bundle.query
        grouping_attributes = bundle.grouping_attributes
        treatment_attributes = bundle.treatment_attributes
        name = args.dataset
        if args.dataset == "german":
            config = config.with_overrides(include_singleton_groups=True)
    else:
        table = read_csv(args.csv)
        if require_query and not args.query:
            print("error: --query is required with --csv", file=sys.stderr)
            return None
        query = None
        dag = None
        name = args.csv.stem
    if args.query:
        query = parse_query(args.query)
    if args.dag:
        with args.dag.open() as handle:
            dag = CausalDAG.from_dict(json.load(handle))
    if dag is None:
        if args.no_discovery and query is None:
            print("error: --no-discovery needs --query (or --dag) to know "
                  "the outcome attribute", file=sys.stderr)
            return None
        dag = no_dag(table, query.average) if args.no_discovery \
            else pc_algorithm(table)
        source = "No-DAG baseline" if args.no_discovery else "PC causal discovery"
        print(f"[no causal DAG supplied — using {source}: {dag.n_edges} edges]\n",
              file=sys.stderr if machine_output else sys.stdout)
    return table, dag, query, grouping_attributes, treatment_attributes, config, name


def _cmd_explain(args: argparse.Namespace) -> int:
    source = _load_source(args, require_query=True)
    if source is None:
        return 2
    table, dag, query, grouping_attributes, treatment_attributes, config, _ = source
    summary = CauSumX(table, dag, config).explain(
        query, grouping_attributes=grouping_attributes,
        treatment_attributes=treatment_attributes)
    print(render_summary(summary, outcome=args.outcome_label))
    return 0 if summary.feasible else 1


def _make_engine(args: argparse.Namespace):
    """Build an engine with one registered dataset from the CLI source options."""
    source = _load_source(args, require_query=False, machine_output=True)
    if source is None:
        return None
    table, dag, _, grouping_attributes, treatment_attributes, config, name = source
    engine = ExplanationEngine(
        max_workers=args.max_workers,
        summary_cache_size=getattr(args, "summary_cache_size", 256))
    engine.register_dataset(name, table, dag=dag, config=config,
                            grouping_attributes=grouping_attributes,
                            treatment_attributes=treatment_attributes)
    return engine, name


def _cmd_serve(args: argparse.Namespace) -> int:
    made = _make_engine(args)
    if made is None:
        return 2
    engine, name = made
    print(f"[serving dataset {name!r}; one JSON request per line, "
          '{"op": "quit"} to stop]', file=sys.stderr)
    serve_loop(engine, name, sys.stdin, sys.stdout)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    made = _make_engine(args)
    if made is None:
        return 2
    engine, name = made
    try:
        queries = read_queries(args.queries.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read --queries file: {exc}", file=sys.stderr)
        return 2
    if not queries:
        print("error: no queries found in --queries file", file=sys.stderr)
        return 2
    try:
        if args.out is None:
            run_batch(engine, name, queries, sys.stdout)
        else:
            with args.out.open("w") as handle:
                run_batch(engine, name, queries, handle)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    _, text = run_case_study(args.name, n=args.n, seed=args.seed)
    print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "batch":
        return _cmd_batch(args)
    return _cmd_case_study(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
