"""Command-line interface for CauSumX.

Usage examples::

    python -m repro list-datasets
    python -m repro explain --dataset stackoverflow --n 2000 --k 3 --theta 1.0
    python -m repro explain --csv data.csv \
        --query "SELECT Region, AVG(Revenue) FROM t GROUP BY Region" --dag dag.json
    python -m repro case-study figure7_accidents --n 3000
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import CauSumX, CauSumXConfig, render_summary
from repro.dataframe import read_csv
from repro.datasets import list_datasets, load_dataset
from repro.discovery import no_dag, pc_algorithm
from repro.experiments.case_studies import CASE_STUDIES, run_case_study
from repro.graph import CausalDAG
from repro.sql import parse_query


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CauSumX: summarized causal explanations for aggregate views")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list the built-in dataset generators")

    explain = sub.add_parser("explain", help="explain an aggregate view")
    source = explain.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=sorted(list_datasets()),
                        help="built-in dataset generator to use")
    source.add_argument("--csv", type=Path, help="CSV file containing the relation")
    explain.add_argument("--query", help="group-by-average SQL query "
                                         "(default: the dataset's representative query)")
    explain.add_argument("--dag", type=Path,
                         help="causal DAG as JSON ({child: [parents...]}); "
                              "default: the dataset's DAG, or PC discovery for CSV input")
    explain.add_argument("--n", type=int, default=2000,
                         help="number of tuples to generate for built-in datasets")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--k", type=int, default=5, help="maximum number of explanation patterns")
    explain.add_argument("--theta", type=float, default=0.75, help="coverage constraint")
    explain.add_argument("--apriori-threshold", type=float, default=0.1)
    explain.add_argument("--no-discovery", action="store_true",
                         help="with --csv and no --dag, use the No-DAG baseline instead of PC")
    explain.add_argument("--outcome-label", default="the outcome",
                         help="noun used in the rendered explanation text")

    case = sub.add_parser("case-study", help="run one of the paper's case studies")
    case.add_argument("name", choices=sorted(CASE_STUDIES),
                      help="case-study identifier (paper figure)")
    case.add_argument("--n", type=int, default=None, help="dataset size override")
    case.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list_datasets() -> int:
    for name in list_datasets():
        print(name)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    config = CauSumXConfig(k=args.k, theta=args.theta,
                           apriori_threshold=args.apriori_threshold,
                           sample_size=None)
    grouping_attributes = treatment_attributes = None
    if args.dataset:
        bundle = load_dataset(args.dataset, n=args.n, seed=args.seed)
        table, dag, query = bundle.table, bundle.dag, bundle.query
        grouping_attributes = bundle.grouping_attributes
        treatment_attributes = bundle.treatment_attributes
        if args.dataset == "german":
            config = config.with_overrides(include_singleton_groups=True)
    else:
        table = read_csv(args.csv)
        if not args.query:
            print("error: --query is required with --csv", file=sys.stderr)
            return 2
        query = None
        dag = None
    if args.query:
        query = parse_query(args.query)
    if args.dag:
        with args.dag.open() as handle:
            dag = CausalDAG.from_dict(json.load(handle))
    if dag is None:
        dag = no_dag(table, query.average) if args.no_discovery else pc_algorithm(table)
        source = "No-DAG baseline" if args.no_discovery else "PC causal discovery"
        print(f"[no causal DAG supplied — using {source}: {dag.n_edges} edges]\n")

    summary = CauSumX(table, dag, config).explain(
        query, grouping_attributes=grouping_attributes,
        treatment_attributes=treatment_attributes)
    print(render_summary(summary, outcome=args.outcome_label))
    return 0 if summary.feasible else 1


def _cmd_case_study(args: argparse.Namespace) -> int:
    _, text = run_case_study(args.name, n=args.n, seed=args.seed)
    print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "explain":
        return _cmd_explain(args)
    return _cmd_case_study(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
