"""The concurrent multi-tenant HTTP serving tier (stdlib-only).

Layers, bottom-up:

* :mod:`repro.net.admission` — bounded admission with fast 429 shedding,
  per-tenant in-flight caps, per-request deadlines, graceful draining.
* :mod:`repro.net.metrics` — request counters and a latency ring buffer,
  surfaced via ``GET /metrics`` and the engine's ``stats`` op.
* :mod:`repro.net.registry` — one isolated engine (+ memory budget) per
  tenant, lazily materialized from a shared store or in-memory dataset.
* :mod:`repro.net.server` — the ``ThreadingHTTPServer`` front end mapping
  ``POST /v1/<op>`` onto the same dispatch core the JSON-lines loop uses,
  byte-identical response bodies included.
"""

from repro.net.admission import (AdmissionController, Deadline,
                                 DeadlineExceeded, RequestShed)
from repro.net.metrics import ServingMetrics
from repro.net.registry import TenantRegistry, validate_tenant
from repro.net.server import (DEFAULT_TENANT, STATUS_BY_CODE, ReproHTTPServer,
                              create_server, serve_in_thread)

__all__ = [
    "AdmissionController",
    "Deadline",
    "DeadlineExceeded",
    "RequestShed",
    "ServingMetrics",
    "TenantRegistry",
    "validate_tenant",
    "ReproHTTPServer",
    "create_server",
    "serve_in_thread",
    "DEFAULT_TENANT",
    "STATUS_BY_CODE",
]
