"""The HTTP/1.1 front end over the explanation-engine dispatch core.

Built on the standard library's ``ThreadingHTTPServer`` — no new runtime
dependencies — this module exposes the same six ops the JSON-lines loop
serves (:data:`repro.service.server.OPS`) as ``POST /v1/<op>``, plus::

    GET /healthz            liveness (``serving`` / ``draining``)
    GET /metrics            serving metrics: JSON, or Prometheus-style text
                            with ``?format=text`` (or ``Accept: text/plain``)

Byte-compatibility is a hard contract: a ``POST /v1/explain`` response body
is exactly the line :func:`repro.service.serve_loop` would have written for
the same request against the same engine — both fronts call the same
:func:`~repro.service.server.dispatch_request` and serialize with the same
``json.dumps(response, default=str) + "\\n"``.

Request headers:

``X-Repro-Tenant``
    Tenant name (default ``"default"``); each tenant gets an isolated engine
    via the :class:`~repro.net.registry.TenantRegistry`.
``X-Repro-Deadline-Ms``
    Per-request deadline in milliseconds, overriding the server default.
    Expiry while queued or between ops returns 504.
``X-Repro-Trace-Id``
    With tracing enabled (``REPRO_TRACE=1``), the trace id to use for this
    request (one is generated when absent).  The id in effect is echoed in
    the ``X-Repro-Trace-Id`` response header and as the envelope's
    ``trace_id`` field — on error envelopes too.  Ignored when tracing is
    off, keeping response bodies byte-identical to the untraced build.

Failure statuses mirror the structured protocol errors: 400 ``bad_request``,
404 ``unknown_op``/``unknown_dataset``, 429 ``shed``, 500 ``internal``,
503 ``draining``, 504 ``deadline_exceeded``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.net.admission import (AdmissionController, Deadline,
                                 DeadlineExceeded, RequestShed)
from repro.net.metrics import ServingMetrics
from repro.net.registry import TenantRegistry
from repro.obs import trace
from repro.obs.registry import REGISTRY
from repro.service.server import (OPS, ProtocolError, classify_error,
                                  dispatch_request, error_envelope,
                                  finalize_response)

#: HTTP status for each structured error code.
STATUS_BY_CODE = {
    "bad_request": 400,
    "unknown_op": 404,
    "unknown_dataset": 404,
    "internal": 500,
    "shed": 429,
    "draining": 503,
    "deadline_exceeded": 504,
}

DEFAULT_TENANT = "default"


class ReproHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to a tenant registry.

    One handler thread per connection; real concurrency is bounded by the
    attached :class:`~repro.net.AdmissionController`, not by the thread
    count.
    """

    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default listen backlog (5) resets connections when
    # hundreds of clients connect in the same instant; admission control is
    # the intended gate, so accept generously and shed explicitly.
    request_queue_size = 512

    def __init__(self, address, registry: TenantRegistry,
                 admission: AdmissionController | None = None,
                 metrics: ServingMetrics | None = None,
                 default_deadline: float | None = None):
        self.registry = registry
        self.admission = admission if admission is not None \
            else AdmissionController()
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.default_deadline = default_deadline
        registry.on_materialize(
            lambda engine: engine.attach_http_metrics(self.metrics))
        super().__init__(address, _Handler)

    def graceful_shutdown(self, drain_timeout: float | None = 10.0) -> dict:
        """Drain, snapshot, and close: the SIGTERM path.

        New arrivals are shed with 503 immediately; requests already
        admitted (or queued) get up to ``drain_timeout`` seconds to finish;
        then every store-backed tenant engine snapshots its warm state.
        Safe to call after ``serve_forever`` has returned.
        """
        self.admission.close()
        self.shutdown()  # no-op if the serve loop already stopped
        drained = self.admission.drain(drain_timeout)
        snapshots = self.registry.snapshot_all()
        self.server_close()
        return {"drained": drained, "snapshots": snapshots}


def create_server(registry: TenantRegistry, host: str = "127.0.0.1",
                  port: int = 0, *, max_inflight: int = 8,
                  max_queue: int = 64, tenant_inflight: int | None = None,
                  default_deadline: float | None = None) -> ReproHTTPServer:
    """Build a ready-to-serve :class:`ReproHTTPServer` (port 0 = ephemeral)."""
    admission = AdmissionController(max_inflight=max_inflight,
                                    max_queue=max_queue,
                                    tenant_inflight=tenant_inflight)
    return ReproHTTPServer((host, port), registry, admission=admission,
                           default_deadline=default_deadline)


def serve_in_thread(server: ReproHTTPServer) -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-http-serve", daemon=True)
    thread.start()
    return thread


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ReproHTTPServer  # narrowed from BaseServer for attribute access

    # ------------------------------------------------------------------ GET

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        started = time.monotonic()
        parts = urlsplit(self.path)
        if parts.path == "/healthz":
            closing = self.server.admission.stats()["closing"]
            body = {"ok": True,
                    "status": "draining" if closing else "serving"}
            self._send_json(200, body)
            self._record("healthz", 200, started)
        elif parts.path == "/metrics":
            query = parse_qs(parts.query)
            wants_text = query.get("format", [""])[0] == "text" or \
                "text/plain" in self.headers.get("Accept", "")
            if wants_text:
                self._send_text(200, self.server.metrics.render_text()
                                + REGISTRY.render_prometheus())
            else:
                body = {"ok": True,
                        "http": self.server.metrics.snapshot(),
                        "admission": self.server.admission.stats(),
                        "tenants": self.server.registry.tenants(),
                        "unified": REGISTRY.snapshot()}
                self._send_json(200, body)
            self._record("metrics", 200, started)
        else:
            envelope = {"ok": False,
                        "error": f"unknown path {parts.path!r}",
                        "error_code": "unknown_op"}
            self._send_json(404, envelope)
            self._record("unknown", 404, started)

    # ------------------------------------------------------------------ POST

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        started = time.monotonic()
        server = self.server
        op = "unknown"
        tenant = self.headers.get("X-Repro-Tenant", DEFAULT_TENANT)
        request: dict = {}
        traced = trace.enabled()
        # Clients may supply their own id for cross-service correlation;
        # either way the id used is echoed in the envelope and the
        # X-Repro-Trace-Id response header — including on error envelopes.
        trace_id = (self.headers.get("X-Repro-Trace-Id")
                    or trace.new_trace_id()) if traced else None
        with trace.new_trace("http.request", trace_id=trace_id,
                             tenant=tenant):
            try:
                op = self._path_op()
                request = self._read_request(op)
                deadline = self._deadline()
                with server.admission.admit(tenant, deadline):
                    engine = server.registry.engine_for(tenant)
                    response = dispatch_request(
                        engine, server.registry.default_dataset, request,
                        deadline=deadline)
                status = 200
            except (RequestShed, DeadlineExceeded) as exc:
                response = {"ok": False, "error": str(exc),
                            "error_code": exc.code}
                status = STATUS_BY_CODE[exc.code]
            except Exception as exc:  # noqa: BLE001 — protocol boundary
                response = error_envelope(exc)
                status = STATUS_BY_CODE.get(classify_error(exc), 500)
        duration_ms = (time.monotonic() - started) * 1000.0 if traced else None
        finalize_response(response, request.get("id"), trace_id, duration_ms)
        self._trace_id = trace_id
        self._send_json(status, response)
        self._trace_id = None
        self._record(op, status, started, tenant)

    # ------------------------------------------------------------------ helpers

    def _path_op(self) -> str:
        path = urlsplit(self.path).path
        if not path.startswith("/v1/"):
            raise ProtocolError("unknown_op", f"unknown path {path!r}")
        op = path[len("/v1/"):]
        if op not in OPS:
            raise ProtocolError("unknown_op", f"unknown op {op!r}")
        return op

    def _read_request(self, op: str) -> dict:
        """Parse the body into a request dict, pinning ``op`` from the path.

        An empty body is a bare ``{"op": op}`` request (``stats``,
        ``snapshot``); a JSON object body supplies the op's fields.  A body
        whose own ``"op"`` disagrees with the path is refused rather than
        silently rerouted.
        """
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            raise ProtocolError("bad_request",
                                "invalid Content-Length header") from None
        raw = self.rfile.read(length).decode("utf-8") if length else ""
        if not raw.strip():
            return {"op": op}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError("bad_request",
                                f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise ProtocolError("bad_request",
                                "request body must be a JSON object")
        body_op = body.get("op")
        if body_op is not None and body_op != op:
            raise ProtocolError(
                "bad_request",
                f"body op {body_op!r} disagrees with path op {op!r}")
        body["op"] = op
        return body

    def _deadline(self) -> Deadline | None:
        header = self.headers.get("X-Repro-Deadline-Ms")
        if header is None:
            if self.server.default_deadline is None:
                return None
            return Deadline(self.server.default_deadline)
        try:
            millis = float(header)
            if millis <= 0:
                raise ValueError
        except ValueError:
            raise ProtocolError(
                "bad_request",
                f"X-Repro-Deadline-Ms must be a positive number, "
                f"got {header!r}") from None
        return Deadline(millis / 1000.0)

    def _send_json(self, status: int, payload: dict) -> None:
        # Exactly the bytes serve_loop writes for the same response dict —
        # the byte-compatibility contract between the two front ends.
        body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(status, text.encode("utf-8"),
                         "text/plain; charset=utf-8")

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            trace_id = getattr(self, "_trace_id", None)
            if trace_id is not None:
                self.send_header("X-Repro-Trace-Id", trace_id)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to report to it

    def _record(self, op: str, status: int, started: float,
                tenant: str | None = None) -> None:
        self.server.metrics.record(op, status, time.monotonic() - started,
                                   tenant)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging; metrics carry the signal."""
