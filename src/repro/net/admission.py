"""Admission control for the HTTP serving tier: queue bounds and deadlines.

A thread-per-connection HTTP server accepts work as fast as clients send it;
without a gate, a traffic spike turns into unbounded threads all contending
for the same engines and every response getting slower together.  The
:class:`AdmissionController` puts a fixed ceiling on concurrently *executing*
requests (``max_inflight``), a fixed ceiling on requests *waiting* for an
execution slot (``max_queue``), and an optional per-tenant ceiling across
both (``tenant_inflight``).  Everything beyond those bounds is shed
immediately — a fast 429, costing the server one lock acquisition — instead
of being queued into oblivion.

Deadlines compose with the queue: a request that cannot get a slot before
its deadline leaves the queue with :class:`DeadlineExceeded` (the HTTP tier
maps it to 504), and the same :class:`Deadline` object travels into the
dispatch core for cooperative cancellation at op boundaries.

Shutdown is graceful: :meth:`AdmissionController.close` sheds new arrivals
with the ``draining`` code (503) while :meth:`drain` blocks until every
admitted request has finished — the server snapshots warm state only after
the drain completes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.analysis.lockwatch import named_lock
from repro.obs import trace
from repro.obs.registry import REGISTRY


class RequestShed(Exception):
    """The request was refused without being executed (fast 429/503)."""

    def __init__(self, message: str, code: str = "shed"):
        super().__init__(message)
        self.code = code


class DeadlineExceeded(Exception):
    """The request's deadline expired before (or between) op execution."""

    code = "deadline_exceeded"


class Deadline:
    """A per-request wall-clock budget with cooperative checkpoints.

    Monotonic-clock based; ``check()`` raises :class:`DeadlineExceeded` once
    the budget is spent.  The dispatch core calls ``check()`` at op
    boundaries only — a started kernel always runs to completion, so every
    response that is produced is complete and correct.
    """

    __slots__ = ("seconds", "expires_at")

    def __init__(self, seconds: float):
        if seconds <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        self.seconds = float(seconds)
        self.expires_at = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.seconds:g}s expired before {stage}")


class AdmissionController:
    """Bounded admission with fast shedding, per-tenant caps, and draining.

    Parameters
    ----------
    max_inflight:
        Requests allowed to execute concurrently (the real parallelism of
        the engines behind the server).
    max_queue:
        Requests allowed to wait for an execution slot; arrivals beyond
        ``max_inflight + max_queue`` are shed immediately with
        :class:`RequestShed` (HTTP 429).
    tenant_inflight:
        Optional ceiling on one tenant's requests inside the controller
        (queued + executing); ``None`` disables the per-tenant cap.
    """

    def __init__(self, max_inflight: int = 8, max_queue: int = 64,
                 tenant_inflight: int | None = None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if tenant_inflight is not None and tenant_inflight < 1:
            raise ValueError("tenant_inflight must be at least 1 (or None)")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.tenant_inflight = tenant_inflight
        self._lock = named_lock("AdmissionController._lock")
        self._cond = threading.Condition(self._lock)
        self._inflight = 0  # guarded-by: _lock
        self._queued = 0  # guarded-by: _lock
        self._per_tenant: dict[str, int] = {}  # guarded-by: _lock
        self._closing = False  # guarded-by: _lock
        self._admitted = 0  # guarded-by: _lock
        self._shed = 0  # guarded-by: _lock
        self._deadline_rejects = 0  # guarded-by: _lock
        self._peak_inflight = 0  # guarded-by: _lock
        self._peak_queued = 0  # guarded-by: _lock
        self._queue_waits = 0  # guarded-by: _lock
        self._queue_wait_seconds = 0.0  # guarded-by: _lock

    # ------------------------------------------------------------------ admission

    @contextmanager
    def admit(self, tenant: str, deadline: Deadline | None = None):
        """Hold one execution slot for the duration of the ``with`` block.

        Raises :class:`RequestShed` when the queue is full, the tenant is at
        its cap, or the controller is draining — all without blocking.
        Raises :class:`DeadlineExceeded` when the deadline expires while
        queued.
        """
        self._enter(tenant, deadline)
        try:
            yield
        finally:
            self._leave(tenant)

    def _enter(self, tenant: str, deadline: Deadline | None) -> None:
        queued_at = None
        with self._lock:
            if self._closing:
                self._shed += 1
                raise RequestShed("server is draining", code="draining")
            cap = self.tenant_inflight
            held = self._per_tenant.get(tenant, 0)
            if cap is not None and held >= cap:
                self._shed += 1
                raise RequestShed(
                    f"tenant {tenant!r} is at its in-flight cap ({cap})")
            if self._inflight >= self.max_inflight:
                if self._queued >= self.max_queue:
                    self._shed += 1
                    raise RequestShed(
                        f"admission queue is full "
                        f"({self.max_inflight} in flight, "
                        f"{self.max_queue} queued)")
                self._per_tenant[tenant] = held + 1
                self._queued += 1
                if self._queued > self._peak_queued:
                    self._peak_queued = self._queued
                queued_at = time.monotonic()
                admitted = False
                try:
                    while self._inflight >= self.max_inflight:
                        if self._closing:
                            self._shed += 1
                            raise RequestShed("server is draining",
                                              code="draining")
                        timeout = None
                        if deadline is not None:
                            timeout = deadline.remaining()
                            if timeout <= 0:
                                self._deadline_rejects += 1
                                raise DeadlineExceeded(
                                    f"deadline of {deadline.seconds:g}s "
                                    f"expired while queued for admission")
                        self._cond.wait(timeout)
                    admitted = True
                finally:
                    self._queued -= 1
                    if not admitted:
                        self._drop_tenant_locked(tenant)
            else:
                self._per_tenant[tenant] = held + 1
            self._inflight += 1
            self._admitted += 1
            if self._inflight > self._peak_inflight:
                self._peak_inflight = self._inflight
            if queued_at is not None:
                waited = time.monotonic() - queued_at
                self._queue_waits += 1
                self._queue_wait_seconds += waited
        # Observability happens outside _lock: the histogram has its own
        # lock, and the tracer touches no controller state.
        if queued_at is not None:
            REGISTRY.histogram(
                "repro_admission_queue_wait_seconds").observe(waited)
            trace.set_root_attr(queue_wait_ms=round(waited * 1000.0, 3))

    def _leave(self, tenant: str) -> None:
        with self._lock:
            self._inflight -= 1
            self._drop_tenant_locked(tenant)
            self._cond.notify_all()

    def _drop_tenant_locked(self, tenant: str) -> None:  # guarded-by: _lock
        remaining = self._per_tenant.get(tenant, 1) - 1
        if remaining > 0:
            self._per_tenant[tenant] = remaining
        else:
            self._per_tenant.pop(tenant, None)

    # ------------------------------------------------------------------ shutdown

    def close(self) -> None:
        """Start draining: shed every new arrival with the ``draining`` code."""
        with self._lock:
            self._closing = True
            self._cond.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until nothing is queued or executing; ``True`` when empty."""
        limit = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._inflight or self._queued:
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "tenant_inflight": self.tenant_inflight,
                "inflight": self._inflight,
                "queued": self._queued,
                "admitted": self._admitted,
                "shed": self._shed,
                "deadline_rejects": self._deadline_rejects,
                "peak_inflight": self._peak_inflight,
                "peak_queued": self._peak_queued,
                "queue_waits": self._queue_waits,
                "queue_wait_seconds": round(self._queue_wait_seconds, 6),
                "closing": self._closing,
            }
