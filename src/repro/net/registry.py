"""Per-tenant engine registry for the HTTP serving tier.

Multi-tenancy model: every tenant gets its **own**
:class:`~repro.service.ExplanationEngine` with its **own**
:class:`~repro.service.MemoryBudget`, lazily materialized by a shared
factory on the tenant's first request.  Isolation is therefore at the cache
level — one tenant's hot queries can never evict another tenant's summaries,
and a tenant hammering ``append_rows`` only bumps its own data versions —
while the expensive immutable inputs (memory-mapped shards on disk, the
shared :class:`~repro.dataframe.Table` in single-dataset mode) are shared
by construction.

Tenant names come from the ``X-Repro-Tenant`` header; they are restricted to
``[A-Za-z0-9._-]`` (max 64 chars) so a hostile header can neither grow an
unbounded registry key space of junk nor smuggle path fragments into
store-backed snapshots.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.analysis.lockwatch import named_lock
from repro.service.engine import ExplanationEngine
from repro.service.membudget import MemoryBudget
from repro.service.server import ProtocolError

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def validate_tenant(tenant: str) -> str:
    """Return ``tenant`` if well-formed, else raise ``bad_request``."""
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ProtocolError(
            "bad_request",
            "tenant names must match [A-Za-z0-9._-]{1,64}")
    return tenant


class TenantRegistry:
    """Lazily materializes one isolated engine per tenant.

    Parameters
    ----------
    factory:
        ``factory(tenant) -> ExplanationEngine`` building a fully registered
        engine; called at most once per tenant, under the registry lock.
    default_dataset:
        The dataset name requests fall back to when they carry none.
    max_tenants:
        Hard cap on distinct tenants; the cap turns a tenant-name flood into
        a structured ``bad_request`` instead of unbounded engine growth.
    """

    def __init__(self, factory: Callable[[str], ExplanationEngine],
                 default_dataset: str, max_tenants: int = 64):
        if max_tenants < 1:
            raise ValueError("max_tenants must be at least 1")
        self._factory = factory
        self.default_dataset = default_dataset
        self.max_tenants = max_tenants
        self._lock = named_lock("TenantRegistry._lock")
        self._engines: dict[str, ExplanationEngine] = {}  # guarded-by: _lock
        self._hooks: list[Callable[[ExplanationEngine], None]] = []

    def on_materialize(self, hook: Callable[[ExplanationEngine], None]) -> None:
        """Run ``hook(engine)`` on every engine the registry creates.

        The server uses this to attach its shared :class:`ServingMetrics` to
        each tenant engine.  Register hooks before serving starts — the list
        is read without locking afterwards.
        """
        self._hooks.append(hook)

    def engine_for(self, tenant: str) -> ExplanationEngine:
        """The tenant's engine, creating it on first use."""
        validate_tenant(tenant)
        with self._lock:
            engine = self._engines.get(tenant)
            if engine is None:
                if len(self._engines) >= self.max_tenants:
                    raise ProtocolError(
                        "bad_request",
                        f"tenant limit reached ({self.max_tenants}); "
                        f"tenant {tenant!r} was not materialized")
                engine = self._factory(tenant)
                for hook in self._hooks:
                    hook(engine)
                self._engines[tenant] = engine
            return engine

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._engines)

    def engines(self) -> list[tuple[str, ExplanationEngine]]:
        with self._lock:
            return sorted(self._engines.items())

    def stats(self) -> dict:
        """Per-tenant dataset/budget overview (cheap; no cache walks)."""
        result = {}
        for tenant, engine in self.engines():
            budget = engine.memory_budget
            result[tenant] = {
                "datasets": engine.datasets(),
                "memory_budget": budget.stats() if budget is not None else None,
            }
        return result

    def snapshot_all(self) -> dict:
        """Snapshot every store-backed tenant engine (graceful shutdown).

        Tenants without a backing store are reported as ``null`` rather than
        failing the drain.
        """
        snapshots = {}
        for tenant, engine in self.engines():
            try:
                snapshots[tenant] = engine.snapshot()
            except ValueError:
                snapshots[tenant] = None  # no backing store for this tenant
        return snapshots

    # ------------------------------------------------------------------ factories

    @classmethod
    def from_store(cls, store, default_dataset: str | None = None,
                   tenant_budget_bytes: int | None = None,
                   max_tenants: int = 64, **engine_kwargs) -> "TenantRegistry":
        """A registry whose tenants each restore from one shared store.

        Every tenant engine memory-maps the same shard files (the OS page
        cache shares the bytes) but owns its caches and, when
        ``tenant_budget_bytes`` is given, an isolated
        :class:`~repro.service.MemoryBudget` of that capacity.

        Snapshots are **not** shared: only the reserved ``default`` tenant
        writes back to the store on :meth:`snapshot_all`, so tenants cannot
        overwrite each other's (identical-origin) warm state concurrently.
        """
        from repro.storage import DatasetStore

        if not isinstance(store, DatasetStore):
            store = DatasetStore(store)
        names = store.dataset_names()
        if not names:
            raise ValueError(f"store at {store.root} has no datasets")
        if default_dataset is None:
            default_dataset = names[0] if len(names) == 1 else None
        if default_dataset is None:
            raise ValueError(
                f"store has several datasets ({', '.join(names)}); "
                f"pass default_dataset to pick the fallback")
        if default_dataset not in names:
            raise ValueError(f"default dataset {default_dataset!r} not in "
                             f"store (has: {', '.join(names)})")

        def factory(tenant: str) -> ExplanationEngine:
            kwargs = dict(engine_kwargs)
            if tenant_budget_bytes is not None:
                kwargs["memory_budget"] = MemoryBudget(tenant_budget_bytes)
            engine = ExplanationEngine.from_store(store, **kwargs)
            if tenant != "default":
                # Non-default tenants must not write back to the shared
                # store: concurrent appends would race on its committed
                # version, so they serve (and append) in memory only.
                engine.detach_store()
            return engine

        return cls(factory, default_dataset, max_tenants=max_tenants)

    @classmethod
    def single_dataset(cls, name: str, table, dag=None, config=None,
                       grouping_attributes=None, treatment_attributes=None,
                       tenant_budget_bytes: int | None = None,
                       max_tenants: int = 64, **engine_kwargs
                       ) -> "TenantRegistry":
        """A registry whose tenants all serve one in-memory dataset.

        The immutable :class:`~repro.dataframe.Table` object is shared by
        every tenant engine (reads only; appends re-register a fresh table
        inside the appending tenant's engine, leaving the others untouched).
        """

        def factory(tenant: str) -> ExplanationEngine:
            kwargs = dict(engine_kwargs)
            if tenant_budget_bytes is not None:
                kwargs["memory_budget"] = MemoryBudget(tenant_budget_bytes)
            engine = ExplanationEngine(**kwargs)
            engine.register_dataset(
                name, table, dag=dag, config=config,
                grouping_attributes=grouping_attributes,
                treatment_attributes=treatment_attributes)
            return engine

        return cls(factory, name, max_tenants=max_tenants)
