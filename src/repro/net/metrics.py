"""Serving metrics for the HTTP tier: request counters and a latency ring.

One :class:`ServingMetrics` instance is shared by every handler thread of a
server.  It keeps per-``(op, status)`` request counters, the set of tenants
seen, and a fixed-size ring buffer of request latencies from which p50/p99
are computed on demand — constant memory no matter how long the server runs.

The snapshot is surfaced in two places: ``GET /metrics`` (JSON by default,
Prometheus-style text exposition via ``?format=text``) and, because the
server attaches the instance to each engine it materializes
(:meth:`ExplanationEngine.attach_http_metrics`), as the ``"http"`` section
of the engine's own ``stats`` op.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.lockwatch import named_lock


class ServingMetrics:
    """Thread-safe request counters + latency quantiles for one server."""

    def __init__(self, ring_size: int = 2048):
        if ring_size < 1:
            raise ValueError("ring_size must be at least 1")
        self._mlock = named_lock("ServingMetrics._mlock")
        self._requests: dict[tuple[str, int], int] = {}  # guarded-by: _mlock
        self._shed = 0  # guarded-by: _mlock
        self._latencies = np.zeros(ring_size, dtype=np.float64)  # guarded-by: _mlock
        self._pos = 0  # guarded-by: _mlock
        self._count = 0  # guarded-by: _mlock
        self._tenants: set[str] = set()  # guarded-by: _mlock

    def record(self, op: str, status: int, seconds: float,
               tenant: str | None = None) -> None:
        """Record one finished (or refused) request."""
        with self._mlock:
            key = (op, int(status))
            self._requests[key] = self._requests.get(key, 0) + 1
            if status in (429, 503):
                self._shed += 1
            self._latencies[self._pos] = seconds
            self._pos = (self._pos + 1) % len(self._latencies)
            if self._count < len(self._latencies):
                self._count += 1
            if tenant is not None:
                self._tenants.add(tenant)

    def snapshot(self) -> dict:
        """A JSON-ready view: counters, shed total, p50/p99, active tenants.

        Keys are sorted so two snapshots of equal state serialize to equal
        bytes — the benchmarks rely on deterministic output.
        """
        with self._mlock:
            requests = {}
            for (op, status), count in sorted(self._requests.items()):
                requests.setdefault(op, {})[str(status)] = count
            total = sum(self._requests.values())
            filled = self._latencies[:self._count]
            if self._count:
                p50 = float(np.percentile(filled, 50))
                p99 = float(np.percentile(filled, 99))
            else:
                p50 = p99 = 0.0
            return {
                "requests_total": total,
                "requests": requests,
                "shed_total": self._shed,
                "latency_seconds": {"p50": p50, "p99": p99,
                                    "window": self._count},
                "active_tenants": sorted(self._tenants),
            }

    def render_text(self) -> str:
        """Prometheus-style text exposition of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = [
            "# HELP repro_http_requests_total Requests by op and status.",
            "# TYPE repro_http_requests_total counter",
        ]
        for op, by_status in snap["requests"].items():
            for status, count in by_status.items():
                lines.append(
                    f'repro_http_requests_total{{op="{op}",'
                    f'status="{status}"}} {count}')
        lines += [
            "# HELP repro_http_shed_total Requests refused by admission control.",
            "# TYPE repro_http_shed_total counter",
            f"repro_http_shed_total {snap['shed_total']}",
            "# HELP repro_http_latency_seconds Request latency quantiles.",
            "# TYPE repro_http_latency_seconds summary",
            f'repro_http_latency_seconds{{quantile="0.5"}} '
            f"{snap['latency_seconds']['p50']:.6f}",
            f'repro_http_latency_seconds{{quantile="0.99"}} '
            f"{snap['latency_seconds']['p99']:.6f}",
            "# HELP repro_http_active_tenants Tenants that have sent requests.",
            "# TYPE repro_http_active_tenants gauge",
            f"repro_http_active_tenants {len(snap['active_tenants'])}",
        ]
        return "\n".join(lines) + "\n"
