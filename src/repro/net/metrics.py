"""Serving metrics for the HTTP tier: request counters and latency histogram.

One :class:`ServingMetrics` instance is shared by every handler thread of a
server.  It keeps per-``(op, status)`` request counters, the set of tenants
seen, and a log-bucketed latency histogram
(:class:`~repro.obs.registry.LogHistogram`) from which p50/p99 are computed
on demand — constant memory no matter how long the server runs, and *every*
request retained in the bucket counts (the previous fixed-size ring buffer
silently truncated history under sustained load).

The snapshot is surfaced in two places: ``GET /metrics`` (JSON by default,
Prometheus-style text exposition via ``?format=text``, now including
``repro_http_request_duration_seconds_bucket`` lines) and, because the
server attaches the instance to each engine it materializes
(:meth:`ExplanationEngine.attach_http_metrics`), as the ``"http"`` section
of the engine's own ``stats`` op.

Accounting invariant: a shed request (429/503) counts exactly once in its
``(op, status)`` counter and exactly once in ``shed_total`` — both are
incremented by the same single :meth:`record` call at the response boundary,
never by the admission controller as well (its own ``shed`` counter is a
separate, controller-level view).  ``tests/test_net.py`` pins this for the
shed-while-queued path.
"""

from __future__ import annotations

from repro.analysis.lockwatch import named_lock
from repro.obs.registry import LogHistogram, render_histogram_lines


class ServingMetrics:
    """Thread-safe request counters + latency quantiles for one server."""

    def __init__(self):
        self._mlock = named_lock("ServingMetrics._mlock")
        self._requests: dict[tuple[str, int], int] = {}  # guarded-by: _mlock
        self._shed = 0  # guarded-by: _mlock
        # The histogram carries its own lock; it is observed outside _mlock
        # so the two never nest.
        self._latency = LogHistogram("repro_http_request_duration_seconds")
        self._tenants: set[str] = set()  # guarded-by: _mlock

    def record(self, op: str, status: int, seconds: float,
               tenant: str | None = None) -> None:
        """Record one finished (or refused) request."""
        with self._mlock:
            key = (op, int(status))
            self._requests[key] = self._requests.get(key, 0) + 1
            if status in (429, 503):
                self._shed += 1
            if tenant is not None:
                self._tenants.add(tenant)
        self._latency.observe(seconds)

    def snapshot(self) -> dict:
        """A JSON-ready view: counters, shed total, p50/p99, active tenants.

        Keys are sorted so two snapshots of equal state serialize to equal
        bytes — the benchmarks rely on deterministic output.  The
        ``latency_seconds`` shape is unchanged from the ring-buffer era;
        ``window`` now reports *all* observations (nothing is truncated).
        """
        with self._mlock:
            requests = {}
            for (op, status), count in sorted(self._requests.items()):
                requests.setdefault(op, {})[str(status)] = count
            total = sum(self._requests.values())
            shed = self._shed
            tenants = sorted(self._tenants)
        return {
            "requests_total": total,
            "requests": requests,
            "shed_total": shed,
            "latency_seconds": {"p50": self._latency.quantile(0.50),
                                "p99": self._latency.quantile(0.99),
                                "window": self._latency.count},
            "active_tenants": tenants,
        }

    def render_text(self) -> str:
        """Prometheus-style text exposition of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = [
            "# HELP repro_http_requests_total Requests by op and status.",
            "# TYPE repro_http_requests_total counter",
        ]
        for op, by_status in snap["requests"].items():
            for status, count in by_status.items():
                lines.append(
                    f'repro_http_requests_total{{op="{op}",'
                    f'status="{status}"}} {count}')
        lines += [
            "# HELP repro_http_shed_total Requests refused by admission control.",
            "# TYPE repro_http_shed_total counter",
            f"repro_http_shed_total {snap['shed_total']}",
            "# HELP repro_http_latency_seconds Request latency quantiles.",
            "# TYPE repro_http_latency_seconds summary",
            f'repro_http_latency_seconds{{quantile="0.5"}} '
            f"{snap['latency_seconds']['p50']:.6f}",
            f'repro_http_latency_seconds{{quantile="0.99"}} '
            f"{snap['latency_seconds']['p99']:.6f}",
            "# HELP repro_http_request_duration_seconds "
            "Request latency histogram (log-bucketed).",
        ]
        lines.extend(render_histogram_lines(
            "repro_http_request_duration_seconds", self._latency))
        lines += [
            "# HELP repro_http_active_tenants Tenants that have sent requests.",
            "# TYPE repro_http_active_tenants gauge",
            f"repro_http_active_tenants {len(snap['active_tenants'])}",
        ]
        return "\n".join(lines) + "\n"
