"""Hot-predicate tracking: which WHERE conjuncts earn a bitmap index.

The :class:`HeatTracker` counts how often each conjunct is *served* (cache
hits included — heat measures demand, not computation) per dataset.  Past
``heat_threshold`` serves a predicate is **hot**, and the engine promotes it:
an exact per-shard packed bitmap is committed into the manifest
(:meth:`repro.storage.dataset.StoredDataset.promote_index`), after which the
executor answers that conjunct with ``np.unpackbits`` + fancy indexing
instead of a predicate kernel.

Heat also drives demotion: when committing one more index would exceed the
byte budget, the coldest committed index (lowest ``(count, last-served)``
rank) is dropped — but only if it is strictly colder than the candidate, so
two hot predicates cannot demote each other back and forth.

Warm start replays heat from the telemetry log (:meth:`warm`) so a restarted
server re-promotes its hot set without waiting for the live counters to
refill — committed indexes themselves already survive restart in the
manifest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.lockwatch import named_lock
from repro.dataframe.predicates import Predicate


@dataclass
class _Heat:
    count: int = 0
    last_seq: int = 0
    predicate: Predicate | None = None


class HeatTracker:
    """Served-conjunct frequency counters per dataset (thread-safe)."""

    def __init__(self):
        self._lock = named_lock("HeatTracker._lock")
        #: {(dataset, predicate repr): _Heat}
        self._entries: dict[tuple[str, str], _Heat] = {}  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        self._recorded = 0  # guarded-by: _lock

    def record(self, dataset: str, predicates) -> None:
        """Count one serving of each conjunct in ``predicates``."""
        with self._lock:
            self._seq += 1
            for predicate in predicates:
                key = (dataset, repr(predicate))
                entry = self._entries.get(key)
                if entry is None:
                    entry = self._entries[key] = _Heat(predicate=predicate)
                entry.count += 1
                entry.last_seq = self._seq
                self._recorded += 1

    def warm(self, dataset: str, predicate_key: str, count: int,
             predicate: Predicate | None = None) -> None:
        """Replay ``count`` historical serves (telemetry warm start)."""
        if count <= 0:
            return
        with self._lock:
            self._seq += 1
            key = (dataset, predicate_key)
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = _Heat(predicate=predicate)
            elif entry.predicate is None and predicate is not None:
                entry.predicate = predicate
            entry.count += int(count)
            entry.last_seq = self._seq
            self._recorded += int(count)

    # ------------------------------------------------------------- querying

    def hot(self, dataset: str,
            threshold: int) -> list[tuple[str, Predicate | None]]:
        """``(key, predicate)`` for every conjunct at/past ``threshold``,
        hottest first."""
        with self._lock:
            rows = [(entry.count, entry.last_seq, key[1], entry.predicate)
                    for key, entry in self._entries.items()
                    if key[0] == dataset and entry.count >= threshold]
        rows.sort(key=lambda r: (-r[0], -r[1], r[2]))
        return [(key, predicate) for _, _, key, predicate in rows]

    def rank(self, dataset: str, predicate_key: str) -> tuple[int, int]:
        """LRU rank ``(count, last served seq)``; higher is hotter.

        Unknown keys rank coldest — a committed index whose heat history was
        lost (restart without telemetry) is the first demotion candidate.
        """
        with self._lock:
            entry = self._entries.get((dataset, predicate_key))
            if entry is None:
                return (0, 0)
            return (entry.count, entry.last_seq)

    def snapshot(self) -> dict:
        with self._lock:
            return {"tracked_conjuncts": len(self._entries),
                    "serves_recorded": self._recorded}

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self._seq = 0
            self._recorded = 0


#: One process-wide tracker, mirroring GLOBAL_PLANNER_STATS.
GLOBAL_HEAT = HeatTracker()
