"""Knobs for the adaptive planning loop (feedback correction + cracking).

One frozen :class:`AdaptiveConfig` holds every threshold the loop consults:

* ``min_observations`` / ``ewma_alpha`` — how much est/actual history a
  conjunct needs before its corrected estimate replaces the static one, and
  how fast the EWMA tracks workload shift;
* ``drift_threshold`` — max |corrected − planned| selectivity across a cached
  view's conjuncts before the engine purges that view and re-plans;
* ``heat_threshold`` — how many times a WHERE conjunct must be served before
  it is promoted to a committed per-shard bitmap index;
* ``index_budget_bytes`` — total committed bitmap bytes per dataset; past it,
  the coldest committed index is demoted (LRU by heat rank) to make room.

Environment overrides (read once at import, like ``REPRO_WORKERS``):
``REPRO_ADAPT`` (0 disables the whole loop), ``REPRO_ADAPT_HEAT``,
``REPRO_ADAPT_DRIFT``, ``REPRO_ADAPT_INDEX_BUDGET``.  Tests swap configs via
:func:`adaptive_overrides`.

Disabling adaptivity never changes results — corrections only reorder
conjuncts and bitmaps are exact materializations — it only freezes plans to
their static estimates, exactly the pre-PR-10 behavior.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace

DEFAULT_HEAT_THRESHOLD = 64
DEFAULT_DRIFT_THRESHOLD = 0.25
DEFAULT_INDEX_BUDGET_BYTES = 1 << 20
DEFAULT_EWMA_ALPHA = 0.5
DEFAULT_MIN_OBSERVATIONS = 2


@dataclass(frozen=True)
class AdaptiveConfig:
    """Every knob of the adaptive loop; immutable, swapped as a whole."""

    enabled: bool = True
    min_observations: int = DEFAULT_MIN_OBSERVATIONS
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    drift_threshold: float = DEFAULT_DRIFT_THRESHOLD
    heat_threshold: int = DEFAULT_HEAT_THRESHOLD
    index_budget_bytes: int = DEFAULT_INDEX_BUDGET_BYTES


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


def config_from_env() -> AdaptiveConfig:
    return AdaptiveConfig(
        enabled=_env_bool("REPRO_ADAPT", True),
        heat_threshold=_env_int("REPRO_ADAPT_HEAT", DEFAULT_HEAT_THRESHOLD),
        drift_threshold=_env_float("REPRO_ADAPT_DRIFT",
                                   DEFAULT_DRIFT_THRESHOLD),
        index_budget_bytes=_env_int("REPRO_ADAPT_INDEX_BUDGET",
                                    DEFAULT_INDEX_BUDGET_BYTES),
    )


_config: AdaptiveConfig = config_from_env()


def adaptive_config() -> AdaptiveConfig:
    """The process-wide adaptive configuration currently in force."""
    return _config


def set_adaptive_config(config: AdaptiveConfig) -> AdaptiveConfig:
    """Install ``config`` process-wide; returns the previous one."""
    global _config
    previous = _config
    _config = config
    return previous


def adaptive_enabled() -> bool:
    return _config.enabled


@contextmanager
def adaptive_overrides(**changes):
    """Temporarily replace config fields (tests / benchmarks)."""
    previous = set_adaptive_config(replace(_config, **changes))
    try:
        yield adaptive_config()
    finally:
        set_adaptive_config(previous)
