"""Feedback-corrected selectivity estimation (the est/actual loop).

Every executed :class:`~repro.plan.planner.ScanPlan` records, per conjunct,
the fraction of candidate rows that actually satisfied it.  The
:class:`EstimateCorrector` folds those observations into an EWMA of observed
selectivity keyed by *(dataset name, row count, predicate repr)* — the row
count acts as the dataset-version discriminator, so observations from a
superseded incarnation (pre-append, another test's table of the same name)
never leak into the current one's corrections.

``plan_scan`` consults :data:`GLOBAL_CORRECTOR` once per conjunct: with
fewer than ``min_observations`` data points the static histogram/top-k
estimate stands; past it, the EWMA replaces the estimate, so a predicate the
statistics grossly mis-rank (e.g. numeric equality on a heavy-hitter value,
which the uniform-distinct assumption estimates near zero) migrates to its
true position after a couple of queries.

Conjunct actuals are *conditional* on the prefix that ran before them; under
the planner's independence assumption (the same one the static estimates
make) conditional equals marginal, so every conjunct's actual is folded in.
Correlated workloads bias the EWMA toward the conditional value — which is
exactly the value the planner needs to rank the conjunct within the plans
that recur.

Sources: the engine feeds plans after every view materialization and
``explain_plan`` re-execution, and replays the persisted telemetry log at
``from_store`` warm start; benchmarks feed plans directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.adapt.config import adaptive_config
from repro.analysis.lockwatch import named_lock
from repro.dataframe.predicates import Op, Predicate

#: Incarnation key: (dataset/table name, row count at planning time).
Incarnation = tuple[str, int]


@dataclass
class _Entry:
    """Observation history for one (incarnation, conjunct) pair."""

    observations: int = 0
    ewma_actual: float = 0.0
    last_estimated: float = 0.0
    last_actual: float = 0.0
    abs_error_sum: float = 0.0


class EstimateCorrector:
    """EWMA correction of per-conjunct selectivity estimates (thread-safe)."""

    def __init__(self):
        self._lock = named_lock("EstimateCorrector._lock")
        self._entries: dict[tuple, _Entry] = {}  # guarded-by: _lock
        self._observations = 0  # guarded-by: _lock
        self._corrections_served = 0  # guarded-by: _lock

    # ------------------------------------------------------------ observing

    def observe(self, incarnation: Incarnation, predicate_key: str,
                estimated: float, actual: float, weight: int = 1) -> None:
        """Fold one executed conjunct's ``(estimated, actual)`` pair in.

        ``weight`` > 1 replays an aggregate (telemetry warm start) as that
        many observations sharing one mean actual.
        """
        if actual is None or estimated is None:
            return
        actual = min(1.0, max(0.0, float(actual)))
        alpha = adaptive_config().ewma_alpha
        key = (incarnation[0], incarnation[1], predicate_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = _Entry(ewma_actual=actual)
            else:
                entry.ewma_actual += alpha * (actual - entry.ewma_actual)
            entry.observations += max(1, int(weight))
            entry.last_estimated = float(estimated)
            entry.last_actual = actual
            entry.abs_error_sum += abs(float(estimated) - actual)
            self._observations += max(1, int(weight))

    def observe_plan(self, incarnation: Incarnation, plan) -> None:
        """Fold every executed conjunct of a :class:`ScanPlan` in."""
        if plan is None:
            return
        for conjunct in plan.conjuncts:
            if conjunct.actual_selectivity is not None:
                self.observe(incarnation, repr(conjunct.predicate),
                             conjunct.estimated_selectivity,
                             conjunct.actual_selectivity)

    # ----------------------------------------------------------- correcting

    def correction(self, incarnation: Incarnation, predicate: Predicate,
                   estimated: float) -> tuple[float, bool]:
        """``(corrected estimate, whether a correction applied)``.

        Side-effect free — used both by ``plan_scan`` (which additionally
        counts served corrections via :meth:`corrected`) and by the engine's
        drift check, which must not inflate the served-corrections counter.
        """
        key = (incarnation[0], incarnation[1], repr(predicate))
        minimum = adaptive_config().min_observations
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.observations < minimum:
                return estimated, False
            return min(1.0, max(0.0, entry.ewma_actual)), True

    def corrected(self, incarnation: Incarnation, predicate: Predicate,
                  estimated: float) -> tuple[float, bool]:
        """Like :meth:`correction`, counting served corrections."""
        value, applied = self.correction(incarnation, predicate, estimated)
        if applied:
            with self._lock:
                self._corrections_served += 1
        return value, applied

    # ------------------------------------------------------------- plumbing

    def snapshot(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "observations": self._observations,
                    "corrections_served": self._corrections_served}

    def entries_for(self, incarnation: Incarnation) -> dict[str, dict]:
        """Per-predicate history for one incarnation (introspection/tests)."""
        prefix = (incarnation[0], incarnation[1])
        out = {}
        with self._lock:
            for key, entry in self._entries.items():
                if key[:2] == prefix:
                    out[key[2]] = {
                        "observations": entry.observations,
                        "ewma_actual": entry.ewma_actual,
                        "last_estimated": entry.last_estimated,
                        "last_actual": entry.last_actual,
                        "mean_abs_error": entry.abs_error_sum
                        / max(1, entry.observations),
                    }
        return out

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self._observations = 0
            self._corrections_served = 0


#: One process-wide corrector, mirroring GLOBAL_PLANNER_STATS.
GLOBAL_CORRECTOR = EstimateCorrector()


# ------------------------------------------------------------------ repr parsing


#: Two-character symbols first so `` <= `` never splits as `` < ``.
_OP_SYMBOLS = (" == ", " != ", " <= ", " >= ", " < ", " > ")


def predicate_from_repr(text: str, strict: bool = True) -> Predicate | None:
    """Parse ``repr(Predicate)`` (``attr <op> value-repr``) back to an object.

    Telemetry records and index keys store conjuncts as predicate reprs; this
    inverts them.  The split point is the *earliest* operator symbol (longer
    symbol wins ties), so values whose reprs contain operator-looking text
    (``x == 'a < b'``) parse correctly.  Returns ``None`` when no operator is
    found or the value does not parse; with ``strict=False`` an unparseable
    value falls back to the raw string (CLI convenience: ``channel == web``).
    """
    if not isinstance(text, str):
        return None
    candidates = []
    for symbol in _OP_SYMBOLS:
        index = text.find(symbol)
        if index > 0:
            candidates.append((index, -len(symbol), symbol))
    if not candidates:
        return None
    index, _, symbol = min(candidates)
    attribute = text[:index]
    value_text = text[index + len(symbol):].strip()
    if not attribute or not value_text:
        return None
    try:
        value = ast.literal_eval(value_text)
    except (ValueError, SyntaxError):
        if strict:
            return None
        value = value_text
    return Predicate(attribute, Op(symbol.strip()), value)
