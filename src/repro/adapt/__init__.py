"""Adaptive planning: feedback-corrected estimates + hot-predicate indexes.

ROADMAP item 3.  Three coupled pieces close the loop between the telemetry
log (PR 9) and the cost-based planner (PR 5):

* :mod:`repro.adapt.feedback` — :class:`EstimateCorrector` folds executed
  plans' per-conjunct estimated-vs-actual selectivities into EWMA
  corrections that ``plan_scan`` consults; the engine purges cached views
  whose planned estimates have drifted past the threshold and re-plans.
* :mod:`repro.adapt.promote` — :class:`HeatTracker` counts served WHERE
  conjuncts; hot ones are promoted to committed per-shard packed-bitmap
  indexes ("cracking"), demoted LRU-by-heat under a byte budget.
* :mod:`repro.adapt.config` — the thresholds, with ``REPRO_ADAPT*`` env
  overrides and a test-scoped ``adaptive_overrides`` context manager.

The executor side (bitmap consult in ``plan_shard_select``) lives with the
storage layer; the drive loop (observe → drift check → promote/demote)
lives in :mod:`repro.service.engine`.
"""

from repro.adapt.config import (AdaptiveConfig, adaptive_config,
                                adaptive_enabled, adaptive_overrides,
                                config_from_env, set_adaptive_config)
from repro.adapt.feedback import (GLOBAL_CORRECTOR, EstimateCorrector,
                                  predicate_from_repr)
from repro.adapt.promote import GLOBAL_HEAT, HeatTracker
from repro.obs.registry import REGISTRY


def _adapt_metrics() -> dict:
    out = {f"repro_adapt_corrector_{key}": value
           for key, value in GLOBAL_CORRECTOR.snapshot().items()}
    out.update({f"repro_adapt_heat_{key}": value
                for key, value in GLOBAL_HEAT.snapshot().items()})
    return out


# Same unified-vocabulary bridge the planner counters use: the registry
# pulls these on scrape, nothing is double-counted.
REGISTRY.register_provider("adapt", _adapt_metrics)

__all__ = [
    "AdaptiveConfig",
    "adaptive_config",
    "adaptive_enabled",
    "adaptive_overrides",
    "config_from_env",
    "set_adaptive_config",
    "EstimateCorrector",
    "GLOBAL_CORRECTOR",
    "predicate_from_repr",
    "HeatTracker",
    "GLOBAL_HEAT",
]
