"""Backdoor adjustment-set identification for treatment/outcome pairs."""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.graph.dag import CausalDAG
from repro.graph.dseparation import d_separated


def parents_adjustment_set(dag: CausalDAG, treatments: Sequence[str] | str,
                           outcome: str) -> list[str]:
    """The parents-of-treatment adjustment set.

    Under Pearl's model, the set of parents of the treatment variables is
    always a valid adjustment set for the effect of the treatments on any
    outcome they do not precede.  This is the set CauSumX uses by default
    (it matches the DoWhy default behaviour with a known graph).
    """
    if isinstance(treatments, str):
        treatments = [treatments]
    adjustment: set[str] = set()
    for t in treatments:
        if t in dag:
            adjustment |= dag.parents(t)
    adjustment -= set(treatments)
    adjustment.discard(outcome)
    return sorted(adjustment)


def satisfies_backdoor(dag: CausalDAG, treatments: Sequence[str] | str, outcome: str,
                       adjustment: Iterable[str]) -> bool:
    """Check the backdoor criterion for ``adjustment`` relative to (treatments, outcome).

    The set must (i) contain no descendant of any treatment and (ii) block every
    backdoor path (paths into the treatment) between treatments and outcome.
    The second condition is checked via d-separation in the graph where outgoing
    edges of the treatments are removed.
    """
    if isinstance(treatments, str):
        treatments = [treatments]
    adjustment = set(adjustment)
    descendants: set[str] = set()
    for t in treatments:
        if t in dag:
            descendants |= dag.descendants(t)
    if adjustment & descendants:
        return False
    backdoor_graph = dag.copy()
    for t in treatments:
        if t in backdoor_graph:
            for child in list(backdoor_graph.children(t)):
                backdoor_graph.remove_edge(t, child)
    present = [t for t in treatments if t in dag]
    if not present or outcome not in dag:
        return True
    return d_separated(backdoor_graph, present, outcome, adjustment)


def backdoor_adjustment_set(dag: CausalDAG, treatments: Sequence[str] | str,
                            outcome: str, max_size: int | None = None) -> list[str] | None:
    """Find a minimal-cardinality valid backdoor adjustment set, or None.

    The search enumerates candidate subsets of the non-descendant observed
    variables in increasing size, so the returned set is minimum-size.  For the
    attribute counts in this paper (tens of attributes) this is fast because a
    valid set is typically found at small sizes; ``max_size`` caps the search.
    """
    if isinstance(treatments, str):
        treatments = [treatments]
    present = [t for t in treatments if t in dag]
    if not present or outcome not in dag:
        return []
    forbidden = set(present) | {outcome}
    for t in present:
        forbidden |= dag.descendants(t)
    candidates = [n for n in dag.nodes if n not in forbidden]
    limit = len(candidates) if max_size is None else min(max_size, len(candidates))
    for size in range(limit + 1):
        for subset in combinations(candidates, size):
            if satisfies_backdoor(dag, present, outcome, subset):
                return sorted(subset)
    return None
