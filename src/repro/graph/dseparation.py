"""d-separation test on causal DAGs.

Implemented via the standard "reachable via active trails" algorithm
(Koller & Friedman, Alg. 3.1): X and Y are d-separated given Z iff no node of
Y is reachable from X along an active trail.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.dag import CausalDAG


def d_separated(dag: CausalDAG, x: Iterable[str] | str, y: Iterable[str] | str,
                given: Iterable[str] = ()) -> bool:
    """Return True iff every node in ``x`` is d-separated from every node in ``y`` given ``given``."""
    xs = {x} if isinstance(x, str) else set(x)
    ys = {y} if isinstance(y, str) else set(y)
    zs = set(given)
    if xs & ys:
        return False
    reachable = _reachable(dag, xs, zs)
    return not (reachable & ys)


def _reachable(dag: CausalDAG, sources: set[str], observed: set[str]) -> set[str]:
    """Nodes reachable from ``sources`` along active trails given ``observed``."""
    # Phase 1: ancestors of observed nodes (needed for collider activation).
    ancestors_of_observed = set(observed)
    for z in observed:
        ancestors_of_observed |= dag.ancestors(z)

    # Phase 2: BFS over (node, direction) states.  direction 'up' means the
    # trail arrived at the node against an edge (from a child), 'down' means it
    # arrived along an edge (from a parent).
    visited: set[tuple[str, str]] = set()
    reachable: set[str] = set()
    frontier = [(s, "up") for s in sources]
    while frontier:
        node, direction = frontier.pop()
        if (node, direction) in visited:
            continue
        visited.add((node, direction))
        if node not in observed:
            reachable.add(node)
        if direction == "up" and node not in observed:
            for parent in dag.parents(node):
                frontier.append((parent, "up"))
            for child in dag.children(node):
                frontier.append((child, "down"))
        elif direction == "down":
            if node not in observed:
                for child in dag.children(node):
                    frontier.append((child, "down"))
            if node in ancestors_of_observed:
                for parent in dag.parents(node):
                    frontier.append((parent, "up"))
    return reachable - sources
