"""Graph statistics used in the evaluation (Table 4) and DAG comparison metrics."""

from __future__ import annotations

from repro.graph.dag import CausalDAG


def dag_statistics(dag: CausalDAG, name: str = "") -> dict:
    """Edge count and density statistics as reported in Table 4.

    Density is ``#edges / (n * (n - 1) / 2)`` — the fraction of unordered node
    pairs connected by an edge.
    """
    n = len(dag.nodes)
    possible = n * (n - 1) / 2
    return {
        "name": name,
        "nodes": n,
        "edges": dag.n_edges,
        "density": round(dag.n_edges / possible, 4) if possible else 0.0,
    }


def structural_hamming_distance(dag_a: CausalDAG, dag_b: CausalDAG) -> int:
    """Number of edge insertions/deletions/reversals separating two DAGs."""
    edges_a = set(dag_a.edges)
    edges_b = set(dag_b.edges)
    skeleton_a = {frozenset(e) for e in edges_a}
    skeleton_b = {frozenset(e) for e in edges_b}
    missing = len(skeleton_a - skeleton_b) + len(skeleton_b - skeleton_a)
    shared = skeleton_a & skeleton_b
    reversed_count = 0
    for pair in shared:
        a, b = tuple(pair)
        in_a = (a, b) in edges_a
        in_b = (a, b) in edges_b
        if in_a != in_b:
            reversed_count += 1
    return missing + reversed_count
