"""Causal DAGs (Pearl's graphical causal model) and backdoor adjustment."""

from repro.graph.dag import CausalDAG
from repro.graph.dseparation import d_separated
from repro.graph.backdoor import backdoor_adjustment_set, parents_adjustment_set
from repro.graph.stats import dag_statistics, structural_hamming_distance

__all__ = [
    "CausalDAG",
    "d_separated",
    "backdoor_adjustment_set",
    "parents_adjustment_set",
    "dag_statistics",
    "structural_hamming_distance",
]
