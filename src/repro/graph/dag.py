"""Causal DAG over the endogenous attributes of a relation (Section 3)."""

from __future__ import annotations

from typing import Iterable, Sequence


class CausalDAG:
    """A directed acyclic graph whose nodes are observed (endogenous) attributes.

    The DAG encodes the background causal knowledge used to identify
    confounders for CATE estimation.  Exogenous noise variables are implicit
    (they are unobserved and never referenced by the algorithms).
    """

    def __init__(self, nodes: Iterable[str] = (), edges: Iterable[tuple[str, str]] = ()):
        self._nodes: list[str] = []
        self._parents: dict[str, set[str]] = {}
        self._children: dict[str, set[str]] = {}
        for node in nodes:
            self.add_node(node)
        for parent, child in edges:
            self.add_edge(parent, child)

    # ------------------------------------------------------------------ construction

    def add_node(self, node: str) -> None:
        if node not in self._parents:
            self._nodes.append(node)
            self._parents[node] = set()
            self._children[node] = set()

    def add_edge(self, parent: str, child: str) -> None:
        """Add the directed edge ``parent -> child``; rejects cycles and self-loops."""
        if parent == child:
            raise ValueError(f"self-loop on {parent!r} not allowed")
        self.add_node(parent)
        self.add_node(child)
        if child in self.ancestors(parent):
            raise ValueError(f"edge {parent!r}->{child!r} would create a cycle")
        self._parents[child].add(parent)
        self._children[parent].add(child)

    def remove_edge(self, parent: str, child: str) -> None:
        self._parents[child].discard(parent)
        self._children[parent].discard(child)

    def copy(self) -> "CausalDAG":
        return CausalDAG(self.nodes, self.edges)

    @classmethod
    def from_dict(cls, spec: dict) -> "CausalDAG":
        """Build a DAG from ``{child: [parents...]}`` or from ``{"nodes":[], "edges":[]}``."""
        if "nodes" in spec and "edges" in spec:
            return cls(spec["nodes"], [tuple(e) for e in spec["edges"]])
        dag = cls()
        for child, parents in spec.items():
            dag.add_node(child)
            for parent in parents:
                dag.add_edge(parent, child)
        return dag

    def to_dict(self) -> dict:
        return {"nodes": list(self.nodes), "edges": [list(e) for e in self.edges]}

    # ------------------------------------------------------------------ accessors

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        out = []
        for child in self._nodes:
            for parent in sorted(self._parents[child]):
                out.append((parent, child))
        return tuple(sorted(out))

    @property
    def n_edges(self) -> int:
        return sum(len(p) for p in self._parents.values())

    def __contains__(self, node: str) -> bool:
        return node in self._parents

    def has_edge(self, parent: str, child: str) -> bool:
        return child in self._parents and parent in self._parents[child]

    def parents(self, node: str) -> set[str]:
        return set(self._parents[node])

    def children(self, node: str) -> set[str]:
        return set(self._children[node])

    def neighbors(self, node: str) -> set[str]:
        return self.parents(node) | self.children(node)

    def ancestors(self, node: str) -> set[str]:
        """All strict ancestors of ``node``."""
        seen: set[str] = set()
        stack = list(self._parents.get(node, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._parents[current])
        return seen

    def descendants(self, node: str) -> set[str]:
        """All strict descendants of ``node``."""
        seen: set[str] = set()
        stack = list(self._children.get(node, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._children[current])
        return seen

    def topological_order(self) -> list[str]:
        """Return the nodes in a topological order (parents before children)."""
        in_degree = {n: len(self._parents[n]) for n in self._nodes}
        ready = [n for n in self._nodes if in_degree[n] == 0]
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in sorted(self._children[node]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._nodes):  # pragma: no cover - defensive
            raise ValueError("graph contains a cycle")
        return order

    def is_ancestor(self, maybe_ancestor: str, node: str) -> bool:
        return maybe_ancestor in self.ancestors(node)

    def has_causal_path(self, source: str, target: str) -> bool:
        """True if there is a directed path from ``source`` to ``target``."""
        return target in self.descendants(source)

    def causally_relevant(self, outcome: str) -> set[str]:
        """Attributes with a directed path into the outcome (ancestors of the outcome).

        Used by the Algorithm 2 attribute-pruning optimisation: attributes with
        no causal relationship to the outcome cannot affect CATE values.
        """
        if outcome not in self:
            return set()
        return self.ancestors(outcome)

    def subgraph(self, nodes: Sequence[str]) -> "CausalDAG":
        keep = set(nodes)
        edges = [(p, c) for p, c in self.edges if p in keep and c in keep]
        return CausalDAG([n for n in self._nodes if n in keep], edges)

    def restricted_to(self, attributes: Sequence[str]) -> "CausalDAG":
        """Alias of :meth:`subgraph` kept for readability at call sites."""
        return self.subgraph(attributes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CausalDAG(nodes={len(self._nodes)}, edges={self.n_edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, CausalDAG):
            return NotImplemented
        return set(self.nodes) == set(other.nodes) and set(self.edges) == set(other.edges)
