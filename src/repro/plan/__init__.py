"""Unified query planning: one IR, column statistics, selectivity-aware scans.

The repo evaluates the paper's aggregate-view predicates in four places —
the dataframe row kernels, ``AggregateView`` WHERE scans, the storage
layer's zone-map-pruned ``ShardedTable.select``, and the serving engine's
mask/population caches.  ``repro.plan`` is the shared planning layer they
all compile into:

* :mod:`repro.plan.ir` — the logical plan
  (``Scan → Filter → GroupBy → Explain``) with canonical fingerprints that
  key the engine's caches;
* :mod:`repro.plan.stats` — per-column statistics (equi-depth numeric
  histograms, categorical top-k code frequencies, null counts), collected at
  shard commit into the manifest and built lazily for in-memory tables;
* :mod:`repro.plan.planner` — the cost-based conjunct ordering
  (estimated selectivity × kernel cost) and the process-wide counters;
* :mod:`repro.plan.execute` — short-circuit AND execution, with optional
  :class:`~repro.dataframe.MaskCache` routing for repeated subexpressions;
* :mod:`repro.plan.config` — the oracle switch: the unplanned paths stay
  one flag away, and planned results are asserted byte-identical to them.
"""

from repro.plan.config import oracle_mode, planner_enabled, set_planner_enabled
from repro.plan.execute import planned_select, planned_select_with_plan, scan_indices
from repro.plan.ir import (
    ExplainNode,
    FilterNode,
    GroupByNode,
    LogicalPlan,
    ScanNode,
    lower_query,
)
from repro.plan.planner import (
    GLOBAL_PLANNER_STATS,
    ConjunctPlan,
    PlannerStats,
    ScanPlan,
    plan_scan,
    predicate_cost,
)
from repro.plan.stats import (
    CategoricalColumnStats,
    NumericColumnStats,
    TableStats,
    column_stats,
    merge_column_stats,
    remap_categorical_codes,
    resolve_store_code,
    shard_stats_may_match,
    stats_from_dict,
    stats_may_match,
    stats_to_dict,
    table_stats,
)

__all__ = [
    "CategoricalColumnStats",
    "ConjunctPlan",
    "ExplainNode",
    "FilterNode",
    "GLOBAL_PLANNER_STATS",
    "GroupByNode",
    "LogicalPlan",
    "NumericColumnStats",
    "PlannerStats",
    "ScanNode",
    "ScanPlan",
    "TableStats",
    "column_stats",
    "lower_query",
    "merge_column_stats",
    "oracle_mode",
    "plan_scan",
    "planned_select",
    "planned_select_with_plan",
    "planner_enabled",
    "predicate_cost",
    "remap_categorical_codes",
    "resolve_store_code",
    "scan_indices",
    "set_planner_enabled",
    "shard_stats_may_match",
    "stats_from_dict",
    "stats_may_match",
    "stats_to_dict",
    "table_stats",
]
