"""The logical query-plan IR: ``Scan → Filter(conjuncts) → GroupBy → Explain``.

Every consumer of the paper's aggregate-view queries compiles into this one
representation: the SQL layer lowers a parsed
:class:`~repro.sql.query.GroupByAvgQuery` with :func:`lower_query`, the
serving engine keys its caches by :attr:`LogicalPlan.fingerprint`, and the
physical planner (:mod:`repro.plan.planner`) turns the filter node's
conjuncts into an ordered execution schedule.

The IR is *canonical by construction*: lowering normalises literals
(:func:`~repro.sql.normalize.normalize_literal`), sorts the group-by
attributes, and relies on :class:`~repro.dataframe.Pattern` to sort and
deduplicate conjuncts — two requests asking the same question lower to equal
plans with equal fingerprints, which is exactly the property the engine's
summary/view caches need from a key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property

from repro.dataframe import Pattern, Predicate


@dataclass(frozen=True)
class ScanNode:
    """Leaf: read one relation (named for rendering only)."""

    table_name: str = "D"


@dataclass(frozen=True)
class FilterNode:
    """Conjunctive selection; ``conjuncts`` is canonical (sorted, deduped)."""

    conjuncts: tuple[Predicate, ...]
    child: ScanNode

    @property
    def pattern(self) -> Pattern:
        return Pattern(self.conjuncts)


@dataclass(frozen=True)
class GroupByNode:
    """Group by the (sorted) key attributes, averaging ``average``."""

    keys: tuple[str, ...]
    average: str
    child: FilterNode


@dataclass(frozen=True)
class ExplainNode:
    """Root: summarize the view's heterogeneity causally (Algorithm 1)."""

    child: GroupByNode


@dataclass(frozen=True)
class LogicalPlan:
    """One lowered query; hashable, canonical, and cheap to fingerprint."""

    root: ExplainNode = field(compare=True)

    # ------------------------------------------------------------------ accessors

    @property
    def group_by(self) -> tuple[str, ...]:
        return self.root.child.keys

    @property
    def average(self) -> str:
        return self.root.child.average

    @property
    def filter(self) -> Pattern:
        return self.root.child.child.pattern

    @property
    def conjuncts(self) -> tuple[Predicate, ...]:
        return self.root.child.child.conjuncts

    @property
    def table_name(self) -> str:
        return self.root.child.child.child.table_name

    # ------------------------------------------------------------------ keys

    @cached_property
    def where_key(self) -> tuple:
        """Hashable canonical form of the filter node (population-cache key)."""
        return tuple((p.attribute, p.op.value,
                      f"{type(p.value).__name__}:{p.value!r}")
                     for p in self.conjuncts)

    @cached_property
    def fingerprint(self) -> str:
        """A stable hex digest of the whole plan (summary/view-cache key).

        Independent of the table name (the served dataset is addressed
        separately) and of the process — no ``id()`` or hash-randomised
        content enters the digest.  The encoding matches the engine's
        pre-planner query fingerprints byte for byte, so summary-cache
        snapshots persisted by older builds restore against planned keys.
        """
        parts = [
            "gb=" + ",".join(self.group_by),
            "avg=" + self.average,
            "where=" + "&".join(
                f"{p.attribute}{p.op.value}{type(p.value).__name__}:{p.value!r}"
                for p in self.conjuncts),
        ]
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------ rendering

    def render(self) -> str:
        """Human-readable plan tree (``repro plan`` / ``explain_plan``)."""
        conjuncts = " AND ".join(repr(p) for p in self.conjuncts) or "TRUE"
        return "\n".join([
            f"Explain(k-summary of AVG({self.average}) heterogeneity)",
            f"  GroupBy(keys=[{', '.join(self.group_by)}], "
            f"avg={self.average})",
            f"    Filter({conjuncts})",
            f"      Scan({self.table_name})",
        ])


def lower_query(query) -> LogicalPlan:
    """Lower a :class:`~repro.sql.query.GroupByAvgQuery` into the plan IR.

    The query is canonicalised first (sorted group-by, normalised WHERE
    literals), so syntactically different spellings of one question lower to
    equal plans.
    """
    from repro.sql.normalize import normalize_query

    canonical = normalize_query(query)
    scan = ScanNode(table_name=canonical.table_name)
    where = FilterNode(conjuncts=tuple(canonical.where.predicates), child=scan)
    grouped = GroupByNode(keys=tuple(canonical.group_by),
                          average=canonical.average, child=where)
    return LogicalPlan(root=ExplainNode(child=grouped))
