"""Cost-based physical planning of conjunctive scans.

Given a table, its statistics, and a filter's conjuncts, the planner produces
an ordered schedule: conjuncts sorted ascending by ``estimated selectivity ×
evaluation cost``, so the most selective *cheap* predicate runs first over
the whole table and every later predicate evaluates over the shrinking
candidate set only (short-circuit AND — see :mod:`repro.plan.execute`).

The cost model is deliberately coarse — it only needs to rank the paper's
predicate shapes correctly relative to each other:

* numeric comparisons and categorical code equality are one vectorized
  kernel pass (cost 1);
* categorical ordered comparisons decide per vocabulary entry in Python
  before broadcasting (cost 4);
* anything unknown costs 2.

Planning never changes results: it is pure ordering plus conservative
skipping, and :mod:`repro.plan.config` keeps the unplanned oracle path one
flag away for every consumer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.analysis.lockwatch import named_lock
from repro.dataframe.predicates import Op, Pattern, Predicate
from repro.obs.registry import REGISTRY
from repro.plan.stats import TableStats, table_stats

#: Relative evaluation cost of one predicate kernel pass (see module doc).
COST_VECTOR_KERNEL = 1.0
COST_VOCAB_LOOP = 4.0
COST_UNKNOWN = 2.0


def predicate_cost(table, predicate: Predicate) -> float:
    """Relative per-row cost of evaluating ``predicate`` against ``table``."""
    if predicate.attribute not in table.attributes:
        return COST_UNKNOWN
    column = table.column(predicate.attribute)
    if column.numeric:
        return COST_VECTOR_KERNEL
    if predicate.op in (Op.EQ, Op.NE):
        return COST_VECTOR_KERNEL
    return COST_VOCAB_LOOP


@dataclass
class ConjunctPlan:
    """One scheduled conjunct: its estimate, cost, and (later) actuals."""

    predicate: Predicate
    estimated_selectivity: float
    cost: float
    position: int                       # canonical (pre-planning) position
    #: Filled in by the executor: fraction of *candidate* rows that satisfied
    #: the predicate when its turn came (``None`` until executed).
    actual_selectivity: float | None = None
    candidates_in: int | None = None
    candidates_out: int | None = None

    @property
    def rank(self) -> float:
        return self.estimated_selectivity * self.cost

    def to_dict(self) -> dict:
        return {
            "predicate": repr(self.predicate),
            "estimated_selectivity": round(self.estimated_selectivity, 6),
            "cost": self.cost,
            "canonical_position": self.position,
            "actual_selectivity": None if self.actual_selectivity is None
            else round(self.actual_selectivity, 6),
            "candidates_in": self.candidates_in,
            "candidates_out": self.candidates_out,
        }


@dataclass
class ScanPlan:
    """The ordered conjunct schedule for one filter over one table."""

    conjuncts: list[ConjunctPlan]
    reordered: bool
    #: Shard skip accounting, filled by the storage layer's executor.
    shards_total: int = 0
    shards_zone_map_skipped: int = 0
    shards_stats_skipped: int = 0
    rows_in: int | None = None
    rows_out: int | None = None

    @property
    def ordered_predicates(self) -> list[Predicate]:
        return [c.predicate for c in self.conjuncts]

    def to_dict(self) -> dict:
        return {
            "conjuncts": [c.to_dict() for c in self.conjuncts],
            "reordered": self.reordered,
            "shards": {
                "total": self.shards_total,
                "zone_map_skipped": self.shards_zone_map_skipped,
                "stats_skipped": self.shards_stats_skipped,
                "scanned": max(0, self.shards_total
                               - self.shards_zone_map_skipped
                               - self.shards_stats_skipped),
            },
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
        }


def plan_scan(table, pattern: Pattern | Predicate,
              stats: TableStats | None = None) -> ScanPlan:
    """Order a conjunction's predicates by estimated selectivity × cost.

    Ties (and the common single-conjunct case) preserve the canonical
    ``Pattern`` order, so planning is deterministic across processes.
    """
    predicates = [pattern] if isinstance(pattern, Predicate) else \
        list(pattern.predicates)
    if stats is None:
        stats = table_stats(table)
    # Feedback loop (repro.adapt): once a conjunct has enough observed
    # actual-selectivity history for this table incarnation, the EWMA of the
    # actuals replaces the static histogram/top-k estimate.  Imported lazily
    # — repro.adapt depends on predicates only, never back on repro.plan.
    from repro.adapt import GLOBAL_CORRECTOR, adaptive_enabled
    corrector = GLOBAL_CORRECTOR if adaptive_enabled() else None
    incarnation = stats.incarnation
    corrections = 0
    conjuncts = []
    for i, p in enumerate(predicates):
        estimated = stats.selectivity(p)
        if corrector is not None:
            estimated, applied = corrector.corrected(incarnation, p,
                                                     estimated)
            corrections += applied
        conjuncts.append(
            ConjunctPlan(predicate=p, estimated_selectivity=estimated,
                         cost=predicate_cost(table, p), position=i))
    conjuncts.sort(key=lambda c: (c.rank, c.position))
    if corrections:
        GLOBAL_PLANNER_STATS.record_corrections(corrections)
    plan = ScanPlan(conjuncts=conjuncts,
                    reordered=any(c.position != i
                                  for i, c in enumerate(conjuncts)))
    GLOBAL_PLANNER_STATS.record_plan(plan)
    return plan


# ---------------------------------------------------------------------- accounting


@dataclass
class PlannerStats:
    """Process-wide planner counters (thread-safe), surfaced by the engine."""

    plans: int = 0  # guarded-by: _lock
    conjuncts_planned: int = 0  # guarded-by: _lock
    plans_reordered: int = 0  # guarded-by: _lock
    shards_zone_map_skipped: int = 0  # guarded-by: _lock
    shards_stats_skipped: int = 0  # guarded-by: _lock
    shards_scanned: int = 0  # guarded-by: _lock
    atoms_deferred: int = 0  # guarded-by: _lock
    store_code_lookups: int = 0  # guarded-by: _lock
    store_code_cached: int = 0  # guarded-by: _lock
    corrections_applied: int = 0  # guarded-by: _lock
    drift_replans: int = 0  # guarded-by: _lock
    bitmap_conjuncts_served: int = 0  # guarded-by: _lock
    indexes_promoted: int = 0  # guarded-by: _lock
    indexes_demoted: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=lambda: named_lock("PlannerStats._lock"), repr=False)

    def record_plan(self, plan: ScanPlan) -> None:
        with self._lock:
            self.plans += 1
            self.conjuncts_planned += len(plan.conjuncts)
            if plan.reordered:
                self.plans_reordered += 1

    def record_shards(self, zone_map_skipped: int, stats_skipped: int,
                      scanned: int) -> None:
        with self._lock:
            self.shards_zone_map_skipped += zone_map_skipped
            self.shards_stats_skipped += stats_skipped
            self.shards_scanned += scanned

    def record_deferred_atoms(self, count: int) -> None:
        with self._lock:
            self.atoms_deferred += count

    def record_store_codes(self, lookups: int, cached: int) -> None:
        """Equality-literal store-code resolutions: total vs. memo-served."""
        with self._lock:
            self.store_code_lookups += lookups
            self.store_code_cached += cached

    def record_corrections(self, count: int) -> None:
        """Conjuncts whose estimate was replaced by observed feedback."""
        with self._lock:
            self.corrections_applied += count

    def record_drift_replans(self, count: int) -> None:
        """Cached views purged because their plan's estimates drifted."""
        with self._lock:
            self.drift_replans += count

    def record_bitmap_conjuncts(self, count: int) -> None:
        """Conjunct × shard evaluations answered from a bitmap index."""
        with self._lock:
            self.bitmap_conjuncts_served += count

    def record_index_promotions(self, count: int = 1) -> None:
        with self._lock:
            self.indexes_promoted += count

    def record_index_demotions(self, count: int = 1) -> None:
        with self._lock:
            self.indexes_demoted += count

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "plans": self.plans,
                "conjuncts_planned": self.conjuncts_planned,
                "plans_reordered": self.plans_reordered,
                "shards_zone_map_skipped": self.shards_zone_map_skipped,
                "shards_stats_skipped": self.shards_stats_skipped,
                "shards_scanned": self.shards_scanned,
                "atoms_deferred": self.atoms_deferred,
                "store_code_lookups": self.store_code_lookups,
                "store_code_cached": self.store_code_cached,
                "corrections_applied": self.corrections_applied,
                "drift_replans": self.drift_replans,
                "bitmap_conjuncts_served": self.bitmap_conjuncts_served,
                "indexes_promoted": self.indexes_promoted,
                "indexes_demoted": self.indexes_demoted,
            }

    def reset(self) -> None:
        with self._lock:
            self.plans = self.conjuncts_planned = self.plans_reordered = 0
            self.shards_zone_map_skipped = self.shards_stats_skipped = 0
            self.shards_scanned = self.atoms_deferred = 0
            self.store_code_lookups = self.store_code_cached = 0
            self.corrections_applied = self.drift_replans = 0
            self.bitmap_conjuncts_served = 0
            self.indexes_promoted = self.indexes_demoted = 0


#: One process-wide collector — engines report it under ``stats()["planner"]``.
GLOBAL_PLANNER_STATS = PlannerStats()

# The same counters under the unified repro_<layer>_<name> vocabulary; the
# registry pulls them on scrape, so nothing is double-counted or moved.
REGISTRY.register_provider(
    "planner",
    lambda: {f"repro_planner_{key}": value
             for key, value in GLOBAL_PLANNER_STATS.snapshot().items()})
