"""Process-wide switch between planned and oracle (unplanned) execution.

The query planner must be *semantics-free*: planned execution returns exactly
the rows, views, and summaries the pre-planner code paths produced.  To make
that falsifiable, the old paths are kept intact behind this flag — tests (and
``benchmarks/bench_planner.py``) run the same workload once planned and once
inside :func:`oracle_mode` and assert byte-identical results.

The flag is deliberately process-global rather than threaded through every
call site: the planner sits *underneath* ``Table.select``-shaped entry points
(``AggregateView``, ``ShardedTable.select``, the lattice atom enumeration)
whose signatures the rest of the system treats as stable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_lock = threading.Lock()
_enabled = True


def planner_enabled() -> bool:
    """Whether selectivity-aware planning is active (default: yes)."""
    return _enabled


def set_planner_enabled(enabled: bool) -> bool:
    """Flip the global planning flag; returns the previous value."""
    global _enabled
    with _lock:
        previous = _enabled
        _enabled = bool(enabled)
        return previous


@contextmanager
def oracle_mode():
    """Run the enclosed block through the pre-planner code paths.

    Used by tests as the ground-truth oracle: every consumer falls back to
    left-to-right full-mask predicate evaluation, plain zone-map-only shard
    pruning, and mask-based lattice support checks.
    """
    previous = set_planner_enabled(False)
    try:
        yield
    finally:
        set_planner_enabled(previous)
