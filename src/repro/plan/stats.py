"""Per-column statistics behind selectivity estimation and stats-based skips.

Two shapes of statistics, one per physical column kind:

* :class:`NumericColumnStats` — an **equi-depth histogram** (quantile edges,
  per-bucket counts), min/max, distinct count, and null count over the
  ``float64`` storage.  Missing (``NaN``) values are excluded from the
  histogram and counted separately, matching predicate semantics (missing
  never satisfies a predicate).
* :class:`CategoricalColumnStats` — **top-k code frequencies** over the
  ``int32`` dictionary codes plus an ``other`` remainder mass, distinct and
  null counts.  When ``other == 0`` the frequencies are *complete* and every
  equality/inequality estimate is exact — the property the lattice's
  stats-based atom deferral relies on.

Statistics live in two code spaces:

* **in-memory** — built from a :class:`~repro.dataframe.Column` (sorted-vocab
  codes), cached per table object by :func:`table_stats`;
* **on-disk** — built at shard commit in *store-code* space and serialized
  into the manifest next to the zone maps (:func:`stats_to_dict` /
  :func:`stats_from_dict`); a :class:`ShardedTable
  <repro.storage.dataset.ShardedTable>` exposes them re-mapped to sorted
  codes without decoding any shard.

Shard-level statistics of one column merge with :func:`merge_column_stats`
(counts summed per bucket/code), which is how appends refresh dataset-level
estimates incrementally: the new shard contributes its own statistics and no
committed shard is ever re-scanned.

All estimates are fractions of *total* rows (missing included in the
denominator) clamped to ``[0, 1]``; anything unknown estimates conservatively
(``1.0`` for "could match everything", ``0.5 * present`` for un-orderable
ordered comparisons).  :func:`shard_stats_may_match` is the conservative
skip predicate: it only answers ``False`` when the statistics *prove* the
shard holds no matching row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dataframe import MISSING_CODE
from repro.dataframe.predicates import Op, Predicate, _ordered_compare

#: Equi-depth buckets per numeric column (shard commit and in-memory builds).
DEFAULT_NUMERIC_BINS = 16

#: Frequencies kept per categorical column in the *manifest* (in-memory
#: statistics keep the full frequency table — domains are the paper's bounded
#: categorical attributes).
DEFAULT_TOP_K = 32

NUMERIC = "numeric"
CATEGORICAL = "categorical"


# ---------------------------------------------------------------------- numeric


@dataclass(frozen=True)
class NumericColumnStats:
    """Equi-depth histogram + min/max/distinct/null summary of one column."""

    n: int
    n_missing: int
    minimum: float | None
    maximum: float | None
    n_distinct: int
    edges: tuple[float, ...]     # len(buckets) + 1 ascending quantile edges
    counts: tuple[int, ...]      # rows per bucket (equi-depth => near-equal)

    @property
    def kind(self) -> str:
        return NUMERIC

    @property
    def n_present(self) -> int:
        return self.n - self.n_missing

    @classmethod
    def from_values(cls, values: np.ndarray,
                    bins: int = DEFAULT_NUMERIC_BINS) -> "NumericColumnStats":
        values = np.asarray(values, dtype=np.float64)
        present = values[~np.isnan(values)]
        n = int(values.size)
        if present.size == 0:
            return cls(n=n, n_missing=n, minimum=None, maximum=None,
                       n_distinct=0, edges=(), counts=())
        ordered = np.sort(present)
        distinct = int(np.unique(ordered).size)
        bins = max(1, min(bins, distinct))
        quantiles = np.linspace(0.0, 1.0, bins + 1)
        edges = np.quantile(ordered, quantiles)
        edges[0], edges[-1] = ordered[0], ordered[-1]
        # Collapse duplicate edges (heavy ties) so bucket widths stay positive.
        edges = np.unique(edges)
        if edges.size == 1:
            edges = np.array([edges[0], edges[0]], dtype=np.float64)
        # counts[i] = rows in [edges[i], edges[i+1]) — last bucket closed.
        upper = np.searchsorted(ordered, edges[1:], side="left")
        upper[-1] = ordered.size
        counts = np.diff(np.concatenate([[0], upper]))
        return cls(
            n=n, n_missing=n - int(present.size),
            minimum=float(ordered[0]), maximum=float(ordered[-1]),
            n_distinct=distinct,
            edges=tuple(float(e) for e in edges),
            counts=tuple(int(c) for c in counts),
        )

    # ------------------------------------------------------------------ estimates

    def _cumulative_le(self, x: float) -> float:
        """Estimated number of present rows with value ``<= x``."""
        if self.minimum is None:
            return 0.0
        if x < self.minimum:
            return 0.0
        if x >= self.maximum:
            return float(self.n_present)
        total = 0.0
        for i, count in enumerate(self.counts):
            lo, hi = self.edges[i], self.edges[i + 1]
            if x >= hi:
                total += count
                continue
            if x >= lo:
                width = hi - lo
                fraction = 1.0 if width <= 0 else (x - lo) / width
                total += count * fraction
            break
        return total

    def _equal_rows(self, x: float) -> float:
        """Estimated rows equal to ``x`` (uniform-distinct assumption)."""
        if self.minimum is None or x < self.minimum or x > self.maximum:
            return 0.0
        return self.n_present / max(1, self.n_distinct)

    def selectivity(self, op: Op, target: float) -> float:
        if self.n == 0 or self.n_present == 0 or math.isnan(target):
            return 0.0
        eq = self._equal_rows(target)
        if op is Op.EQ:
            rows = eq
        elif op is Op.NE:
            rows = self.n_present - eq
        elif op is Op.LE:
            rows = self._cumulative_le(target)
        elif op is Op.LT:
            rows = self._cumulative_le(target) - eq
        elif op is Op.GE:
            rows = self.n_present - self._cumulative_le(target) + eq
        else:  # GT
            rows = self.n_present - self._cumulative_le(target)
        return min(1.0, max(0.0, rows / self.n))


# ---------------------------------------------------------------------- categorical


@dataclass(frozen=True)
class CategoricalColumnStats:
    """Top-k code frequencies + remainder mass of one categorical column."""

    n: int
    n_missing: int
    n_distinct: int
    counts: dict[int, int]       # code -> rows, the top-k most frequent codes
    other: int                   # rows whose code is not in ``counts``

    @property
    def kind(self) -> str:
        return CATEGORICAL

    @property
    def n_present(self) -> int:
        return self.n - self.n_missing

    @property
    def exact(self) -> bool:
        """Whether ``counts`` is the complete frequency table."""
        return self.other == 0

    @classmethod
    def from_codes(cls, codes: np.ndarray,
                   top_k: int | None = None) -> "CategoricalColumnStats":
        codes = np.asarray(codes)
        present = codes[codes != MISSING_CODE]
        n = int(codes.size)
        if present.size == 0:
            return cls(n=n, n_missing=n, n_distinct=0, counts={}, other=0)
        values, freqs = np.unique(present, return_counts=True)
        distinct = int(values.size)
        if top_k is not None and distinct > top_k:
            keep = np.argsort(-freqs, kind="stable")[:top_k]
            kept = {int(values[i]): int(freqs[i]) for i in sorted(keep)}
            other = int(present.size) - sum(kept.values())
        else:
            kept = {int(v): int(f) for v, f in zip(values, freqs)}
            other = 0
        return cls(n=n, n_missing=n - int(present.size), n_distinct=distinct,
                   counts=kept, other=other)

    # ------------------------------------------------------------------ estimates

    def rows_for_code(self, code: int | None) -> float:
        """Estimated rows carrying ``code`` (exact when :attr:`exact`)."""
        if code is None or code == MISSING_CODE:
            return 0.0
        if code in self.counts:
            return float(self.counts[code])
        if self.other == 0:
            return 0.0
        hidden = max(1, self.n_distinct - len(self.counts))
        return self.other / hidden

    def exact_rows_for_code(self, code: int | None) -> int | None:
        """Exact rows for ``code``, or ``None`` when the stats cannot prove it."""
        if code is None or code == MISSING_CODE:
            return 0
        if code in self.counts:
            return self.counts[code]
        return 0 if self.other == 0 else None

    def selectivity(self, op: Op, code: int | None, vocab: Sequence = (),
                    value=None) -> float:
        if self.n == 0 or self.n_present == 0:
            return 0.0
        if op is Op.EQ:
            rows = self.rows_for_code(code)
        elif op is Op.NE:
            rows = self.n_present - self.rows_for_code(code)
        else:
            rows = self._ordered_rows(op, vocab, value)
        return min(1.0, max(0.0, rows / self.n))

    def _ordered_rows(self, op: Op, vocab: Sequence, value) -> float:
        """Rows satisfying an ordered comparison, decided per counted code."""
        rows = 0.5 * self.other  # unknown remainder: assume half matches
        for code, count in self.counts.items():
            if code >= len(vocab):
                rows += 0.5 * count
                continue
            try:
                if _ordered_compare(vocab[code], op, value):
                    rows += count
            except TypeError:
                rows += 0.5 * count
        return rows


ColumnStats = NumericColumnStats | CategoricalColumnStats


# ---------------------------------------------------------------------- builders


def column_stats(column, bins: int = DEFAULT_NUMERIC_BINS,
                 top_k: int | None = None) -> ColumnStats:
    """Statistics of one in-memory column (full frequencies by default)."""
    if column.numeric:
        return NumericColumnStats.from_values(column.values, bins=bins)
    return CategoricalColumnStats.from_codes(column.codes, top_k=top_k)


class TableStats:
    """Lazily-built per-column statistics of one table.

    ``provider`` overrides the default build-from-column path; the storage
    layer supplies one that derives statistics from the manifest's per-shard
    entries without decoding any shard.  Column entries are computed on first
    request and cached, so a planner that only ever sees predicates over two
    attributes never pays for statistics of the rest.
    """

    def __init__(self, table, provider=None):
        self._table = table
        self._provider = provider
        self._columns: dict[str, ColumnStats | None] = {}

    @property
    def n_rows(self) -> int:
        return self._table.n_rows

    @property
    def incarnation(self) -> tuple[str, int]:
        """``(table name, row count)`` — the feedback-correction key prefix.

        The row count discriminates dataset versions: every committed append
        changes it, so observations recorded against a superseded incarnation
        stop matching instead of polluting the new one's corrections (see
        :mod:`repro.adapt.feedback`).
        """
        return (getattr(self._table, "name", "?"), self._table.n_rows)

    def column(self, attribute: str) -> ColumnStats | None:
        if attribute not in self._columns:
            stats = None
            if attribute in self._table.attributes:
                if self._provider is not None:
                    # A provider that cannot prove statistics (e.g. a
                    # pre-planner manifest) yields None and the planner
                    # estimates conservatively — never fall back to building
                    # from the column, which would force-decode every shard
                    # of a storage-backed table just to rank conjuncts.
                    stats = self._provider(attribute)
                else:
                    stats = column_stats(self._table.column(attribute))
            self._columns[attribute] = stats
        return self._columns[attribute]

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of rows satisfying ``predicate`` (``[0, 1]``)."""
        if predicate.attribute not in self._table.attributes:
            return 1.0
        stats = self.column(predicate.attribute)
        if stats is None:
            return 1.0
        column = self._table.column(predicate.attribute)
        if isinstance(stats, NumericColumnStats):
            try:
                target = float(predicate.value)
            except (TypeError, ValueError):
                return 1.0  # evaluation will raise; never hide it by skipping
            return stats.selectivity(predicate.op, target)
        code = None
        if predicate.op in (Op.EQ, Op.NE):
            try:
                code = column.vocab_code(predicate.value)
            except TypeError:  # unhashable literal
                return 1.0
        return stats.selectivity(predicate.op, code, vocab=column.vocab,
                                 value=predicate.value)

    def exact_support(self, predicate: Predicate) -> int | None:
        """Exact matching-row count when provable from statistics, else ``None``.

        Only categorical equality/inequality against *complete* frequency
        tables is provable; everything else returns ``None`` so callers fall
        back to evaluating the predicate.
        """
        if predicate.attribute not in self._table.attributes:
            return None
        stats = self.column(predicate.attribute)
        if not isinstance(stats, CategoricalColumnStats):
            return None
        if predicate.op not in (Op.EQ, Op.NE):
            return None
        column = self._table.column(predicate.attribute)
        try:
            code = column.vocab_code(predicate.value)
        except TypeError:
            return None
        rows = stats.exact_rows_for_code(code)
        if rows is None:
            return None
        if predicate.op is Op.NE:
            return stats.n_present - rows
        return rows


def table_stats(table) -> TableStats:
    """The (cached) :class:`TableStats` of a table object.

    Tables are treated as immutable by the algorithms, so statistics are
    cached on the instance: any append produces a *new* table object
    (``Table.concat`` / a reloaded ``ShardedTable``), which automatically
    gets fresh statistics — estimates can never survive a data change.
    A table may expose ``plan_column_stats(attribute)`` (the storage layer's
    manifest-derived path) to override the build-from-column default.
    """
    cached = table.__dict__.get("_plan_table_stats")
    if cached is not None:
        return cached
    provider = getattr(table, "plan_column_stats", None)
    stats = TableStats(table, provider=provider)
    table.__dict__["_plan_table_stats"] = stats
    return stats


# ---------------------------------------------------------------------- merging


def merge_column_stats(parts: Sequence[ColumnStats]) -> ColumnStats | None:
    """Combine per-shard statistics of one column into dataset-level stats.

    Counts are summed per bucket/code; numeric histograms concatenate their
    bucket lists (selectivity sums each part's cumulative estimate, so the
    merge loses no per-shard fidelity).  Distinct counts merge conservatively:
    exact for categorical codes (union of counted codes), upper-bounded for
    numeric.  Returns ``None`` for an empty part list.
    """
    parts = [p for p in parts if p is not None]
    if not parts:
        return None
    if isinstance(parts[0], NumericColumnStats):
        present_parts = [p for p in parts if p.minimum is not None]
        n = sum(p.n for p in parts)
        n_missing = sum(p.n_missing for p in parts)
        if not present_parts:
            return NumericColumnStats(n=n, n_missing=n_missing, minimum=None,
                                      maximum=None, n_distinct=0, edges=(),
                                      counts=())
        return _Piecewise(n=n, n_missing=n_missing,
                          minimum=min(p.minimum for p in present_parts),
                          maximum=max(p.maximum for p in present_parts),
                          n_distinct=min(sum(p.n_distinct
                                             for p in present_parts),
                                         n - n_missing),
                          edges=(), counts=(),
                          parts=tuple(present_parts))
    n = sum(p.n for p in parts)
    n_missing = sum(p.n_missing for p in parts)
    counts: dict[int, int] = {}
    for p in parts:
        for code, count in p.counts.items():
            counts[code] = counts.get(code, 0) + count
    other = sum(p.other for p in parts)
    hidden = max((p.n_distinct - len(p.counts) for p in parts), default=0)
    return CategoricalColumnStats(
        n=n, n_missing=n_missing,
        n_distinct=len(counts) + max(0, hidden),
        counts=counts, other=other)


@dataclass(frozen=True)
class _Piecewise(NumericColumnStats):
    """Merged numeric stats: cumulative estimates sum over the shard parts."""

    parts: tuple[NumericColumnStats, ...] = ()

    def _cumulative_le(self, x: float) -> float:
        return sum(p._cumulative_le(x) for p in self.parts)


# ---------------------------------------------------------------------- manifest codec


def stats_to_dict(stats: ColumnStats) -> dict:
    """JSON-compatible manifest encoding (store-code space for categoricals)."""
    if isinstance(stats, NumericColumnStats):
        return {"kind": NUMERIC, "n": stats.n, "n_missing": stats.n_missing,
                "min": stats.minimum, "max": stats.maximum,
                "n_distinct": stats.n_distinct,
                "edges": list(stats.edges), "counts": list(stats.counts)}
    return {"kind": CATEGORICAL, "n": stats.n, "n_missing": stats.n_missing,
            "n_distinct": stats.n_distinct,
            "codes": [int(c) for c in stats.counts],
            "counts": [int(stats.counts[c]) for c in stats.counts],
            "other": stats.other}


def stats_from_dict(spec: dict | None) -> ColumnStats | None:
    """Decode a manifest statistics entry; ``None`` for absent/unknown kinds."""
    if not spec:
        return None
    kind = spec.get("kind")
    if kind == NUMERIC:
        return NumericColumnStats(
            n=int(spec["n"]), n_missing=int(spec["n_missing"]),
            minimum=spec.get("min"), maximum=spec.get("max"),
            n_distinct=int(spec.get("n_distinct", 0)),
            edges=tuple(spec.get("edges", ())),
            counts=tuple(int(c) for c in spec.get("counts", ())))
    if kind == CATEGORICAL:
        return CategoricalColumnStats(
            n=int(spec["n"]), n_missing=int(spec["n_missing"]),
            n_distinct=int(spec.get("n_distinct", 0)),
            counts={int(c): int(f) for c, f in
                    zip(spec.get("codes", ()), spec.get("counts", ()))},
            other=int(spec.get("other", 0)))
    return None


def remap_categorical_codes(stats: CategoricalColumnStats,
                            remap: np.ndarray | None) -> CategoricalColumnStats:
    """Translate frequency codes through a store→sorted code remap array."""
    if remap is None or not stats.counts:
        return stats
    counts = {int(remap[code]): count for code, count in stats.counts.items()}
    return CategoricalColumnStats(n=stats.n, n_missing=stats.n_missing,
                                  n_distinct=stats.n_distinct,
                                  counts=counts, other=stats.other)


# ---------------------------------------------------------------------- shard skip


#: Sentinel: the caller did not pre-resolve the predicate's store code.
UNRESOLVED = object()


def resolve_store_code(value, store_vocab: list | None) -> int | None:
    """The store code of an equality literal, or ``None`` when absent.

    Pre-resolve once per predicate before a per-shard loop — the lookup is
    a linear scan of the append-ordered store vocabulary and must not be
    repeated for every shard.
    """
    try:
        return (store_vocab or []).index(value)
    except (ValueError, TypeError):
        return None


def stats_may_match(stats: ColumnStats | None, predicate: Predicate,
                    store_vocab: list | None = None,
                    eq_code=UNRESOLVED) -> bool:
    """Whether any row summarised by ``stats`` could satisfy ``predicate``.

    The statistics-based twin of
    :func:`repro.storage.zonemap.shard_may_match`: conservative (``True`` on
    any doubt), and strictly complementary — it can prove absence through
    complete frequency tables even when a manifest carries no zone maps.
    ``eq_code`` lets the caller pre-resolve the store code of an equality
    literal outside a per-shard loop.
    """
    if stats is None:
        return True
    if isinstance(stats, NumericColumnStats):
        if stats.n_present == 0:
            return False
        try:
            target = float(predicate.value)
        except (TypeError, ValueError):
            return True  # evaluation will raise the same error it always did
        if math.isnan(target):
            return False
        return _numeric_boundary_possible(stats, predicate.op, target)
    if isinstance(stats, CategoricalColumnStats):
        if stats.n_present == 0:
            return False
        vocab = store_vocab or []
        op = predicate.op
        if op in (Op.EQ, Op.NE):
            code = resolve_store_code(predicate.value, vocab) \
                if eq_code is UNRESOLVED else eq_code
            rows = stats.exact_rows_for_code(code)
            if op is Op.EQ:
                return rows is None or rows > 0
            return rows is None or rows < stats.n_present
        if not stats.exact:
            return True
        for code in stats.counts:
            if code >= len(vocab):
                return True  # stale stats; keep the shard
            try:
                if _ordered_compare(vocab[code], op, predicate.value):
                    return True
            except TypeError:
                return True  # evaluation raises identically; don't hide it
        return False
    return True


def shard_stats_may_match(spec: dict | None, predicate: Predicate,
                          store_vocab: list | None = None) -> bool:
    """Dict-level convenience wrapper over :func:`stats_may_match`.

    Hot paths should parse once (:func:`stats_from_dict`, cached per shard
    handle) and call :func:`stats_may_match` directly.
    """
    if not spec:
        return True
    return stats_may_match(stats_from_dict(spec), predicate, store_vocab)


def _numeric_boundary_possible(stats: NumericColumnStats, op: Op,
                               target: float) -> bool:
    """Guard against zero *estimates* at bucket boundaries being taken as proof.

    The histogram only *proves* emptiness outside ``[min, max]``; a zero
    interpolation inside the range (e.g. ``x < min`` excluded but ``x == min``
    allowed for ``LE``) must not skip the shard.
    """
    lo, hi = stats.minimum, stats.maximum
    if lo is None:
        return False
    if op is Op.EQ:
        return lo <= target <= hi
    if op is Op.NE:
        return not (lo == hi == target)
    if op is Op.LT:
        return lo < target
    if op is Op.GT:
        return hi > target
    if op is Op.LE:
        return lo <= target
    return hi >= target  # GE
