"""Planned scan execution: short-circuit AND over ordered conjuncts.

The executor turns a :class:`~repro.plan.planner.ScanPlan` into row indices:

* the first (most selective × cheapest) conjunct evaluates as a full
  vectorized kernel over the table;
* every later conjunct evaluates **only over the surviving candidate rows**
  (:meth:`~repro.dataframe.Predicate.evaluate_at`), so a selective leading
  predicate collapses the work of everything behind it;
* with a :class:`~repro.dataframe.MaskCache`, conjuncts route through the
  cache instead — full masks are computed once and *reused across scans*
  (repeated subexpressions across queries cost one AND), which beats subset
  evaluation as soon as a predicate recurs.

Candidate indices stay sorted ascending throughout, so
``table.take(scan_indices(...))`` returns **exactly** the rows
``table.select(pattern)`` returns — planning is pure scheduling.  The one
observable difference is error *reach*: a predicate whose evaluation would
raise (e.g. an un-orderable comparison) over rows that an earlier conjunct
already excluded never sees those rows, mirroring what zone-map shard
skipping already does for rows in skipped shards.

Actual per-conjunct selectivities (satisfied fraction of the candidates each
conjunct received) are written back into the plan, which is how
``explain_plan`` reports estimated-vs-actual.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.predicates import Pattern, Predicate
from repro.obs import trace
from repro.plan.config import planner_enabled
from repro.plan.planner import ScanPlan, plan_scan
from repro.plan.stats import TableStats


def scan_indices(table, plan: ScanPlan, mask_cache=None) -> np.ndarray:
    """Row indices satisfying every conjunct, in ascending order."""
    n = table.n_rows
    plan.rows_in = n
    if not plan.conjuncts:
        plan.rows_out = n
        return np.arange(n)
    # One span per conjunct with estimated vs actual selectivity attributes;
    # `traced` is resolved once so the hot loop stays branch-and-go when off.
    traced = trace.enabled()
    first = plan.conjuncts[0]
    with _conjunct_span(first, traced):
        if mask_cache is not None:
            mask = mask_cache.predicate_mask(first.predicate)
        else:
            mask = first.predicate.evaluate(table)
        indices = np.flatnonzero(mask)
        _record(first, n, indices.size, traced)
    for conjunct in plan.conjuncts[1:]:
        with _conjunct_span(conjunct, traced):
            before = indices.size
            if mask_cache is not None:
                satisfied = mask_cache.predicate_mask(
                    conjunct.predicate)[indices]
            else:
                satisfied = conjunct.predicate.evaluate_at(table, indices)
            indices = indices[satisfied]
            _record(conjunct, before, indices.size, traced)
    plan.rows_out = int(indices.size)
    return indices


def _conjunct_span(conjunct, traced: bool):
    if not traced:
        return trace.NOOP
    return trace.trace_span(
        "plan.conjunct", predicate=repr(conjunct.predicate),
        estimated_selectivity=round(conjunct.estimated_selectivity, 6))


def _record(conjunct, candidates_in: int, candidates_out: int,
            traced: bool = False) -> None:
    conjunct.candidates_in = int(candidates_in)
    conjunct.candidates_out = int(candidates_out)
    conjunct.actual_selectivity = (candidates_out / candidates_in
                                   if candidates_in else 0.0)
    if traced:
        trace.set_current_attr(
            actual_selectivity=round(conjunct.actual_selectivity, 6),
            candidates_in=conjunct.candidates_in,
            candidates_out=conjunct.candidates_out)


def shard_scan_indices(table, predicates,
                       masks=None) -> tuple[np.ndarray, list]:
    """One shard's slice of a planned scan: ``(indices, per-conjunct counts)``.

    Runs the already-ordered conjuncts with the same short-circuit AND as
    :func:`scan_indices` over one shard-local table, but records the
    candidate counts into a private list instead of the shared
    :class:`~repro.plan.planner.ScanPlan` — shards execute concurrently, and
    every predicate is row-local, so per-shard counts (and indices, offset
    into the shard) sum/concatenate to exactly the serial whole-table scan
    (:func:`merge_shard_counts`).

    ``masks`` (parallel to ``predicates``; entries may be ``None``) supplies
    precomputed shard-local boolean row masks — committed bitmap indexes
    (see :mod:`repro.adapt`).  A mask entry replaces the conjunct's kernel:
    the first conjunct becomes ``flatnonzero(mask)``, later ones fancy-index
    the mask at the surviving candidates.  Bitmaps are exact row masks, so
    counts and indices are identical to the kernel path's.
    """
    n = table.n_rows
    counts: list[tuple[int, int]] = []
    if not predicates:
        return np.arange(n), counts
    first_mask = masks[0] if masks is not None else None
    if first_mask is not None:
        indices = np.flatnonzero(first_mask)
    else:
        indices = np.flatnonzero(predicates[0].evaluate(table))
    counts.append((n, int(indices.size)))
    for position in range(1, len(predicates)):
        before = int(indices.size)
        mask = masks[position] if masks is not None else None
        if mask is not None:
            satisfied = mask[indices]
        else:
            satisfied = predicates[position].evaluate_at(table, indices)
        indices = indices[satisfied]
        counts.append((before, int(indices.size)))
    return indices, counts


def merge_shard_counts(plan: ScanPlan, rows_in: int,
                       shard_counts: list[list]) -> None:
    """Fold per-shard conjunct counts into the shared plan's actuals.

    Candidate counts are additive across shards (each row belongs to exactly
    one shard), so the merged ``candidates_in`` / ``candidates_out`` —
    and hence every actual selectivity — equal what one serial
    :func:`scan_indices` pass over the concatenated shards records.
    """
    plan.rows_in = rows_in
    rows_out = rows_in
    for position, conjunct in enumerate(plan.conjuncts):
        candidates_in = sum(counts[position][0] for counts in shard_counts)
        candidates_out = sum(counts[position][1] for counts in shard_counts)
        _record(conjunct, candidates_in, candidates_out)
        rows_out = candidates_out
    plan.rows_out = int(rows_out)


def planned_select_with_plan(table, condition, mask_cache=None,
                             stats: TableStats | None = None):
    """``(filtered table, executed ScanPlan | None)`` for one selection.

    Falls back to the oracle ``table.select`` (returning ``None`` for the
    plan) when planning is disabled or the condition is not a conjunctive
    pattern.  Storage-backed tables that implement ``plan_shard_select``
    (:class:`~repro.storage.dataset.ShardedTable`) delegate to it so shard
    skipping and conjunct ordering compose; that path uses the mask cache
    only as a store-code memo (repeated hot predicates skip the store-vocab
    lookup) — full-table *masks* would force-decode the very shards the zone
    maps and statistics are there to skip.
    """
    if not planner_enabled() or not isinstance(condition,
                                               (Pattern, Predicate)):
        return table.select(condition), None
    shard_select = getattr(table, "plan_shard_select", None)
    if shard_select is not None:
        return shard_select(condition, mask_cache=mask_cache)
    plan = plan_scan(table, condition, stats=stats)
    indices = scan_indices(table, plan, mask_cache=mask_cache)
    return table.take(indices), plan


def planned_select(table, condition, mask_cache=None):
    """The filtered table alone (drop-in for ``table.select(condition)``)."""
    filtered, _ = planned_select_with_plan(table, condition,
                                           mask_cache=mask_cache)
    return filtered
