"""repro — a reproduction of CauSumX: summarized causal explanations for aggregate views.

The package implements the CauSumX framework (SIGMOD 2024) together with every
substrate it relies on: a columnar table engine, a group-by-average query
layer, causal DAGs with backdoor adjustment, regression-based CATE estimation,
causal discovery, Apriori and lattice pattern mining, the LP-rounding
optimiser, the paper's baselines, and generators for the evaluation datasets.

Quickstart
----------
>>> from repro import CauSumX, load_dataset, render_summary
>>> bundle = load_dataset("stackoverflow", n=2000)
>>> summary = CauSumX(bundle.table, bundle.dag).explain(bundle.query)
>>> print(render_summary(summary, outcome="annual salary"))
"""

from repro.core import (
    CauSumX,
    CauSumXConfig,
    ExplanationPattern,
    ExplanationSummary,
    brute_force,
    brute_force_lp,
    greedy_last_step,
    render_summary,
)
from repro.dataframe import (
    CacheStats,
    Column,
    MaskCache,
    Op,
    Pattern,
    Predicate,
    Table,
    read_csv,
    write_csv,
)
from repro.datasets import DatasetBundle, list_datasets, load_dataset
from repro.graph import CausalDAG
from repro.causal import CATEEstimator, EffectEstimate, estimate_ate, estimate_cate
from repro.sql import AggregateView, GroupByAvgQuery, parse_query

__version__ = "1.0.0"

__all__ = [
    "CauSumX",
    "CauSumXConfig",
    "ExplanationPattern",
    "ExplanationSummary",
    "brute_force",
    "brute_force_lp",
    "greedy_last_step",
    "render_summary",
    "CacheStats",
    "Column",
    "MaskCache",
    "Op",
    "Pattern",
    "Predicate",
    "Table",
    "read_csv",
    "write_csv",
    "DatasetBundle",
    "list_datasets",
    "load_dataset",
    "CausalDAG",
    "CATEEstimator",
    "EffectEstimate",
    "estimate_ate",
    "estimate_cate",
    "AggregateView",
    "GroupByAvgQuery",
    "parse_query",
    "__version__",
]
