"""Shared morsel-driven worker pool for shard-parallel execution.

Storage shards are memory-mapped and the predicate / group-by kernels over
them are numpy calls that release the GIL, so one thread per shard genuinely
overlaps: decode (page-cache reads), compare, and gather all run
concurrently.  This module owns the *one* process-wide pool every layer
shares — planned shard scans (:meth:`ShardedTable.plan_shard_select
<repro.storage.dataset.ShardedTable.plan_shard_select>`), oracle shard
filters, lazy column decodes, aggregate-view group-by partials, and the
mask-cache cold path the treatment miner scans through.

Sizing
------
The pool width is resolved per batch, in priority order: the programmatic
override (:func:`set_workers` / the :func:`workers` context manager), the
``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``.  Width 1
*is* the serial code: :func:`map_morsels` degenerates to a list
comprehension on the calling thread, touching no executor and no extra
thread — the invariant every byte-identity test leans on.

Nesting
-------
Tasks can themselves reach code that fans out (a shard filter evaluates
predicates over lazy columns whose loader fans out per shard).  A morsel
submitted from a pool worker runs **serially on that worker** instead of
re-entering the pool: a bounded pool whose workers wait on their own
children deadlocks, and the outer fan-out already owns the parallelism.
The treatment-mining pool (``CauSumXConfig.n_jobs``) is a *separate*
executor, so its threads submit here like any other caller and the process
runs at most ``n_jobs + REPRO_WORKERS`` worker threads — bounded, no
pool-in-pool explosion.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from repro.analysis.lockwatch import named_lock
from repro.obs import trace
from repro.obs.registry import REGISTRY

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable naming the default pool width (positive integer).
ENV_VAR = "REPRO_WORKERS"

_tls = threading.local()  # .in_worker is True on morsel-pool threads only


def default_workers() -> int:
    """The pool width when neither the override nor ``REPRO_WORKERS`` is set."""
    return max(1, os.cpu_count() or 1)


def _env_workers() -> int | None:
    raw = os.environ.get(ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_VAR} must be a positive integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{ENV_VAR} must be a positive integer, got {raw!r}")
    return value


def _mark_worker() -> None:
    _tls.in_worker = True


def in_worker() -> bool:
    """True on a morsel-pool thread (nested fan-out must run serially)."""
    return getattr(_tls, "in_worker", False)


class _MorselPool:
    """Lifecycle of the process-wide executor; width changes rebuild it."""

    def __init__(self):
        self._lock = named_lock("_MorselPool._lock")
        self._executor: ThreadPoolExecutor | None = None  # guarded-by: _lock
        self._width = 0  # guarded-by: _lock
        self._override: int | None = None  # guarded-by: _lock

    def worker_count(self) -> int:
        with self._lock:
            override = self._override
        if override is not None:
            return override
        env = _env_workers()
        return env if env is not None else default_workers()

    def set_override(self, count: int | None) -> int | None:
        """Install a programmatic width override; returns the previous one."""
        if count is not None and count < 1:
            raise ValueError(f"worker count must be positive, got {count}")
        with self._lock:
            previous = self._override
            self._override = count
            return previous

    def executor(self, width: int) -> ThreadPoolExecutor:
        """The shared executor at ``width`` workers, rebuilt on width change.

        The displaced executor (if any) is shut down without waiting — width
        only changes between batches (tests, reconfiguration), never while a
        batch of this pool's own morsels is in flight.
        """
        stale = None
        with self._lock:
            if self._executor is None or self._width != width:
                stale = self._executor
                self._executor = ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="repro-morsel",
                    initializer=_mark_worker)
                self._width = width
            current = self._executor
        if stale is not None:
            stale.shutdown(wait=False)
        return current


_POOL = _MorselPool()


def worker_count() -> int:
    """The pool width the next :func:`map_morsels` batch will use."""
    return _POOL.worker_count()


def set_workers(count: int | None) -> None:
    """Pin the pool width programmatically (``None`` = back to env/cpu)."""
    _POOL.set_override(count)


@contextmanager
def workers(count: int | None):
    """Temporarily pin the pool width (tests and benchmarks)."""
    previous = _POOL.set_override(count)
    try:
        yield
    finally:
        _POOL.set_override(previous)


def map_morsels(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    """Apply ``fn`` to every item, returning results in input order.

    Runs on the shared pool only when that can help; otherwise serially on
    the calling thread: width 1 (exactly the serial list comprehension),
    zero or one item, or a caller that is itself a pool worker (see the
    module docstring on nesting).  An exception propagates from the first
    failing item in *input* order — the same error the serial loop raises —
    and cancels any morsel that has not started yet.
    """
    items = list(items)
    width = _POOL.worker_count()
    if width <= 1 or len(items) <= 1 or in_worker():
        GLOBAL_PARALLEL_STATS.record_batch(len(items), workers=1)
        return [fn(item) for item in items]
    executor = _POOL.executor(width)
    if trace.enabled():
        # Carry the submitter's span context onto the worker threads so a
        # morsel's spans hang off the request that fanned out.  One context
        # copy per morsel — a Context cannot be entered concurrently.
        submitted = time.perf_counter_ns()
        with trace.trace_span("parallel.map", morsels=len(items),
                              workers=min(width, len(items))):
            futures = [executor.submit(contextvars.copy_context().run,
                                       _traced_morsel, fn, item, submitted)
                       for item in items]
            try:
                results = [future.result() for future in futures]
            finally:
                for future in futures:
                    future.cancel()
    else:
        futures = [executor.submit(fn, item) for item in items]
        try:
            results = [future.result() for future in futures]
        finally:
            for future in futures:
                future.cancel()
    GLOBAL_PARALLEL_STATS.record_batch(len(items),
                                       workers=min(width, len(items)))
    return results


def _traced_morsel(fn: Callable[[T], R], item: T, submitted_ns: int) -> R:
    """Run one morsel under its own span, recording time spent queued."""
    wait_seconds = (time.perf_counter_ns() - submitted_ns) / 1e9
    REGISTRY.histogram("repro_parallel_morsel_wait_seconds").observe(
        wait_seconds)
    with trace.trace_span("parallel.morsel",
                          queue_wait_ms=round(wait_seconds * 1000.0, 3)):
        return fn(item)


# ---------------------------------------------------------------------- accounting


@dataclass
class ParallelStats:
    """Process-wide morsel-pool counters (thread-safe), surfaced by the engine."""

    batches: int = 0  # guarded-by: _lock
    serial_batches: int = 0  # guarded-by: _lock
    morsels: int = 0  # guarded-by: _lock
    max_workers_used: int = 0  # guarded-by: _lock
    partials_served: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=lambda: named_lock("ParallelStats._lock"), repr=False)

    def record_batch(self, morsels: int, workers: int) -> None:
        with self._lock:
            self.batches += 1
            self.morsels += morsels
            if workers <= 1:
                self.serial_batches += 1
            if workers > self.max_workers_used:
                self.max_workers_used = workers

    def record_partials_served(self, count: int = 1) -> None:
        with self._lock:
            self.partials_served += count

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "batches": self.batches,
                "serial_batches": self.serial_batches,
                "morsels": self.morsels,
                "max_workers_used": self.max_workers_used,
                "partials_served": self.partials_served,
            }

    def reset(self) -> None:
        with self._lock:
            self.batches = self.serial_batches = self.morsels = 0
            self.max_workers_used = self.partials_served = 0


#: One process-wide collector — engines report it under ``stats()["parallel"]``.
GLOBAL_PARALLEL_STATS = ParallelStats()

# The same counters under the unified repro_<layer>_<name> vocabulary; the
# registry pulls them on scrape, so nothing is double-counted or moved.
REGISTRY.register_provider(
    "parallel",
    lambda: {f"repro_parallel_{key}": value
             for key, value in GLOBAL_PARALLEL_STATS.snapshot().items()})
