"""Shard-parallel morsel-driven execution (see :mod:`repro.parallel.pool`)."""

from repro.parallel.pool import (
    ENV_VAR,
    GLOBAL_PARALLEL_STATS,
    ParallelStats,
    default_workers,
    in_worker,
    map_morsels,
    set_workers,
    worker_count,
    workers,
)

__all__ = [
    "ENV_VAR",
    "GLOBAL_PARALLEL_STATS",
    "ParallelStats",
    "default_workers",
    "in_worker",
    "map_morsels",
    "set_workers",
    "worker_count",
    "workers",
]
