"""ASCII bar charts of aggregate views (the Figure 1 visual, in the terminal).

The annotated variant maps each group to the explanation patterns covering it
using a per-pattern marker character — the textual analogue of the colours and
textures used in the paper's Figure 1.
"""

from __future__ import annotations

from repro.core.patterns import ExplanationSummary
from repro.sql import AggregateView

MARKERS = "*#/+-=~^%@"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    length = int(round(width * max(value, 0.0) / maximum))
    return "█" * length


def view_barchart(view: AggregateView, width: int = 40) -> str:
    """Render the aggregate view as a horizontal ASCII bar chart."""
    if view.m == 0:
        return "(empty view)"
    maximum = max(group.average for group in view)
    label_width = max(len(group.label()) for group in view)
    lines = []
    for group in sorted(view.groups, key=lambda g: -g.average):
        bar = _bar(group.average, maximum, width)
        lines.append(f"{group.label():<{label_width}} | {bar} {group.average:,.4g}")
    return "\n".join(lines)


def annotated_view_barchart(view: AggregateView, summary: ExplanationSummary,
                            width: int = 40) -> str:
    """Bar chart with one marker per explanation pattern covering each group.

    A legend mapping markers to grouping patterns is appended; groups covered
    by no pattern are marked with ``·`` (the paper's uncovered bars).
    """
    if view.m == 0:
        return "(empty view)"
    assignment = summary.group_assignment()
    maximum = max(group.average for group in view)
    label_width = max(len(group.label()) for group in view)
    pattern_markers = {i: MARKERS[i % len(MARKERS)]
                       for i in range(len(summary.patterns))}
    lines = []
    for group in sorted(view.groups, key=lambda g: -g.average):
        indices = assignment.get(group.key, [])
        markers = "".join(pattern_markers[i] for i in indices) or "·"
        bar = _bar(group.average, maximum, width)
        lines.append(f"{group.label():<{label_width}} [{markers:<3}] | "
                     f"{bar} {group.average:,.4g}")
    lines.append("")
    lines.append("legend:")
    for i, pattern in enumerate(summary.patterns):
        lines.append(f"  {pattern_markers[i]}  {pattern.grouping_pattern!r}")
    if any(not assignment.get(group.key) for group in view):
        lines.append("  ·  not covered by the summary")
    return "\n".join(lines)
