"""Terminal-friendly visualisations of aggregate views and explanation summaries."""

from repro.viz.barchart import view_barchart, annotated_view_barchart

__all__ = ["view_barchart", "annotated_view_barchart"]
