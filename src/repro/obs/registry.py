"""Unified metrics registry: counters, gauges, log-bucketed histograms.

One process-wide :data:`REGISTRY` absorbs the serving stack's scattered
statistics under a single ``repro_<layer>_<name>`` naming scheme:

* **Owned metrics** — counters/gauges/histograms created through
  :meth:`MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge` /
  :meth:`~MetricsRegistry.histogram` and updated at the instrumentation
  point (e.g. ``repro_admission_queue_wait_seconds``).
* **Providers** — live read-outs of the pre-existing stat objects
  (``GLOBAL_PLANNER_STATS``, ``GLOBAL_PARALLEL_STATS``) registered by their
  owning modules; the registry renames their keys on export without moving
  the counters, so the old surfaces (`engine.stats()` sections, snapshot
  dictionaries) keep working unchanged — the old keys are the alias layer
  for this release.

Histograms are **log-bucketed**: geometric bucket bounds (10 per decade
from 1µs to 1000s) give p50/p99 exact within one bucket's resolution at
constant memory, with no sample-window truncation under sustained load.
Both the JSON snapshot and the Prometheus text exposition (with
``_bucket``/``_sum``/``_count`` lines) derive from the same counts.

:func:`unified_engine_metrics` flattens one engine's ``stats()`` dictionary
into the same naming scheme — per-engine cache levels cannot live in the
process-global registry (a server holds one engine per tenant).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable

from repro.analysis.lockwatch import named_lock

#: Histogram bucket geometry: 10 buckets per decade over [1e-6, 1e3] seconds.
_BUCKETS_PER_DECADE = 10
_LOW_EXP = -6
_HIGH_EXP = 3


def _default_bounds() -> tuple[float, ...]:
    exponents = range(_LOW_EXP * _BUCKETS_PER_DECADE,
                      _HIGH_EXP * _BUCKETS_PER_DECADE + 1)
    return tuple(10.0 ** (e / _BUCKETS_PER_DECADE) for e in exponents)


_DEFAULT_BOUNDS = _default_bounds()


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = named_lock("Counter._lock")
        self._value = 0  # guarded-by: _lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = named_lock("Gauge._lock")
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LogHistogram:
    """Log-bucketed histogram: exact quantiles within bucket resolution.

    Observations land in geometric buckets (``_DEFAULT_BOUNDS`` upper
    bounds); values below the lowest bound count into the first bucket,
    values above the highest into an overflow bucket.  ``quantile(q)``
    returns the upper bound of the bucket holding the q-th observation —
    within one bucket ratio (~26% at 10 buckets/decade) of the true value,
    at constant memory and with *every* observation retained in the counts
    (no ring-buffer truncation).
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_count",
                 "_sum")

    def __init__(self, name: str = "", labels: tuple = (),
                 bounds: tuple[float, ...] | None = None):
        self.name = name
        self.labels = labels
        self.bounds = bounds if bounds is not None else _DEFAULT_BOUNDS
        self._lock = named_lock("LogHistogram._lock")
        self._counts = [0] * (len(self.bounds) + 1)  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """The q-quantile's bucket upper bound (0.0 when empty)."""
        with self._lock:
            total = self._count
            if not total:
                return 0.0
            target = q * total
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative >= target and count:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return float("inf")  # overflow bucket
            return self.bounds[-1]  # pragma: no cover - defensive

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at ``+Inf``.

        Only buckets up to the highest non-empty one are materialised (plus
        the terminal ``+Inf``), keeping the exposition compact; cumulative
        counts are unaffected by the omitted empty tail.
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
        last = max((i for i, c in enumerate(counts) if c), default=-1)
        out: list[tuple[float, int]] = []
        cumulative = 0
        for index in range(min(last + 1, len(self.bounds))):
            cumulative += counts[index]
            out.append((self.bounds[index], cumulative))
        out.append((float("inf"), total))
        return out

    def snapshot(self) -> dict:
        return {"count": self.count, "sum": round(self.sum, 6),
                "p50": self.quantile(0.50), "p99": self.quantile(0.99)}


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class MetricsRegistry:
    """Find-or-create registry of named metrics plus live stat providers."""

    def __init__(self):
        self._lock = named_lock("MetricsRegistry._lock")
        self._metrics: dict[tuple, object] = {}  # guarded-by: _lock
        self._providers: dict[str, Callable[[], dict]] = {}  # guarded-by: _lock

    def _get_or_create(self, kind: type, name: str, labels: dict | None):
        key_labels = tuple(sorted((labels or {}).items()))
        key = (kind.__name__, name, key_labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = kind(name, key_labels)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> LogHistogram:
        return self._get_or_create(LogHistogram, name, labels)

    def register_provider(self, name: str,
                          provider: Callable[[], dict]) -> None:
        """Register a live read-out: ``provider() -> {metric_name: number}``.

        Providers let existing stat objects export under the unified naming
        scheme without moving their counters; re-registering a name replaces
        the provider (module reloads in tests).
        """
        with self._lock:
            self._providers[name] = provider

    def snapshot(self) -> dict:
        """JSON-ready view: owned metrics plus every provider's read-out."""
        with self._lock:
            metrics = list(self._metrics.values())
            providers = dict(self._providers)
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for metric in metrics:
            rendered = metric.name + _label_suffix(metric.labels)
            if isinstance(metric, Counter):
                counters[rendered] = metric.value
            elif isinstance(metric, Gauge):
                gauges[rendered] = metric.value
            else:
                histograms[rendered] = metric.snapshot()
        out = {"counters": dict(sorted(counters.items())),
               "gauges": dict(sorted(gauges.items())),
               "histograms": dict(sorted(histograms.items())),
               "providers": {}}
        for name in sorted(providers):
            try:
                values = providers[name]()
            except Exception:  # noqa: BLE001 - a dead provider must not kill /metrics
                continue
            out["providers"][name] = dict(sorted(values.items()))
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the registry (histogram buckets included)."""
        snap = self.snapshot()
        lines: list[str] = []
        typed: set[str] = set()

        def declare(name: str, kind: str) -> None:
            base = name.split("{", 1)[0]
            if base not in typed:
                typed.add(base)
                lines.append(f"# TYPE {base} {kind}")

        for name, value in snap["counters"].items():
            declare(name, "counter")
            lines.append(f"{name} {value}")
        for name, value in snap["gauges"].items():
            declare(name, "gauge")
            lines.append(f"{name} {value:g}")
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if not isinstance(metric, LogHistogram):
                continue
            lines.extend(render_histogram_lines(
                metric.name, metric, labels=metric.labels))
        for provider, values in snap.get("providers", {}).items():
            for name, value in values.items():
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    continue
                declare(name, "gauge")
                lines.append(f"{name} {value:g}")
        return "\n".join(lines) + "\n"


def render_histogram_lines(family: str, histogram: LogHistogram,
                           labels: tuple = ()) -> list[str]:
    """Prometheus ``_bucket``/``_sum``/``_count`` lines for one histogram."""
    base = _label_suffix(labels)

    def with_le(upper: float) -> str:
        le = "+Inf" if upper == float("inf") else f"{upper:g}"
        pairs = list(labels) + [("le", le)]
        inner = ",".join(f'{k}="{v}"' for k, v in pairs)
        return "{" + inner + "}"

    lines = [f"# TYPE {family} histogram"]
    for upper, cumulative in histogram.bucket_counts():
        lines.append(f"{family}_bucket{with_le(upper)} {cumulative}")
    lines.append(f"{family}_sum{base} {histogram.sum:.6f}")
    lines.append(f"{family}_count{base} {histogram.count}")
    return lines


#: The process-wide registry every layer exports through.
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------- engine naming


#: Unified-name mapping of per-engine ``stats()`` sections (the old keys stay
#: in place as this release's alias layer; these are the canonical names).
_CACHE_LEVELS = ("plan", "view", "population", "summary")
_CACHE_FIELDS = ("hits", "misses", "evictions", "invalidations", "entries")


def unified_engine_metrics(stats: dict) -> dict:
    """Flatten one engine's ``stats()`` dict into ``repro_<layer>_<name>`` keys.

    Covers the cache levels, serving counters, mask caches, and the global
    planner/parallel sections the engine already embeds.  Non-numeric values
    are skipped — the result is a flat ``{name: number}`` mapping.
    """
    out: dict[str, float] = {}
    for level in _CACHE_LEVELS:
        section = stats.get(f"{level}_cache") or {}
        for fieldname in _CACHE_FIELDS:
            if fieldname in section:
                out[f"repro_engine_{level}_cache_{fieldname}"] = \
                    section[fieldname]
    out["repro_engine_computations_total"] = stats.get("computations", 0)
    out["repro_engine_coalesced_total"] = stats.get("coalesced", 0)
    out["repro_engine_batch_deduped_total"] = stats.get("batch_deduped", 0)
    masks = stats.get("mask_caches") or {}
    for fieldname in ("hits", "misses", "entries", "bytes"):
        if fieldname in masks:
            out[f"repro_maskcache_{fieldname}"] = masks[fieldname]
    for section_name, prefix in (("planner", "repro_planner"),
                                 ("parallel", "repro_parallel")):
        section = stats.get(section_name) or {}
        for key, value in section.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"{prefix}_{key}"] = value
    http = stats.get("http") or {}
    if "requests_total" in http:
        out["repro_http_requests_total"] = http["requests_total"]
    if "shed_total" in http:
        out["repro_http_shed_total"] = http["shed_total"]
    return out
