"""Span-based structured tracing with a strict no-op fast path.

One request produces one *span tree*: the front end opens a root span
(:func:`new_trace`), every layer underneath opens child spans
(:func:`trace_span`), and the assembled tree — names, monotonic durations,
attributes — answers "where did this query's 300ms go?" without a profiler.

Propagation is :mod:`contextvars`-based: the current span travels with the
logical call, not the thread.  Fan-out points (``map_morsels`` workers,
``explain_many``'s thread pool) run each task inside
``contextvars.copy_context()``, so spans opened on a worker thread attach to
the submitting request's tree.  Appending a finished child to its parent is
a single ``list.append`` (atomic under the GIL), so concurrent workers never
need a lock.

Tracing is **off by default** (``REPRO_TRACE=0``) and the disabled path is a
strict no-op: :func:`trace_span` returns one shared, stateless context
manager — no span allocation, no contextvar access, no timestamp — so hot
kernels pay a boolean check and nothing else.  Callers that would build
attribute dictionaries for a span should gate on :func:`enabled` first.
:func:`set_enabled` / the :func:`tracing` context manager override the
environment programmatically (tests, benchmarks).
"""

from __future__ import annotations

import os
import time
import uuid
from contextvars import ContextVar

#: Environment variable enabling tracing ("1"/"true"/"yes"/"on" = enabled).
ENV_VAR = "REPRO_TRACE"

_TRUE = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "0").strip().lower() in _TRUE


#: Programmatic override: None follows the environment (module-level flag,
#: written only by set_enabled(); plain reads are atomic under the GIL).
_override: bool | None = None


def enabled() -> bool:
    """Whether tracing is on (programmatic override, else ``REPRO_TRACE``)."""
    if _override is not None:
        return _override
    return _env_enabled()


def set_enabled(on: bool | None) -> None:
    """Force tracing on/off programmatically; ``None`` follows the env."""
    global _override
    _override = on


class tracing:
    """Context manager pinning the tracing state (tests and benchmarks)."""

    def __init__(self, on: bool = True):
        self._on = on
        self._previous: bool | None = None

    def __enter__(self):
        self._previous = _override
        set_enabled(self._on)
        return self

    def __exit__(self, *exc):
        set_enabled(self._previous)
        return False


def new_trace_id() -> str:
    """A fresh 16-hex-char trace identifier."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed node of a request's span tree."""

    __slots__ = ("name", "trace_id", "attrs", "children", "parent",
                 "_start_ns", "duration_ms")

    def __init__(self, name: str, trace_id: str | None = None,
                 parent: "Span | None" = None, attrs: dict | None = None):
        self.name = name
        self.parent = parent
        self.trace_id = trace_id if trace_id is not None else \
            (parent.trace_id if parent is not None else None)
        self.attrs = attrs if attrs is not None else {}
        self.children: list[Span] = []  # appended by finishing children
        self._start_ns = 0
        self.duration_ms: float | None = None

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes on this span."""
        self.attrs.update(attrs)
        return self

    def root(self) -> "Span":
        span = self
        while span.parent is not None:
            span = span.parent
        return span

    def to_dict(self) -> dict:
        """JSON-ready view of this span and its (finished) children."""
        out: dict = {"name": self.name}
        if self.duration_ms is not None:
            out["duration_ms"] = round(self.duration_ms, 3)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Span({self.name!r}, duration_ms={self.duration_ms}, "
                f"children={len(self.children)})")


class _NoopSpan:
    """The span every disabled ``with trace_span(...)`` yields: all no-ops."""

    __slots__ = ()
    name = ""
    trace_id = None
    duration_ms = None
    attrs: dict = {}
    children: list = []
    parent = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def root(self) -> "_NoopSpan":
        return self

    def to_dict(self) -> dict:
        return {}


class _NoopContext:
    """Shared, stateless context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()
#: The one disabled-path context manager (reentrant: it holds no state).
NOOP = _NoopContext()

#: The span the current logical call is inside (travels via copy_context()).
_CURRENT: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


class _SpanContext:
    """Live tracing context manager: opens a span, times it, links the tree."""

    __slots__ = ("_name", "_trace_id", "_attrs", "_span", "_token")

    def __init__(self, name: str, trace_id: str | None, attrs: dict):
        self._name = name
        self._trace_id = trace_id
        self._attrs = attrs
        self._span: Span | None = None
        self._token = None

    def __enter__(self) -> Span:
        parent = _CURRENT.get()
        span = Span(self._name, trace_id=self._trace_id, parent=parent,
                    attrs=self._attrs)
        if span.trace_id is None and parent is None:
            # A root without an externally-assigned id (e.g. the engine
            # called directly, no serving front) still gets a trace id so
            # telemetry records stay correlatable.
            span.trace_id = new_trace_id()
        span._start_ns = time.perf_counter_ns()
        self._span = span
        self._token = _CURRENT.set(span)
        return span

    def __exit__(self, *exc) -> bool:
        span = self._span
        span.duration_ms = (time.perf_counter_ns() - span._start_ns) / 1e6
        _CURRENT.reset(self._token)
        if span.parent is not None:
            # list.append is atomic under the GIL: workers finishing
            # concurrently interleave order, never corrupt the list.
            span.parent.children.append(span)
        return False


def trace_span(name: str, **attrs):
    """Open a child span under the current one (no-op when disabled).

    Usage::

        with trace_span("engine.view_materialize", fingerprint=fp) as span:
            ...
            span.set(rows=view.table.n_rows)
    """
    if not enabled():
        return NOOP
    return _SpanContext(name, None, attrs)


def new_trace(name: str, trace_id: str | None = None, **attrs):
    """Open a *root* span carrying ``trace_id`` (no-op when disabled).

    Front ends call this once per request; ``trace_id`` defaults to a fresh
    :func:`new_trace_id`.  Nested calls start a fresh subtree with their own
    trace id (the previous context is restored on exit).
    """
    if not enabled():
        return NOOP
    return _SpanContext(name, trace_id or new_trace_id(), attrs)


def current_span() -> Span | None:
    """The span the calling context is inside, or ``None``."""
    return _CURRENT.get()


def current_root() -> Span | None:
    """The root span of the current trace, or ``None``."""
    span = _CURRENT.get()
    return span.root() if span is not None else None


def current_trace_id() -> str | None:
    """The trace id of the current request, or ``None``."""
    span = _CURRENT.get()
    return span.trace_id if span is not None else None


def set_root_attr(**attrs) -> None:
    """Attach attributes to the current trace's root span (if tracing)."""
    span = _CURRENT.get()
    if span is not None:
        span.root().set(**attrs)


def set_current_attr(**attrs) -> None:
    """Attach attributes to the current span (if tracing)."""
    span = _CURRENT.get()
    if span is not None:
        span.set(**attrs)


def span_dict(span) -> dict | None:
    """``span.to_dict()`` for real spans, ``None`` for the no-op span."""
    if span is None or span is NOOP_SPAN:
        return None
    return span.to_dict()
