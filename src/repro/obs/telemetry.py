"""Persisted per-store query telemetry: size-capped, rotating JSON lines.

One :class:`TelemetryLog` lives under ``<store>/telemetry/`` and receives
one record per served explain/batch query: fingerprint, chosen plan with
per-conjunct estimated vs actual selectivities, shard skip/scan counts,
cache-level outcomes, admission queue wait, and the request's span-tree
timings.  ROADMAP item 3 (adaptive re-planning) reads this log back — every
record carries the dataset name and data version, so the est/actual history
can be filtered per dataset version.

Durability model: appends go to ``queries-<seq>.jsonl`` (``<seq>`` is the
rotation sequence number) entirely **outside the manifest critical path** —
the log has its own lock and its own files, and a failed telemetry write
never fails the query it describes (the engine swallows ``OSError`` here and
counts it).  When the active file exceeds ``max_bytes`` it is closed and the
next sequence number opened; only the newest ``max_files`` files are kept.

Reading is crash-tolerant: a process killed mid-append leaves a torn final
line, and a leftover file from an older run may interleave with newer
sequences — :func:`read_records` skips unparseable lines (counting them)
and walks files in sequence order, so consumers (``repro obs``) always see
every intact record.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterator

from repro.analysis.lockwatch import named_lock

#: Telemetry file name shape: queries-<rotation sequence>.jsonl
FILE_RE = re.compile(r"^queries-(\d{6})\.jsonl$")

DEFAULT_MAX_BYTES = 4 << 20
DEFAULT_MAX_FILES = 4

#: Env var overriding whether telemetry records are persisted ("0"/"1");
#: unset = follow the tracer (REPRO_TRACE).
ENV_VAR = "REPRO_TELEMETRY"


def telemetry_enabled() -> bool:
    """Whether query telemetry should be persisted.

    ``REPRO_TELEMETRY`` decides when set; otherwise telemetry follows the
    tracer's enabled state, so ``REPRO_TRACE=1`` turns on the full
    observability stack in one switch and the default (everything off)
    keeps the serving path byte-identical and allocation-free.
    """
    import os

    from repro.obs import trace

    raw = os.environ.get(ENV_VAR)
    if raw is not None and raw.strip() != "":
        return raw.strip().lower() in ("1", "true", "yes", "on")
    return trace.enabled()


def _file_name(sequence: int) -> str:
    return f"queries-{sequence:06d}.jsonl"


class TelemetryLog:
    """Rotating JSON-lines sink for query-telemetry records (thread-safe)."""

    def __init__(self, directory: str | Path,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 max_files: int = DEFAULT_MAX_FILES):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if max_files < 1:
            raise ValueError("max_files must be at least 1")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._lock = named_lock("TelemetryLog._lock")
        self._handle = None  # guarded-by: _lock
        self._sequence = 0  # guarded-by: _lock
        self._size = 0  # guarded-by: _lock
        self._written = 0  # guarded-by: _lock
        self._errors = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ writing

    def record(self, payload: dict) -> bool:
        """Append one record; ``True`` when it was durably written.

        Never raises on I/O failure — telemetry must not fail the query it
        describes.  Failed appends are counted under ``stats()["errors"]``.
        """
        line = json.dumps(payload, default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            try:
                if self._handle is None:
                    self._open_locked()
                if self._size + len(data) > self.max_bytes and self._size > 0:
                    self._rotate_locked()
                self._handle.write(data)
                self._handle.flush()
                self._size += len(data)
                self._written += 1
                return True
            except OSError:
                self._errors += 1
                return False

    def _open_locked(self) -> None:  # guarded-by: _lock
        """Open (resuming) the highest-sequence file, rotating if it is full.

        Leftover files from a crashed process are resumed, not clobbered:
        appends continue after any torn final line, which readers skip.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        sequences = sorted(self._sequences())
        self._sequence = sequences[-1] if sequences else 0
        path = self.directory / _file_name(self._sequence)
        self._size = path.stat().st_size if path.exists() else 0
        if self._size >= self.max_bytes:
            self._sequence += 1
            self._size = 0
            path = self.directory / _file_name(self._sequence)
        self._handle = path.open("ab")
        if self._size and not self._ends_with_newline(path):
            # Terminate a torn final line left by a crashed writer, so the
            # next record starts on its own line (readers skip the torn
            # one either way).
            self._handle.write(b"\n")
            self._handle.flush()
            self._size += 1
        self._prune_locked()

    @staticmethod
    def _ends_with_newline(path: Path) -> bool:
        with path.open("rb") as probe:
            probe.seek(-1, 2)
            return probe.read(1) == b"\n"

    def _rotate_locked(self) -> None:  # guarded-by: _lock
        self._handle.close()
        self._sequence += 1
        self._size = 0
        self._handle = (self.directory / _file_name(self._sequence)).open("ab")
        self._prune_locked()

    def _prune_locked(self) -> None:  # guarded-by: _lock
        sequences = sorted(self._sequences())
        for stale in sequences[:-self.max_files]:
            try:
                (self.directory / _file_name(stale)).unlink()
            except OSError:
                self._errors += 1

    def _sequences(self) -> list[int]:
        if not self.directory.exists():
            return []
        out = []
        for path in self.directory.iterdir():
            match = FILE_RE.match(path.name)
            if match:
                out.append(int(match.group(1)))
        return out

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------ reading

    def files(self) -> list[Path]:
        """Telemetry files in rotation order (oldest first)."""
        return [self.directory / _file_name(s)
                for s in sorted(self._sequences())]

    def read(self) -> tuple[list[dict], int]:
        """``(records, corrupt_line_count)`` across all retained files."""
        return read_records(self.directory)

    def stats(self) -> dict:
        with self._lock:
            written, errors = self._written, self._errors
        files = self.files()
        return {"files": len(files),
                "bytes": sum(p.stat().st_size for p in files if p.exists()),
                "written": written, "errors": errors}


def iter_records(directory: str | Path) -> Iterator[dict | None]:
    """Yield each parsed record, ``None`` per corrupt/torn line."""
    directory = Path(directory)
    if not directory.exists():
        return
    names = sorted((int(m.group(1)), p) for p in directory.iterdir()
                   if (m := FILE_RE.match(p.name)))
    for _, path in names:
        try:
            raw = path.read_bytes()
        except OSError:
            continue
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                yield None
                continue
            yield record if isinstance(record, dict) else None


def read_records(directory: str | Path) -> tuple[list[dict], int]:
    """All intact records in rotation order plus the corrupt-line count."""
    records: list[dict] = []
    corrupt = 0
    for record in iter_records(directory):
        if record is None:
            corrupt += 1
        else:
            records.append(record)
    return records, corrupt


class TelemetryReader:
    """Version-filtered reading + per-conjunct aggregation of telemetry.

    The consumer-facing API over the raw JSONL files: ``repro obs`` and the
    adaptive warm start (:mod:`repro.adapt`) both go through it instead of
    parsing lines themselves.  When ``versions`` maps dataset names to their
    current committed manifest versions, records for unknown datasets or
    with a data version outside ``[min_versions.get(name, 0), versions[name]]``
    are **skipped as stale**: telemetry files outlive store rebuilds (the
    log is outside the manifest protocol by design), so a re-imported store
    can see leftover records whose versions never existed in its history.
    Without ``versions`` every intact record passes (bare-directory use).
    """

    def __init__(self, directory: str | Path,
                 versions: dict[str, int] | None = None,
                 min_versions: dict[str, int] | None = None):
        self.directory = Path(directory)
        self.versions = versions
        self.min_versions = min_versions or {}

    def _fresh(self, record: dict) -> bool:
        if self.versions is None:
            return True
        dataset = record.get("dataset")
        version = record.get("version")
        if dataset not in self.versions or not isinstance(version, int):
            return False
        return self.min_versions.get(dataset, 0) <= version <= \
            self.versions[dataset]

    def read(self) -> tuple[list[dict], int, int]:
        """``(fresh records, corrupt lines, stale records skipped)``."""
        records: list[dict] = []
        corrupt = stale = 0
        for record in iter_records(self.directory):
            if record is None:
                corrupt += 1
            elif self._fresh(record):
                records.append(record)
            else:
                stale += 1
        return records, corrupt, stale

    def conjunct_stats(self) -> list[dict]:
        """Per ``(dataset, conjunct)`` estimate-quality aggregation.

        One row per distinct served conjunct carrying its serve count, mean
        and max |estimated − actual| selectivity error, and the mean
        estimated/actual values — ranked worst mean error first (ties:
        most-served, then predicate text), which is exactly the ``repro obs
        summary --per-conjunct`` ordering.  Conjuncts that never executed
        (``actual_selectivity`` null) count serves but contribute no error.
        """
        rows: dict[tuple[str, str], dict] = {}
        for record in self.read()[0]:
            plan = record.get("plan") or {}
            for conjunct in plan.get("conjuncts", []):
                predicate = conjunct.get("predicate")
                if not isinstance(predicate, str):
                    continue
                key = (str(record.get("dataset")), predicate)
                row = rows.get(key)
                if row is None:
                    row = rows[key] = {
                        "dataset": key[0], "predicate": predicate,
                        "count": 0, "errors": 0, "error_sum": 0.0,
                        "max_abs_error": 0.0, "estimated_sum": 0.0,
                        "actual_sum": 0.0}
                row["count"] += 1
                estimated = conjunct.get("estimated_selectivity")
                actual = conjunct.get("actual_selectivity")
                if isinstance(estimated, (int, float)) and \
                        isinstance(actual, (int, float)):
                    error = abs(float(estimated) - float(actual))
                    row["errors"] += 1
                    row["error_sum"] += error
                    row["max_abs_error"] = max(row["max_abs_error"], error)
                    row["estimated_sum"] += float(estimated)
                    row["actual_sum"] += float(actual)
        out = []
        for row in rows.values():
            executed = max(1, row["errors"])
            out.append({
                "dataset": row["dataset"], "predicate": row["predicate"],
                "count": row["count"], "executed": row["errors"],
                "mean_abs_error": row["error_sum"] / executed,
                "max_abs_error": row["max_abs_error"],
                "mean_estimated": row["estimated_sum"] / executed,
                "mean_actual": row["actual_sum"] / executed,
            })
        out.sort(key=lambda r: (-r["mean_abs_error"], -r["count"],
                                r["dataset"], r["predicate"]))
        return out
