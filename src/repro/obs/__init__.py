"""Observability for the serving stack: tracing, metrics, query telemetry.

Three pieces, designed to be free when off and cheap when on:

* :mod:`repro.obs.trace` — ``trace_span``-based per-request span trees with
  monotonic timings, propagated across thread pools via ``contextvars``;
  a strict no-op fast path when ``REPRO_TRACE`` is unset/0 (the default).
* :mod:`repro.obs.registry` — the process-wide :data:`REGISTRY` of
  counters, gauges, and log-bucketed latency histograms under the
  ``repro_<layer>_<name>`` naming scheme, exported through ``GET /metrics``
  (JSON + Prometheus text) and engine ``stats()``.
* :mod:`repro.obs.telemetry` — a persisted, size-capped, rotating
  JSON-lines query log per store (``<store>/telemetry/``): one record per
  explain/batch query with the chosen plan's estimated vs actual
  per-conjunct selectivities, shard skip counts, cache outcomes, admission
  queue wait, and span-tree timings.  ``repro obs summary|top|slow``
  aggregates it.
"""

from repro.obs import trace
from repro.obs.registry import (REGISTRY, Counter, Gauge, LogHistogram,
                                MetricsRegistry, unified_engine_metrics)
from repro.obs.telemetry import (TelemetryLog, TelemetryReader,
                                 read_records, telemetry_enabled)
from repro.obs.trace import (current_root, current_span, current_trace_id,
                             new_trace, new_trace_id, set_current_attr,
                             set_root_attr, span_dict, trace_span, tracing)

__all__ = [
    "trace",
    "REGISTRY",
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "unified_engine_metrics",
    "TelemetryLog",
    "TelemetryReader",
    "read_records",
    "telemetry_enabled",
    "current_root",
    "current_span",
    "current_trace_id",
    "new_trace",
    "new_trace_id",
    "set_current_attr",
    "set_root_attr",
    "span_dict",
    "trace_span",
    "tracing",
]
