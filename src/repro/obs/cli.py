"""The ``repro obs`` subcommand: aggregate a store's query-telemetry log.

Three views over ``<store>/telemetry/queries-*.jsonl``:

* ``repro obs summary STORE`` — totals, cache-outcome rates, and the
  planner's estimated-vs-actual selectivity error across every record;
  ``--per-conjunct [N]`` appends the N worst-estimated served conjuncts
  (ranked by mean |estimated − actual| selectivity error) — the same
  rows the adaptive planner's warm start corrects from;
* ``repro obs top STORE`` — the most frequent query fingerprints with
  request counts and mean latency;
* ``repro obs slow STORE`` — the slowest individual requests, with where
  the time went (their top spans).

``STORE`` is a store root (the ``telemetry/`` subdirectory is implied) or a
telemetry directory itself.  Reading goes through
:class:`~repro.obs.TelemetryReader`: given a store root, records whose
dataset or data version is unknown to the store's committed manifests are
skipped as stale (and counted); a bare telemetry directory is read
unfiltered.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.obs.telemetry import TelemetryReader


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="obs_command", required=True)
    for name, help_text in (
            ("summary", "aggregate totals, cache rates, selectivity error"),
            ("top", "most frequent fingerprints by request count"),
            ("slow", "slowest individual requests")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("store", type=Path,
                         help="store root (or telemetry directory)")
        if name in ("top", "slow"):
            cmd.add_argument("-n", "--limit", type=int, default=10,
                             help="rows to show (default 10)")
        if name == "summary":
            cmd.add_argument("--per-conjunct", type=int, nargs="?",
                             const=10, default=None, metavar="N",
                             help="also rank the N worst-estimated served "
                                  "conjuncts (default 10)")


def telemetry_directory(store: Path) -> Path:
    """Resolve a store root or telemetry directory to the telemetry directory."""
    candidate = store / "telemetry"
    return candidate if candidate.is_dir() else store


def telemetry_reader(store: Path) -> TelemetryReader:
    """Build the reader for a store root or bare telemetry directory.

    A store root (``STORE.json`` present) gets the store's version-filtered
    reader; a bare directory is read unfiltered (no versions to check
    against).
    """
    if (store / "STORE.json").exists():
        from repro.storage import DatasetStore

        return DatasetStore(store).telemetry_reader()
    return TelemetryReader(telemetry_directory(store))


def aggregate(records: list[dict]) -> dict:
    """Roll a record list up into the ``summary`` view's numbers."""
    total = len(records)
    by_dataset: dict[str, int] = {}
    outcome_hits: dict[str, int] = {}
    outcome_totals: dict[str, int] = {}
    errors: list[float] = []
    conjuncts = 0
    durations: list[float] = []
    queue_waits: list[float] = []
    for record in records:
        dataset = record.get("dataset")
        if dataset:
            by_dataset[dataset] = by_dataset.get(dataset, 0) + 1
        for level, outcome in (record.get("cache_outcomes") or {}).items():
            if outcome in ("hit", "miss"):
                outcome_totals[level] = outcome_totals.get(level, 0) + 1
                if outcome == "hit":
                    outcome_hits[level] = outcome_hits.get(level, 0) + 1
        plan = record.get("plan") or {}
        for conjunct in plan.get("conjuncts") or []:
            estimated = conjunct.get("estimated_selectivity")
            actual = conjunct.get("actual_selectivity")
            if estimated is not None and actual is not None:
                conjuncts += 1
                errors.append(abs(estimated - actual))
        if isinstance(record.get("duration_ms"), (int, float)):
            durations.append(float(record["duration_ms"]))
        if isinstance(record.get("queue_wait_ms"), (int, float)):
            queue_waits.append(float(record["queue_wait_ms"]))
    hit_rates = {level: outcome_hits.get(level, 0) / count
                 for level, count in sorted(outcome_totals.items())}
    return {
        "records": total,
        "by_dataset": dict(sorted(by_dataset.items())),
        "cache_hit_rates": hit_rates,
        "conjuncts_observed": conjuncts,
        "selectivity_abs_error_mean":
            sum(errors) / len(errors) if errors else None,
        "selectivity_abs_error_max": max(errors) if errors else None,
        "duration_ms_mean":
            sum(durations) / len(durations) if durations else None,
        "queue_wait_ms_max": max(queue_waits) if queue_waits else None,
    }


def _top(records: list[dict], limit: int) -> list[dict]:
    groups: dict[str, dict] = {}
    for record in records:
        fingerprint = record.get("fingerprint")
        if not fingerprint:
            continue
        entry = groups.setdefault(fingerprint, {
            "fingerprint": fingerprint, "count": 0, "duration_ms": 0.0,
            "sql": record.get("sql"), "cached": 0})
        entry["count"] += 1
        if record.get("cached"):
            entry["cached"] += 1
        if isinstance(record.get("duration_ms"), (int, float)):
            entry["duration_ms"] += float(record["duration_ms"])
    rows = sorted(groups.values(),
                  key=lambda e: (-e["count"], e["fingerprint"]))[:limit]
    for row in rows:
        row["mean_ms"] = row.pop("duration_ms") / row["count"] \
            if row["count"] else 0.0
    return rows


def _slowest(records: list[dict], limit: int) -> list[dict]:
    timed = [r for r in records
             if isinstance(r.get("duration_ms"), (int, float))]
    return sorted(timed, key=lambda r: -float(r["duration_ms"]))[:limit]


def _span_hotspots(record: dict, n: int = 3) -> str:
    """The ``n`` longest spans of one record's tree, rendered compactly."""
    spans: list[tuple[float, str]] = []

    def walk(node: dict) -> None:
        duration = node.get("duration_ms")
        if isinstance(duration, (int, float)):
            spans.append((float(duration), node.get("name", "?")))
        for child in node.get("children") or []:
            walk(child)

    tree = record.get("spans")
    if isinstance(tree, dict):
        for child in tree.get("children") or []:
            walk(child)
    spans.sort(reverse=True)
    return ", ".join(f"{name} {duration:.1f}ms"
                     for duration, name in spans[:n]) or "-"


def run_obs(args: argparse.Namespace) -> int:
    directory = telemetry_directory(args.store)
    reader = telemetry_reader(args.store)
    records, corrupt, stale = reader.read()
    if not records:
        print(f"no telemetry records under {directory} "
              f"(set REPRO_TRACE=1 — or REPRO_TELEMETRY=1 — while serving "
              f"a store-backed engine)")
        return 1
    if args.obs_command == "summary":
        summary = aggregate(records)
        print(f"telemetry: {summary['records']} records "
              f"({corrupt} corrupt line(s), {stale} stale record(s) skipped) "
              f"under {directory}")
        for dataset, count in summary["by_dataset"].items():
            print(f"  dataset {dataset}: {count} queries")
        for level, rate in summary["cache_hit_rates"].items():
            print(f"  cache {level}: {rate:.1%} hit rate")
        if summary["conjuncts_observed"]:
            print(f"  conjuncts: {summary['conjuncts_observed']} observed, "
                  f"|est-actual| mean "
                  f"{summary['selectivity_abs_error_mean']:.4f}, "
                  f"max {summary['selectivity_abs_error_max']:.4f}")
        if summary["duration_ms_mean"] is not None:
            print(f"  duration: mean {summary['duration_ms_mean']:.2f}ms")
        if summary["queue_wait_ms_max"] is not None:
            print(f"  admission queue wait: max "
                  f"{summary['queue_wait_ms_max']:.2f}ms")
        per_conjunct = getattr(args, "per_conjunct", None)
        if per_conjunct:
            print(f"worst-estimated conjuncts (top {per_conjunct}):")
            for row in reader.conjunct_stats()[:per_conjunct]:
                print(f"  {row['count']:>6}x  "
                      f"|err| mean {row['mean_abs_error']:.4f} "
                      f"max {row['max_abs_error']:.4f}  "
                      f"est {row['mean_estimated']:.4f} "
                      f"actual {row['mean_actual']:.4f}  "
                      f"{row['dataset']}: {row['predicate']}")
        return 0
    if args.obs_command == "top":
        for row in _top(records, args.limit):
            sql = f"  {row['sql']}" if row.get("sql") else ""
            print(f"{row['count']:>6}x  {row['mean_ms']:>9.2f}ms mean  "
                  f"{row['cached']:>5} cached  {row['fingerprint']}{sql}")
        return 0
    # slow
    for record in _slowest(records, args.limit):
        print(f"{record['duration_ms']:>9.2f}ms  "
              f"{record.get('dataset', '?')} v{record.get('version', '?')}  "
              f"{record.get('fingerprint', '?')}  "
              f"[{_span_hotspots(record)}]")
    return 0
