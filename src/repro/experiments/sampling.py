"""Figures 15/22: CATE estimation accuracy vs sample size."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.causal import CATEEstimator
from repro.datasets import DatasetBundle
from repro.metrics import kendall_tau
from repro.mining.lattice import PatternLattice


def _random_treatments(bundle: DatasetBundle, n_treatments: int, seed: int):
    lattice = PatternLattice(bundle.table, list(bundle.treatment_attributes or []))
    atomic = lattice.level_one()
    rng = np.random.default_rng(seed)
    if len(atomic) <= n_treatments:
        return atomic
    indices = rng.choice(len(atomic), size=n_treatments, replace=False)
    return [atomic[i] for i in indices]


def cate_vs_sample_size(bundle: DatasetBundle, sample_sizes: Sequence[int],
                        n_treatments: int = 5, seed: int = 0) -> list[dict]:
    """Figure 15(a)/22(a): CATE estimates of random treatments under different sample sizes.

    The full-data estimate serves as the reference; the relative error of each
    sampled estimate is reported.
    """
    treatments = _random_treatments(bundle, n_treatments, seed)
    full = CATEEstimator(bundle.table, bundle.query.average, dag=bundle.dag)
    reference = {repr(t): full.estimate(t).value for t in treatments}
    rows = []
    for size in sample_sizes:
        estimator = CATEEstimator(bundle.table, bundle.query.average, dag=bundle.dag,
                                  sample_size=int(size), seed=seed)
        for treatment in treatments:
            estimate = estimator.estimate(treatment)
            ref = reference[repr(treatment)]
            error = abs(estimate.value - ref) / abs(ref) if ref else float("nan")
            rows.append({"dataset": bundle.name, "sample_size": int(size),
                         "treatment": repr(treatment), "cate": estimate.value,
                         "reference_cate": ref, "relative_error": error})
    return rows


def kendall_vs_sample_size(bundle: DatasetBundle, sample_sizes: Sequence[int],
                           n_treatments: int = 20, seed: int = 0) -> list[dict]:
    """Figure 15(b)/22(b): Kendall's tau between full-data and sampled CATE rankings."""
    treatments = _random_treatments(bundle, n_treatments, seed)
    full = CATEEstimator(bundle.table, bundle.query.average, dag=bundle.dag)
    reference = {repr(t): full.estimate(t).value for t in treatments}
    rows = []
    for size in sample_sizes:
        estimator = CATEEstimator(bundle.table, bundle.query.average, dag=bundle.dag,
                                  sample_size=int(size), seed=seed)
        sampled = {repr(t): estimator.estimate(t).value for t in treatments}
        rows.append({"dataset": bundle.name, "sample_size": int(size),
                     "n_treatments": len(treatments),
                     "kendall_tau": kendall_tau(reference, sampled)})
    return rows
