"""Figure 10: precision/recall of the mining algorithms vs Brute-Force on synthetic data."""

from __future__ import annotations

from typing import Sequence

from repro.causal import CATEEstimator
from repro.core import CauSumXConfig
from repro.datasets import make_synthetic
from repro.metrics import grouping_accuracy, treatment_accuracy
from repro.mining.grouping import mine_grouping_patterns
from repro.mining.lattice import PatternLattice
from repro.mining.treatments import TreatmentMinerConfig, mine_top_treatment
from repro.sql import AggregateView


def grouping_precision_recall(n_grouping_values: Sequence[int], n: int = 1000,
                              seed: int = 0, apriori_threshold: float = 0.1) -> list[dict]:
    """Figure 10(a): grouping-pattern accuracy while varying the number of grouping attributes.

    For each setting, the tuples covered by the Apriori-mined grouping patterns
    are compared against the tuples covered by the exhaustively mined patterns.
    """
    rows = []
    for n_grouping in n_grouping_values:
        bundle = make_synthetic(n=n, n_grouping=int(n_grouping), n_treatment=3,
                                seed=seed)
        view = AggregateView(bundle.table, bundle.query)
        mined = mine_grouping_patterns(view, bundle.grouping_attributes,
                                       min_support=apriori_threshold)
        exhaustive = mine_grouping_patterns(view, bundle.grouping_attributes,
                                            min_support=0.0, max_length=None)
        metrics = grouping_accuracy(view.table,
                                    [g.pattern for g in mined],
                                    [g.pattern for g in exhaustive])
        rows.append({"n_grouping_attributes": int(n_grouping),
                     "n_mined": len(mined), "n_exhaustive": len(exhaustive),
                     **metrics})
    return rows


def treatment_precision_recall(n_treatment_values: Sequence[int], n: int = 1000,
                               n_grouping_patterns: int = 20, seed: int = 0) -> list[dict]:
    """Figure 10(b): treated-group accuracy of Algorithm 2 vs exhaustive search.

    For a fixed set of grouping patterns (the same for both algorithms, as in
    the paper), the tuples marked treated by Algorithm 2's top treatment are
    compared against the tuples marked treated by the exhaustive search.
    """
    rows = []
    for n_treatment in n_treatment_values:
        bundle = make_synthetic(n=n, n_grouping=3, n_treatment=int(n_treatment),
                                seed=seed)
        view = AggregateView(bundle.table, bundle.query)
        groupings = mine_grouping_patterns(view, bundle.grouping_attributes,
                                           min_support=0.0)[:n_grouping_patterns]
        estimator = CATEEstimator(view.table, bundle.query.average, dag=bundle.dag,
                                  min_group_size=5)
        config = TreatmentMinerConfig(min_group_size=5, max_levels=3,
                                      significance_level=1.0)
        predicted, truth = [], []
        for grouping in groupings:
            fast = mine_top_treatment(estimator, grouping.pattern,
                                      bundle.treatment_attributes, "+", bundle.dag,
                                      config)
            exhaustive = _exhaustive_top_treatment(estimator, grouping.pattern,
                                                   bundle.treatment_attributes,
                                                   max_levels=3)
            if fast is None or exhaustive is None:
                continue
            predicted.append(fast.pattern)
            truth.append(exhaustive.pattern)
        metrics = treatment_accuracy(view.table, predicted, truth)
        rows.append({"n_treatment_attributes": int(n_treatment),
                     "n_grouping_patterns": len(groupings),
                     "n_compared": len(predicted), **metrics})
    return rows


def _exhaustive_top_treatment(estimator, grouping_pattern, treatment_attributes,
                              max_levels: int = 3):
    """Evaluate every lattice node (no pruning) and return the highest-CATE pattern."""
    from repro.mining.treatments import TreatmentCandidate

    lattice = PatternLattice(estimator.table, list(treatment_attributes))
    level = lattice.level_one()
    best = None
    depth = 0
    while level and depth < max_levels:
        valid = []
        for pattern in level:
            estimate = estimator.estimate(pattern, grouping_pattern)
            if not estimate.is_valid():
                continue
            valid.append(pattern)
            if estimate.value > 0 and (best is None or estimate.value > best.cate):
                best = TreatmentCandidate(pattern, estimate)
        level = lattice.next_level(valid)
        depth += 1
    return best
