"""Figures 11-13: runtime scalability in data size, #attributes, and #treatment patterns."""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Sequence

from repro.core import CauSumX, CauSumXConfig
from repro.datasets import DatasetBundle
from repro.mining.lattice import PatternLattice


def _timed_run(bundle: DatasetBundle, config: CauSumXConfig,
               treatment_attributes=None) -> float:
    algorithm = CauSumX(bundle.table, bundle.dag, config)
    start = time.perf_counter()
    algorithm.explain(bundle.query,
                      grouping_attributes=bundle.grouping_attributes,
                      treatment_attributes=treatment_attributes
                      if treatment_attributes is not None
                      else bundle.treatment_attributes)
    return time.perf_counter() - start


def runtime_vs_data_size(bundle: DatasetBundle, sizes: Sequence[int],
                         config: CauSumXConfig | None = None, seed: int = 0) -> list[dict]:
    """Figure 11: CauSumX runtime while randomly sampling the dataset to different sizes."""
    config = config or CauSumXConfig()
    rows = []
    for size in sizes:
        sampled = DatasetBundle(
            name=bundle.name,
            table=bundle.table.sample(int(size), seed=seed),
            dag=bundle.dag,
            query=bundle.query,
            grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes,
        )
        runtime = _timed_run(sampled, config)
        rows.append({"dataset": bundle.name, "n_tuples": sampled.table.n_rows,
                     "runtime": runtime})
    return rows


def runtime_vs_attributes(bundle: DatasetBundle, attribute_counts: Sequence[int],
                          config: CauSumXConfig | None = None) -> list[dict]:
    """Figure 12: CauSumX runtime while restricting the number of treatment attributes."""
    config = config or CauSumXConfig()
    all_attrs = list(bundle.treatment_attributes or bundle.table.attributes)
    rows = []
    for count in attribute_counts:
        attrs = all_attrs[:int(count)]
        runtime = _timed_run(bundle, config, treatment_attributes=attrs)
        rows.append({"dataset": bundle.name, "n_attributes": len(attrs),
                     "runtime": runtime})
    return rows


def runtime_vs_treatment_patterns(bundle: DatasetBundle, bin_counts: Sequence[int],
                                  config: CauSumXConfig | None = None) -> list[dict]:
    """Figure 13: CauSumX runtime while varying the number of candidate treatment patterns.

    The number of atomic treatment predicates is controlled through the number
    of values/bins considered per attribute, as in the paper (bin counts for
    ordinal attributes, value subsets for nominal ones).
    """
    config = config or CauSumXConfig()
    rows = []
    for bins in bin_counts:
        cfg = config.with_overrides(
            treatment=replace(config.treatment,
                              max_values_per_attribute=int(bins),
                              numeric_bins=max(2, int(bins) // 3)))
        lattice = PatternLattice(bundle.table,
                                 list(bundle.treatment_attributes or []),
                                 max_values_per_attribute=int(bins),
                                 numeric_bins=max(2, int(bins) // 3))
        n_patterns = len(lattice.level_one())
        runtime = _timed_run(bundle, cfg)
        rows.append({"dataset": bundle.name, "values_per_attribute": int(bins),
                     "n_atomic_treatments": n_patterns, "runtime": runtime})
    return rows
