"""Experiment drivers reproducing every table and figure of the evaluation (Section 6)."""

from repro.experiments.variants import run_variants_comparison, VARIANT_BUILDERS
from repro.experiments.sweeps import sweep_k, sweep_apriori_threshold
from repro.experiments.accuracy import grouping_precision_recall, treatment_precision_recall
from repro.experiments.scalability import (
    runtime_vs_data_size,
    runtime_vs_attributes,
    runtime_vs_treatment_patterns,
)
from repro.experiments.sampling import cate_vs_sample_size, kendall_vs_sample_size
from repro.experiments.dags import dag_sensitivity, dag_statistics_table
from repro.experiments.case_studies import run_case_study
from repro.experiments.report import build_report, load_results, write_report

__all__ = [
    "build_report",
    "load_results",
    "write_report",
    "run_variants_comparison",
    "VARIANT_BUILDERS",
    "sweep_k",
    "sweep_apriori_threshold",
    "grouping_precision_recall",
    "treatment_precision_recall",
    "runtime_vs_data_size",
    "runtime_vs_attributes",
    "runtime_vs_treatment_patterns",
    "cate_vs_sample_size",
    "kendall_vs_sample_size",
    "dag_sensitivity",
    "dag_statistics_table",
    "run_case_study",
]
