"""Figure 8: runtime / explainability / coverage of CauSumX and its variants."""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.core import CauSumX, CauSumXConfig, brute_force, brute_force_lp, greedy_last_step
from repro.datasets import DatasetBundle
from repro.metrics import summary_quality

VARIANT_BUILDERS: dict[str, Callable] = {
    "CauSumX": lambda table, dag, cfg: CauSumX(table, dag, cfg),
    "Greedy-Last-Step": greedy_last_step,
    "Brute-Force": brute_force,
    "Brute-Force-LP": brute_force_lp,
}


def run_variants_comparison(bundle: DatasetBundle,
                            variants: Sequence[str] = ("CauSumX", "Greedy-Last-Step"),
                            config: CauSumXConfig | None = None,
                            time_cutoff: float | None = None) -> list[dict]:
    """Run the requested algorithm variants on one dataset and collect quality rows.

    Returns one dictionary per variant with runtime, total explainability,
    coverage, and constraint satisfaction — the quantities plotted in
    Figure 8(a-c).  ``time_cutoff`` marks (but does not abort) runs exceeding it.
    """
    config = config or CauSumXConfig()
    rows = []
    for name in variants:
        if name not in VARIANT_BUILDERS:
            raise KeyError(f"unknown variant {name!r}; options: {list(VARIANT_BUILDERS)}")
        algorithm = VARIANT_BUILDERS[name](bundle.table, bundle.dag, config)
        start = time.perf_counter()
        summary = algorithm.explain(
            bundle.query,
            grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes,
        )
        elapsed = time.perf_counter() - start
        row = {"dataset": bundle.name, "variant": name, "runtime": elapsed,
               "exceeded_cutoff": bool(time_cutoff and elapsed > time_cutoff)}
        row.update(summary_quality(summary))
        rows.append(row)
    return rows
