"""Parameter sweeps: solution size k (Figure 9) and Apriori threshold (Figure 21)."""

from __future__ import annotations

from typing import Sequence

from repro.core import CauSumX, CauSumXConfig, greedy_last_step
from repro.datasets import DatasetBundle
from repro.metrics import summary_quality


def sweep_k(bundle: DatasetBundle, k_values: Sequence[int],
            config: CauSumXConfig | None = None,
            variants: Sequence[str] = ("CauSumX", "Greedy-Last-Step")) -> list[dict]:
    """Explainability and coverage of CauSumX vs Greedy-Last-Step while varying k."""
    base = config or CauSumXConfig()
    rows = []
    for k in k_values:
        for variant in variants:
            cfg = base.with_overrides(k=int(k))
            if variant == "Greedy-Last-Step":
                algorithm = greedy_last_step(bundle.table, bundle.dag, cfg)
            else:
                algorithm = CauSumX(bundle.table, bundle.dag, cfg)
            summary = algorithm.explain(
                bundle.query,
                grouping_attributes=bundle.grouping_attributes,
                treatment_attributes=bundle.treatment_attributes,
            )
            row = {"dataset": bundle.name, "variant": variant, "k": int(k),
                   "theta": cfg.theta}
            row.update(summary_quality(summary))
            rows.append(row)
    return rows


def sweep_apriori_threshold(bundle: DatasetBundle, thresholds: Sequence[float],
                            config: CauSumXConfig | None = None) -> list[dict]:
    """Explainability and coverage of CauSumX while varying the Apriori threshold tau."""
    base = config or CauSumXConfig()
    rows = []
    for tau in thresholds:
        cfg = base.with_overrides(apriori_threshold=float(tau))
        algorithm = CauSumX(bundle.table, bundle.dag, cfg)
        summary = algorithm.explain(
            bundle.query,
            grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes,
        )
        row = {"dataset": bundle.name, "apriori_threshold": float(tau)}
        row.update(summary_quality(summary))
        rows.append(row)
    return rows
