"""Case studies of Section 6.2 / Appendix B (Figures 2, 6, 7, 18, 19)."""

from __future__ import annotations

from repro.core import CauSumX, CauSumXConfig, render_summary
from repro.core.patterns import ExplanationSummary
from repro.datasets import DatasetBundle, load_dataset


CASE_STUDIES = {
    # figure id -> (dataset, k, theta, treatment-attribute restriction, outcome label)
    "figure2_stackoverflow": ("stackoverflow", 3, 1.0, None, "annual salary"),
    "figure6_stackoverflow_sensitive": (
        "stackoverflow", 3, 1.0, ["Gender", "Ethnicity", "AgeBand"], "annual salary"),
    "figure7_accidents": ("accidents", 4, 1.0, None, "accident severity"),
    # German has no FD-derived grouping attributes, so each of the ten purposes
    # needs its own explanation pattern; with k=5 the coverage target is 0.5
    # (the paper likewise reports that not all purposes can be explained).
    "figure18_german": ("german", 5, 0.5, None, "credit risk score"),
    "figure19_adult": ("adult", 3, 1.0, None, "high-income probability"),
}


def run_case_study(name: str, n: int | None = None, seed: int = 0,
                   config: CauSumXConfig | None = None,
                   ) -> tuple[ExplanationSummary, str]:
    """Run one of the paper's case studies and return the summary plus its rendering."""
    if name not in CASE_STUDIES:
        raise KeyError(f"unknown case study {name!r}; options: {list(CASE_STUDIES)}")
    dataset, k, theta, treatment_restriction, outcome_label = CASE_STUDIES[name]
    kwargs = {"seed": seed}
    if n is not None:
        kwargs["n"] = n
    bundle: DatasetBundle = load_dataset(dataset, **kwargs)
    cfg = (config or CauSumXConfig()).with_overrides(k=k, theta=theta)
    if dataset == "german":
        cfg = cfg.with_overrides(include_singleton_groups=True, theta=theta)
    algorithm = CauSumX(bundle.table, bundle.dag, cfg)
    summary = algorithm.explain(
        bundle.query,
        grouping_attributes=bundle.grouping_attributes,
        treatment_attributes=treatment_restriction or bundle.treatment_attributes,
    )
    return summary, render_summary(summary, outcome=outcome_label)
