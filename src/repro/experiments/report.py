"""Build a Markdown report from the JSON rows the benchmark harness persists.

Every benchmark writes its result rows to ``benchmarks/results/<name>.json``
(see ``benchmarks/conftest.py``).  ``build_report`` collects those files into a
single Markdown document so the measured side of EXPERIMENTS.md can be
refreshed from the latest run without copying numbers by hand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable


def load_results(results_dir: str | Path) -> list[dict]:
    """Load every ``*.json`` result payload from a benchmark results directory."""
    results_dir = Path(results_dir)
    payloads = []
    if not results_dir.exists():
        return payloads
    for path in sorted(results_dir.glob("*.json")):
        with path.open() as handle:
            payload = json.load(handle)
        payload.setdefault("benchmark", path.stem)
        payloads.append(payload)
    return payloads


def _rows_to_markdown_table(rows: Iterable[dict]) -> list[str]:
    rows = [row for row in rows if isinstance(row, dict)]
    if not rows:
        return ["(no rows recorded)"]
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "---|" * len(columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                value = f"{value:.4g}"
            cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def build_report(results_dir: str | Path, title: str = "Benchmark results") -> str:
    """Render all persisted benchmark rows as one Markdown document."""
    payloads = load_results(results_dir)
    lines = [f"# {title}", ""]
    if not payloads:
        lines.append("No benchmark results found — run "
                     "`pytest benchmarks/ --benchmark-only` first.")
        return "\n".join(lines)
    for payload in payloads:
        lines.append(f"## {payload['benchmark']}")
        reference = payload.get("paper_reference")
        if reference:
            lines.append(f"*Reproduces: {reference}*")
        expected = payload.get("expected_shape")
        if expected:
            lines.append(f"*Expected shape: {expected}*")
        lines.append("")
        lines.extend(_rows_to_markdown_table(payload.get("rows", [])))
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: str | Path, output_path: str | Path,
                 title: str = "Benchmark results") -> Path:
    """Write the Markdown report to ``output_path`` and return that path."""
    output_path = Path(output_path)
    output_path.write_text(build_report(results_dir, title=title))
    return output_path
