"""Figures 16/23 and Table 4: sensitivity to the causal DAG and DAG statistics."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.causal import CATEEstimator
from repro.core import CauSumX, CauSumXConfig
from repro.datasets import DatasetBundle
from repro.discovery import fci_lite, lingam_lite, no_dag, pc_algorithm
from repro.graph import CausalDAG, dag_statistics
from repro.metrics import kendall_tau
from repro.mining.lattice import PatternLattice

DAG_BUILDERS: dict[str, Callable] = {
    "ground_truth": lambda bundle: bundle.dag,
    "PC": lambda bundle: pc_algorithm(bundle.table),
    "FCI": lambda bundle: fci_lite(bundle.table),
    "LiNGAM": lambda bundle: lingam_lite(bundle.table),
    "No-DAG": lambda bundle: no_dag(bundle.table, bundle.query.average),
}


def dag_statistics_table(bundle: DatasetBundle,
                         methods: Sequence[str] = ("ground_truth", "PC", "FCI", "LiNGAM"),
                         ) -> list[dict]:
    """Table 4: edge count and density of the DAG produced by each discovery method."""
    rows = []
    for method in methods:
        dag = DAG_BUILDERS[method](bundle)
        stats = dag_statistics(dag, name=method)
        stats["dataset"] = bundle.name
        rows.append(stats)
    return rows


def dag_sensitivity(bundle: DatasetBundle,
                    methods: Sequence[str] = ("ground_truth", "PC", "FCI", "LiNGAM", "No-DAG"),
                    config: CauSumXConfig | None = None, n_treatments: int = 20,
                    seed: int = 0) -> list[dict]:
    """Figures 16/23: explainability and treatment-ranking agreement under each DAG.

    For every candidate DAG, CauSumX is run end-to-end (overall explainability)
    and the top-``n_treatments`` atomic treatments are re-ranked by their CATE;
    Kendall's tau compares that ranking against the ground-truth-DAG ranking.
    """
    config = config or CauSumXConfig()
    lattice = PatternLattice(bundle.table, list(bundle.treatment_attributes or []))
    treatments = lattice.level_one()[:n_treatments]
    reference_estimator = CATEEstimator(bundle.table, bundle.query.average,
                                        dag=bundle.dag, seed=seed)
    reference = {repr(t): reference_estimator.estimate(t).value for t in treatments}

    rows = []
    for method in methods:
        dag: CausalDAG = DAG_BUILDERS[method](bundle)
        summary = CauSumX(bundle.table, dag, config).explain(
            bundle.query,
            grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes,
        )
        estimator = CATEEstimator(bundle.table, bundle.query.average, dag=dag, seed=seed)
        ranking = {repr(t): estimator.estimate(t).value for t in treatments}
        rows.append({
            "dataset": bundle.name,
            "dag": method,
            "n_edges": dag.n_edges,
            "total_explainability": summary.total_explainability,
            "coverage": summary.coverage,
            "kendall_tau": kendall_tau(reference, ranking),
        })
    return rows
