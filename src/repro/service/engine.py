"""The explanation-serving engine: persistent state shared across queries.

A one-shot ``CauSumX(table, dag).explain(sql)`` call re-parses the SQL,
re-materialises the aggregate view, re-enumerates lattice atoms, and
re-evaluates every predicate mask from scratch.  :class:`ExplanationEngine`
is the long-lived alternative an interactive service needs: datasets are
registered once, queries are canonicalised and fingerprinted, and results are
served through a hierarchy of caches —

1. **plan cache** — SQL text → parsed :class:`~repro.sql.GroupByAvgQuery`;
2. **view cache** — canonical query → materialised
   :class:`~repro.sql.AggregateView` (one ``GroupByIndex``, group keys,
   averages) per dataset version;
3. **population cache** — (WHERE clause, outcome) → a
   :class:`~repro.causal.CATEEstimator` whose shared
   :class:`~repro.dataframe.MaskCache` and lattice-atom cache are reused by
   *every* query over that filtered population, whatever it groups by;
4. **summary cache** — fingerprint → finished
   :class:`~repro.core.ExplanationSummary` (LRU with hit/miss/eviction
   statistics).

Identical in-flight requests are *single-flighted*: concurrent callers with
the same fingerprint block on one computation and all receive the identical
summary object.  ``explain_many`` additionally deduplicates fingerprints
within a batch and fans distinct queries out over a thread pool.

Data is versioned: :meth:`append_rows` concatenates new rows onto a
registered table (merging dictionary vocabularies, see ``Table.concat``),
bumps the dataset's monotonic data version, and invalidates exactly the
cache entries tied to older versions.  Cached predicate masks are carried
forward cheaply by evaluating only the appended rows
(:meth:`~repro.dataframe.MaskCache.extended`).

Results are *byte-identical* to fresh one-shot runs on the same canonical
query: every cache level only removes recomputation, never changes inputs
(``benchmarks/bench_engine_cache.py`` gates this).

Engines can be **store-backed** (:mod:`repro.storage`): datasets registered
with a :class:`~repro.storage.StoredDataset` handle write every
:meth:`append_rows` batch through to disk as a committed shard before the
in-memory swap, :meth:`ExplanationEngine.from_store` rebuilds a fully
registered engine (tables memory-mapped, summary cache restored) from a
store directory, and :meth:`snapshot` persists the warm state back — a
restarted ``repro serve --store`` process answers its first repeated query
from the cache, byte-identical to the summary it served before the restart.
"""

from __future__ import annotations

import contextvars
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.adapt import (
    GLOBAL_CORRECTOR,
    GLOBAL_HEAT,
    adaptive_config,
    adaptive_enabled,
    predicate_from_repr,
)
from repro.analysis.lockwatch import named_lock
from repro.causal import CATEEstimator
from repro.core import CauSumX, CauSumXConfig, ExplanationSummary
from repro.dataframe import MaskCache, Pattern, Table
from repro.graph import CausalDAG
from repro.obs import trace
from repro.obs.registry import unified_engine_metrics
from repro.obs.telemetry import telemetry_enabled
from repro.parallel import GLOBAL_PARALLEL_STATS, worker_count
from repro.plan import GLOBAL_PLANNER_STATS, lower_query, planner_enabled
from repro.service.lru import LRUCache
from repro.sql import (
    AggregateView,
    GroupByAvgQuery,
    normalize_query,
    parse_query,
)


#: Distinct WHERE predicates whose masks one dataset's cache may hold before
#: it is flushed (each mask costs ``n_rows`` bytes; recomputing is one
#: vectorized kernel pass, so flushing beats unbounded growth).
WHERE_MASK_CACHE_LIMIT = 128


@dataclass(frozen=True)
class DatasetState:
    """An immutable snapshot of one registered dataset at one data version."""

    name: str
    table: Table
    dag: CausalDAG | None
    config: CauSumXConfig
    grouping_attributes: tuple[str, ...] | None
    treatment_attributes: tuple[str, ...] | None
    version: int = 0
    #: Optional :class:`~repro.storage.StoredDataset` backing this dataset:
    #: appends are written through to disk before the in-memory swap.
    store: object | None = None


@dataclass
class _Population:
    """A cached filtered population: its WHERE pattern and shared estimator."""

    where: Pattern
    estimator: CATEEstimator


@dataclass
class _Flight:
    """Bookkeeping for one in-flight summary computation (single-flight)."""

    done: threading.Event = field(default_factory=threading.Event)
    summary: ExplanationSummary | None = None
    error: BaseException | None = None


class ExplanationEngine:
    """Serves explanation summaries for registered datasets, statefully.

    Parameters
    ----------
    max_workers:
        Thread-pool width for :meth:`explain_many` batches (``1`` = serial).
    summary_cache_size / view_cache_size / population_cache_size /
    plan_cache_size:
        Capacities of the four cache levels.
    memory_budget:
        Optional shared :class:`~repro.service.MemoryBudget`: the summary
        cache weighs its entries (pickled bytes) against the budget's global
        cap, and the budget may evict the globally least-recently-used
        summaries across *every* engine attached to it.
    """

    def __init__(self, max_workers: int = 4, summary_cache_size: int = 256,
                 view_cache_size: int = 64, population_cache_size: int = 32,
                 plan_cache_size: int = 512, memory_budget=None):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.memory_budget = memory_budget
        self._datasets_lock = named_lock("ExplanationEngine._datasets_lock")
        self._datasets: dict[str, DatasetState] = {}  # guarded-by: _datasets_lock
        # Serialises mutations (append_rows) without blocking readers: the
        # heavy table/mask construction happens under this lock only, while
        # _datasets_lock is held just for the snapshot and the final swap.
        self._mutation_lock = named_lock("ExplanationEngine._mutation_lock")
        self._plan_cache = LRUCache(plan_cache_size)
        self._view_cache = LRUCache(view_cache_size)
        self._population_cache = LRUCache(population_cache_size)
        self._summary_cache = LRUCache(
            summary_cache_size, budget=memory_budget,
            weigher=_summary_nbytes if memory_budget is not None else None)
        self._flights_lock = named_lock("ExplanationEngine._flights_lock")
        self._flights: dict[tuple, _Flight] = {}  # guarded-by: _flights_lock
        #: name -> (data version, MaskCache over the registered table): the
        #: shared cache planned WHERE scans route repeated conjuncts through.
        self._where_masks: dict[str, tuple[int, MaskCache]] = {}  # guarded-by: _datasets_lock
        self._computations = 0  # guarded-by: _flights_lock
        self._coalesced = 0  # guarded-by: _flights_lock
        self._batch_deduped = 0  # guarded-by: _flights_lock
        self._store = None  # DatasetStore when built via from_store
        self._restored_summaries = 0  # guarded-by: _flights_lock
        # HTTP-tier metrics hook (repro.net): attached once before serving
        # starts, read-only afterwards, so no lock is needed.
        self._http_metrics = None
        # Query-telemetry sink (repro.obs): attached once (from_store wires
        # the store's log), read-only afterwards, so no lock is needed.
        self._telemetry = None

    # ------------------------------------------------------------------ registration

    def register_dataset(self, name: str, table: Table,
                         dag: CausalDAG | None = None,
                         config: CauSumXConfig | None = None,
                         grouping_attributes: Sequence[str] | None = None,
                         treatment_attributes: Sequence[str] | None = None,
                         version: int | None = None,
                         store=None) -> DatasetState:
        """Register (or replace) a dataset under ``name``.

        Re-registering an existing name installs the new table/DAG/config and
        bumps the data version, invalidating every cache entry of the old
        registration.  ``version`` pins the data version explicitly (used
        when restoring from a store, where the committed manifest version
        must line up with restored cache keys); ``store`` attaches a
        :class:`~repro.storage.StoredDataset` for durable appends.
        """
        with self._mutation_lock, self._datasets_lock:
            previous = self._datasets.get(name)
            if version is None:
                version = previous.version + 1 if previous is not None else 0
            state = DatasetState(
                name=name, table=table, dag=dag,
                config=config or CauSumXConfig(),
                grouping_attributes=tuple(grouping_attributes)
                if grouping_attributes is not None else None,
                treatment_attributes=tuple(treatment_attributes)
                if treatment_attributes is not None else None,
                version=version,
                store=store,
            )
            self._datasets[name] = state
            if previous is not None:
                self._invalidate(name)
            return state

    def register_bundle(self, bundle, config: CauSumXConfig | None = None,
                        name: str | None = None) -> DatasetState:
        """Register a :class:`~repro.datasets.DatasetBundle` in one call."""
        return self.register_dataset(
            name or bundle.name, bundle.table, dag=bundle.dag, config=config,
            grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes,
        )

    @classmethod
    def from_store(cls, store, prune: bool = True,
                   config_overrides: Mapping | None = None, **engine_kwargs
                   ) -> "ExplanationEngine":
        """Rebuild a fully registered engine from a store directory.

        Every stored dataset is loaded as a memory-mapped
        :class:`~repro.storage.ShardedTable` (no rows are read until
        queries touch them) and registered with the DAG / config / attribute
        partition recorded in the store's registry at the dataset's committed
        manifest version.  Persisted summary-cache entries whose
        ``(dataset, version)`` still matches are restored, so repeated
        queries after a restart are served from cache, byte-identical to the
        summaries computed before the restart.

        ``config_overrides`` replaces individual fields of every restored
        config (e.g. ``{"n_jobs": 8}`` from the CLI).  Only use overrides
        that cannot change results — restored cache entries stay valid.
        """
        from repro.graph import CausalDAG as _DAG  # local alias; already imported
        from repro.storage import DatasetStore, config_from_dict

        if not isinstance(store, DatasetStore):
            store = DatasetStore(store)
        engine = cls(**engine_kwargs)
        engine._store = store
        engine._telemetry = store.telemetry_log()
        registry = store.registry()
        for name in store.dataset_names():
            stored = store.dataset(name)
            entry = registry.get(name) or {}
            dag = _DAG.from_dict(entry["dag"]) if entry.get("dag") else None
            config = config_from_dict(entry["config"]) \
                if entry.get("config") else None
            if config_overrides:
                config = (config or CauSumXConfig()).with_overrides(
                    **config_overrides)
            engine.register_dataset(
                name, stored.load_table(prune=prune), dag=dag, config=config,
                grouping_attributes=entry.get("grouping_attributes"),
                treatment_attributes=entry.get("treatment_attributes"),
                version=stored.manifest.version, store=stored)
        restored = 0
        for key, summary in store.load_summaries():
            name, version = key[0], key[1]
            with engine._datasets_lock:
                state = engine._datasets.get(name)
            if state is not None and state.version == version:
                engine._summary_cache.put(key, summary)
                restored += 1
        with engine._flights_lock:
            engine._restored_summaries = restored
        if adaptive_enabled():
            engine._warm_adaptive(store)
        return engine

    def snapshot(self) -> dict:
        """Persist registrations + summary cache to the backing store.

        Only available on engines built via :meth:`from_store` (or with a
        store attached through :attr:`attach_store`).  Returns the persisted
        entry counts.
        """
        if self._store is None:
            raise ValueError("engine has no backing store; build it with "
                             "ExplanationEngine.from_store or attach_store()")
        return self._store.snapshot(self)

    def attach_store(self, store) -> None:
        """Attach a :class:`~repro.storage.DatasetStore` for :meth:`snapshot`."""
        self._store = store

    def detach_store(self) -> None:
        """Detach the backing store from the engine and all its datasets.

        Afterwards :meth:`snapshot` refuses and :meth:`append_rows` mutates
        in memory only.  The HTTP tier's tenant registry uses this for
        non-default tenants restored from a shared store: several tenants
        appending to the same stored dataset would race on its committed
        version, so only the reserved ``default`` tenant keeps durability.
        """
        self._store = None
        with self._mutation_lock, self._datasets_lock:
            for name, state in list(self._datasets.items()):
                if state.store is not None:
                    self._datasets[name] = replace(state, store=None)

    def attach_telemetry(self, log) -> None:
        """Attach a :class:`~repro.obs.TelemetryLog` query-telemetry sink.

        One record per served :meth:`explain` — fingerprint, plan with
        estimated vs actual per-conjunct selectivities, cache outcomes,
        span timings — is appended whenever telemetry is enabled
        (:func:`~repro.obs.telemetry_enabled`); attaching alone changes
        nothing.  :meth:`from_store` attaches the store's own log
        automatically.  Attach before serving begins — the reference is
        read without locking.
        """
        self._telemetry = log

    def attach_http_metrics(self, metrics) -> None:
        """Attach the HTTP tier's serving metrics (:mod:`repro.net`).

        Any object with a ``snapshot() -> dict`` method; once attached,
        :meth:`stats` surfaces it under the ``"http"`` key so the JSON-lines
        ``stats`` op and ``GET /metrics`` report the same numbers.  Attach
        before serving begins — the reference is read without locking.
        """
        self._http_metrics = metrics

    def summary_cache_items(self) -> list[tuple]:
        """Snapshot of ``(key, summary)`` entries (for store snapshots)."""
        return list(self._summary_cache.items())

    def datasets(self) -> list[str]:
        with self._datasets_lock:
            return sorted(self._datasets)

    def dataset_state(self, name: str) -> DatasetState:
        with self._datasets_lock:
            if name not in self._datasets:
                raise KeyError(f"unknown dataset {name!r}; registered: "
                               f"{sorted(self._datasets)}")
            return self._datasets[name]

    # ------------------------------------------------------------------ serving

    def explain(self, name: str, query: GroupByAvgQuery | str,
                use_summary_cache: bool = True) -> ExplanationSummary:
        """Serve one explanation summary (cached, single-flighted)."""
        return self.explain_with_info(name, query, use_summary_cache)[0]

    def explain_with_info(self, name: str, query: GroupByAvgQuery | str,
                          use_summary_cache: bool = True,
                          ) -> tuple[ExplanationSummary, dict]:
        """Like :meth:`explain` but also return serving metadata.

        The info dictionary reports the query ``fingerprint``, the dataset
        ``version`` served, wall-clock ``seconds``, and whether the summary
        came from the cache (``cached``) or from another thread's concurrent
        computation (``coalesced``).
        """
        start = time.perf_counter()
        # Observability rides along only when someone is listening: outcomes
        # stays None on the default path, so serving allocates nothing extra.
        telemetered = self._telemetry is not None and telemetry_enabled()
        outcomes = {} if (telemetered or trace.enabled()) else None
        with trace.trace_span("engine.explain", dataset=name) as span:
            summary, info, canonical, plan = self._explain_serve(
                name, query, use_summary_cache, outcomes, start)
        if telemetered:
            self._record_telemetry(info, outcomes, span, canonical)
        if adaptive_enabled():
            self._adaptive_tick(name, plan)
        return summary, info

    def _explain_serve(self, name: str, query: GroupByAvgQuery | str,
                       use_summary_cache: bool, outcomes: dict | None,
                       start: float
                       ) -> tuple[ExplanationSummary, dict, GroupByAvgQuery,
                                  object]:
        """The serving core of :meth:`explain_with_info`.

        ``outcomes`` (when not ``None``) collects per-cache-level hit/miss
        outcomes for the telemetry record as serving passes each level.
        """
        state = self.dataset_state(name)
        canonical = self._canonical(query, outcomes)
        # The canonical query lowers to the plan IR; the plan's fingerprint
        # is the cache key (two spellings of one question share a plan).
        plan = lower_query(canonical)
        fingerprint = plan.fingerprint
        key = (name, state.version, fingerprint)
        info = {"dataset": name, "version": state.version,
                "fingerprint": fingerprint, "cached": False, "coalesced": False}

        if use_summary_cache:
            summary = self._summary_cache.get(key)
            if summary is not None:
                if outcomes is not None:
                    outcomes["summary"] = "hit"
                info["cached"] = True
                info["seconds"] = time.perf_counter() - start
                return summary, info, canonical, plan
        if outcomes is not None:
            outcomes["summary"] = "miss"

        while True:
            with self._flights_lock:
                flight = self._flights.get(key)
                leader = flight is None
                if leader:
                    flight = _Flight()
                    self._flights[key] = flight
            if leader:
                if outcomes is not None:
                    outcomes["flight"] = "leader"
                try:
                    summary = self._compute(state, canonical, plan, outcomes)
                    if use_summary_cache:
                        self._summary_cache.put(key, summary)
                    flight.summary = summary
                except BaseException as exc:
                    flight.error = exc
                    raise
                finally:
                    with self._flights_lock:
                        self._flights.pop(key, None)
                    flight.done.set()
                info["seconds"] = time.perf_counter() - start
                return summary, info, canonical, plan
            flight.done.wait()
            if flight.error is None and flight.summary is not None:
                with self._flights_lock:
                    self._coalesced += 1
                if outcomes is not None:
                    outcomes["flight"] = "coalesced"
                info["coalesced"] = True
                info["seconds"] = time.perf_counter() - start
                return flight.summary, info, canonical, plan
            # The leader failed; retry (and possibly become the leader).

    def _record_telemetry(self, info: dict, outcomes: dict | None, span,
                          canonical: GroupByAvgQuery) -> None:
        """Append one query-telemetry record; never fails the query."""
        key = (info["dataset"], info["version"], info["fingerprint"])
        # peek(): telemetry must not perturb cache stats or recency.
        view = self._view_cache.peek(key)
        scan_plan = getattr(view, "scan_plan", None)
        root = trace.current_root()
        record = {
            "kind": "explain",
            "unix_ts": round(time.time(), 3),
            "dataset": info["dataset"],
            "version": info["version"],
            "fingerprint": info["fingerprint"],
            "sql": canonical.to_sql(),
            "cached": info["cached"],
            "coalesced": info["coalesced"],
            "duration_ms": round(info["seconds"] * 1000.0, 3),
            "trace_id": getattr(span, "trace_id", None)
            or trace.current_trace_id(),
            "queue_wait_ms":
                root.attrs.get("queue_wait_ms") if root is not None else None,
            "cache_outcomes": outcomes,
            "plan": scan_plan.to_dict() if scan_plan is not None else None,
            "spans": trace.span_dict(span),
        }
        self._telemetry.record(record)

    def explain_many(self, name: str, queries: Sequence[GroupByAvgQuery | str],
                     use_summary_cache: bool = True) -> list[ExplanationSummary]:
        """Serve a batch of queries, deduplicating identical fingerprints.

        Duplicate queries are computed once; distinct queries run concurrently
        on the engine's thread pool (sharing the population-level caches).
        Results are returned in input order, duplicates receiving the same
        summary object.
        """
        canonicals = [self._canonical(q) for q in queries]
        fingerprints = [lower_query(c).fingerprint for c in canonicals]
        first_index: dict[str, int] = {}
        for i, fp in enumerate(fingerprints):
            first_index.setdefault(fp, i)
        with self._flights_lock:
            self._batch_deduped += len(queries) - len(first_index)

        def run(i: int) -> ExplanationSummary:
            return self.explain(name, canonicals[i], use_summary_cache)

        distinct = list(first_index.values())
        if self.max_workers == 1 or len(distinct) <= 1:
            computed = {fingerprints[i]: run(i) for i in distinct}
        else:
            traced = trace.enabled()
            with ThreadPoolExecutor(
                    max_workers=min(self.max_workers, len(distinct))) as pool:
                if traced:
                    # Carry the caller's span context into each worker (one
                    # context copy per task — a Context cannot be entered
                    # concurrently), so fanned-out queries stay children of
                    # the request's trace.
                    futures = {fingerprints[i]: pool.submit(
                        contextvars.copy_context().run, run, i)
                        for i in distinct}
                else:
                    futures = {fingerprints[i]: pool.submit(run, i)
                               for i in distinct}
                computed = {fp: f.result() for fp, f in futures.items()}
        return [computed[fp] for fp in fingerprints]

    def explain_plan(self, name: str, query: GroupByAvgQuery | str) -> dict:
        """Describe how one query would execute, without mining treatments.

        Returns the lowered logical plan, the physical conjunct schedule with
        **estimated vs. actual** per-conjunct selectivities, and the shard
        zone-map/statistics skip counts.  The scan really runs (that is where
        the actuals come from) and warms the view cache, so a subsequent
        :meth:`explain` of the same query reuses the materialised view.
        """
        state = self.dataset_state(name)
        canonical = self._canonical(query)
        plan = lower_query(canonical)
        view = self._view(state, canonical, plan)
        scan_plan = view.scan_plan if planner_enabled() else None
        if planner_enabled() and plan.conjuncts and scan_plan is None:
            # The cached view predates the current planner mode (it was
            # materialised under oracle_mode): re-execute the scan now so
            # the report's actuals describe this call, not a stale build.
            from repro.plan import planned_select_with_plan

            _, scan_plan = planned_select_with_plan(
                state.table, plan.filter,
                mask_cache=self._where_mask_cache(state))
            if adaptive_enabled():
                GLOBAL_CORRECTOR.observe_plan(self._incarnation(state),
                                              scan_plan)
        scan = scan_plan.to_dict() if scan_plan is not None else None
        return {
            "dataset": name,
            "version": state.version,
            "fingerprint": plan.fingerprint,
            "sql": canonical.to_sql(),
            "planner_enabled": planner_enabled(),
            "logical_plan": plan.render(),
            "scan": scan,
            "rows": {"table": state.table.n_rows,
                     "filtered": view.table.n_rows},
            "groups": view.m,
        }

    # ------------------------------------------------------------------ adaptive loop

    @staticmethod
    def _incarnation(state: DatasetState) -> tuple[str, int]:
        """The corrector key prefix — matches ``TableStats.incarnation``."""
        return (state.table.name, state.table.n_rows)

    def _adaptive_tick(self, name: str, plan) -> None:
        """One turn of the adaptive loop, after a query was served.

        Heat is recorded for every served WHERE conjunct (cache hits
        included — heat measures demand); then cached views whose planned
        estimates have drifted past the threshold are purged (they re-plan
        with corrected estimates on next materialization), and at most one
        newly hot predicate is promoted to a committed bitmap index, with
        LRU-by-heat demotion under the byte budget.  The tick never touches
        results — it only reorders and pre-answers future scans.
        """
        config = adaptive_config()
        try:
            state = self.dataset_state(name)
        except KeyError:  # pragma: no cover - raced with deregistration
            return
        predicates = list(plan.conjuncts)
        if predicates:
            GLOBAL_HEAT.record(name, predicates)
            self._check_drift(state, config)
            if state.store is not None:
                self._maybe_promote(state, config)

    def _check_drift(self, state: DatasetState, config) -> None:
        """Purge cached views whose plans the corrector now disagrees with.

        The "plan cache" the drift loop invalidates is the **view cache**:
        views hold the executed :class:`ScanPlan` (the physical schedule),
        and purging one forces the next serve to re-materialise — and
        therefore re-plan with the corrected estimates.  Summaries stay
        cached: drift changes performance, never results.
        """
        incarnation = self._incarnation(state)
        stale = []
        for key, view in self._view_cache.items():
            if key[0] != state.name or key[1] != state.version:
                continue
            scan_plan = getattr(view, "scan_plan", None)
            if scan_plan is None:
                continue
            drift = 0.0
            for conjunct in scan_plan.conjuncts:
                corrected, applied = GLOBAL_CORRECTOR.correction(
                    incarnation, conjunct.predicate,
                    conjunct.estimated_selectivity)
                if applied:
                    drift = max(drift,
                                abs(corrected - conjunct.estimated_selectivity))
            if drift > config.drift_threshold:
                stale.append(key)
        if stale:
            for stale_key in stale:
                self._view_cache.purge(lambda k, sk=stale_key: k == sk)
            GLOBAL_PLANNER_STATS.record_drift_replans(len(stale))

    def _maybe_promote(self, state: DatasetState, config) -> None:
        """Commit a bitmap index for the hottest unindexed predicate, if any.

        At most one promotion per serve bounds the inline latency a single
        request can absorb; the loop converges over the next few serves.
        Demotion only evicts a committed index *strictly colder* than the
        candidate, so two hot predicates can never demote each other back
        and forth under a tight budget.
        """
        from repro.storage.format import StorageError

        hot = GLOBAL_HEAT.hot(state.name, config.heat_threshold)
        if not hot:
            return
        store = state.store
        stats = store.index_stats()
        committed = {key: entry["nbytes"]
                     for key, entry in stats["indexes"].items()}
        total = stats["total_nbytes"]
        for key, predicate in hot:
            if predicate is None or key in committed:
                continue
            if predicate.attribute not in state.table.attributes:
                continue
            estimate = (store.manifest.n_rows + 7) // 8
            while committed and total + estimate > config.index_budget_bytes:
                victim = min(committed,
                             key=lambda k: GLOBAL_HEAT.rank(state.name, k))
                if GLOBAL_HEAT.rank(state.name, victim) >= \
                        GLOBAL_HEAT.rank(state.name, key):
                    break
                try:
                    store.drop_index(victim)
                except StorageError:  # pragma: no cover - concurrent writer
                    break
                total -= committed.pop(victim)
                dropper = getattr(state.table, "drop_predicate_index", None)
                if dropper is not None:
                    dropper(victim)
                GLOBAL_PLANNER_STATS.record_index_demotions()
            if total + estimate > config.index_budget_bytes:
                continue  # does not fit even after eligible demotions
            try:
                result = store.promote_index(predicate)
            except StorageError:
                continue
            GLOBAL_PLANNER_STATS.record_index_promotions()
            # Serve the new index on the live handle immediately; committed
            # coverage alone would only apply after the next reload.  An
            # index commit never bumps the version, so a mismatch means the
            # live table predates other committed changes — skip then.
            installer = getattr(state.table, "install_predicate_index", None)
            if installer is not None and \
                    getattr(state.table, "version", None) == result["version"]:
                installer(result["key"], result["masks"])
            break

    def _warm_adaptive(self, store) -> None:
        """Replay persisted telemetry into the corrector + heat tracker.

        Runs once at ``from_store`` time, through the version-filtered
        :meth:`~repro.storage.DatasetStore.telemetry_reader` — stale-version
        records never pollute the current incarnation's corrections.
        """
        try:
            rows = store.telemetry_reader().conjunct_stats()
        except OSError:  # pragma: no cover - unreadable telemetry dir
            return
        for row in rows:
            name = row["dataset"]
            with self._datasets_lock:
                state = self._datasets.get(name)
            if state is None:
                continue
            predicate = predicate_from_repr(row["predicate"])
            GLOBAL_HEAT.warm(name, row["predicate"], row["count"], predicate)
            if row["executed"]:
                GLOBAL_CORRECTOR.observe(
                    self._incarnation(state), row["predicate"],
                    row["mean_estimated"], row["mean_actual"],
                    weight=row["executed"])

    # ------------------------------------------------------------------ incremental data

    def append_rows(self, name: str,
                    rows: Table | Sequence[Mapping]) -> dict:
        """Append rows to a registered dataset and bump its data version.

        The new table is built with ``Table.concat`` (vocabulary merge, no
        re-factorization of the existing rows).  Every cache entry tied to
        the old data version is invalidated; cached populations are carried
        forward with their predicate masks *extended* — each mask is
        revalidated by evaluating its predicate on the appended rows only.

        Appends are serialised against each other, but readers keep serving
        the old data version during the heavy construction work; only the
        final snapshot swap + cache invalidation takes the registry lock.
        """
        with self._mutation_lock:
            state = self.dataset_state(name)
            if isinstance(rows, Table):
                appended = rows
            else:
                rows = list(rows)
                if not rows:
                    return {"dataset": name, "version": state.version,
                            "appended_rows": 0, "n_rows": state.table.n_rows,
                            "invalidated": 0, "masks_carried": 0}
                unknown = set()
                for row in rows:
                    unknown.update(set(row) - set(state.table.attributes))
                if unknown:
                    raise ValueError(
                        f"appended rows carry unknown attribute(s) "
                        f"{sorted(unknown)}; dataset {name!r} schema is "
                        f"{list(state.table.attributes)}")
                appended = Table.from_rows(rows, schema=list(state.table.attributes))
            if appended.attributes != state.table.attributes:
                raise ValueError(
                    f"appended rows have schema {list(appended.attributes)}, "
                    f"dataset {name!r} has {list(state.table.attributes)}")
            for attribute in state.table.attributes:
                incoming = appended.column(attribute)
                if incoming.numeric != state.table.is_numeric(attribute) \
                        and incoming.n_missing() < len(incoming):
                    kind = "numeric" if state.table.is_numeric(attribute) \
                        else "categorical"
                    raise ValueError(
                        f"appended values for {attribute!r} do not match the "
                        f"dataset's {kind} column kind")
            new_table = state.table.concat(appended)
            new_state = replace(state, table=new_table, version=state.version + 1)

            # Durability first: a store-backed dataset commits the batch as a
            # new shard (atomic manifest replace) *before* the in-memory swap,
            # so a crash after this point replays cleanly from disk and a
            # crash before it changes nothing.  The batch is sliced from the
            # concatenated table so its columns carry the merged vocabularies.
            if state.store is not None:
                batch = new_table.take(
                    np.arange(state.table.n_rows, new_table.n_rows))
                state.store.append(batch, expected_version=state.version)

            # Carry cached populations to the new version with extended masks.
            # Populations cached after this snapshot simply are not carried —
            # they get invalidated with the rest and rebuilt cold on demand.
            carried = []
            masks_carried = 0
            for key, population in self._population_cache.items():
                key_name, key_version, where_key, average = key
                if key_name != name or key_version != state.version:
                    continue
                where = population.where
                empty = where.is_empty()
                appended_part = appended if empty else appended.select(where)
                new_filtered = new_table if empty else new_table.select(where)
                estimator = self._make_estimator(new_state, new_filtered, average)
                old_cache = population.estimator.mask_cache
                if old_cache is not None and estimator.mask_cache is not None:
                    estimator.mask_cache = old_cache.extended(
                        new_filtered, appended_part)
                    masks_carried += len(estimator.mask_cache)
                carried.append(((name, new_state.version, where_key, average),
                                _Population(where, estimator)))

            # The WHERE mask cache extends the same way: cached conjunct
            # masks are revalidated by evaluating the appended rows only, so
            # selectivity-planned scans on the new version start warm.
            with self._datasets_lock:
                where_entry = self._where_masks.get(name)
            carried_where = None
            if where_entry is not None and where_entry[0] == state.version \
                    and len(where_entry[1]) <= WHERE_MASK_CACHE_LIMIT:
                carried_where = (new_state.version,
                                 where_entry[1].extended(new_table, appended))

            with self._datasets_lock:
                invalidated = self._invalidate(name)
                for key, population in carried:
                    self._population_cache.put(key, population)
                if carried_where is not None:
                    self._where_masks[name] = carried_where
                self._datasets[name] = new_state
            return {"dataset": name, "version": new_state.version,
                    "appended_rows": appended.n_rows,
                    "n_rows": new_table.n_rows,
                    "invalidated": invalidated,
                    "masks_carried": masks_carried}

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        """A JSON-compatible snapshot of all cache levels and serving counters."""
        with self._datasets_lock:
            datasets = {
                state.name: {"version": state.version,
                             "rows": state.table.n_rows,
                             "attributes": state.table.n_cols}
                for state in self._datasets.values()
            }
        mask_stats = {"hits": 0, "misses": 0, "entries": 0, "bytes": 0}
        for _, population in self._population_cache.items():
            cache = population.estimator.mask_cache
            if cache is None:
                continue
            snapshot = cache.stats()
            mask_stats["hits"] += snapshot.hits
            mask_stats["misses"] += snapshot.misses
            mask_stats["entries"] += snapshot.entries
            mask_stats["bytes"] += snapshot.bytes

        def level(cache: LRUCache) -> dict:
            snapshot = cache.stats()
            return {"hits": snapshot.hits, "misses": snapshot.misses,
                    "evictions": snapshot.evictions,
                    "invalidations": snapshot.invalidations,
                    "entries": snapshot.entries, "capacity": snapshot.capacity,
                    "bytes": snapshot.bytes,
                    "hit_rate": round(snapshot.hit_rate, 4)}

        with self._flights_lock:
            computations = self._computations
            coalesced = self._coalesced
            batch_deduped = self._batch_deduped
            restored_summaries = self._restored_summaries
        storage: dict = {}
        with self._datasets_lock:
            states = list(self._datasets.values())
        for state in states:
            entry: dict = {}
            if state.store is not None:
                entry.update(state.store.stats())
            scan_stats = getattr(state.table, "scan_stats", None)
            if callable(scan_stats):
                entry["scan"] = scan_stats()
            if entry:
                storage[state.name] = entry
        with self._datasets_lock:
            where_masks = {name: entry[1].stats()
                           for name, entry in self._where_masks.items()}
        planner = {
            "enabled": planner_enabled(),
            **GLOBAL_PLANNER_STATS.snapshot(),
            "where_mask_caches": {
                name: {"hits": s.hits, "misses": s.misses,
                       "entries": s.entries, "bytes": s.bytes}
                for name, s in where_masks.items()},
            "adaptive": {"enabled": adaptive_enabled(),
                         "corrector": GLOBAL_CORRECTOR.snapshot(),
                         "heat": GLOBAL_HEAT.snapshot()},
        }
        result = {
            "datasets": datasets,
            "planner": planner,
            # Morsel-pool accounting: configured width, batches executed
            # (serial vs. fanned out), morsels run, and group-bys answered
            # from committed manifest partials.
            "parallel": {"workers": worker_count(),
                         **GLOBAL_PARALLEL_STATS.snapshot()},
            "plan_cache": level(self._plan_cache),
            "view_cache": level(self._view_cache),
            "population_cache": level(self._population_cache),
            "summary_cache": level(self._summary_cache),
            "mask_caches": mask_stats,
            "computations": computations,
            "coalesced": coalesced,
            "batch_deduped": batch_deduped,
        }
        if storage:
            result["storage"] = storage
            result["restored_summaries"] = restored_summaries
        if self.memory_budget is not None:
            result["memory_budget"] = self.memory_budget.stats()
        if self._http_metrics is not None:
            result["http"] = self._http_metrics.snapshot()
        if self._telemetry is not None:
            result["telemetry"] = self._telemetry.stats()
        # The unified repro_<layer>_<name> view of the same numbers; the
        # classic keys above are the stable API, this is the metrics-scrape
        # vocabulary (shared with GET /metrics).
        result["metrics"] = unified_engine_metrics(result)
        return result

    @property
    def computations(self) -> int:
        """Number of full summary computations performed (cache misses)."""
        with self._flights_lock:
            return self._computations

    # ------------------------------------------------------------------ internals

    def _canonical(self, query: GroupByAvgQuery | str,
                   outcomes: dict | None = None) -> GroupByAvgQuery:
        if isinstance(query, str):
            parsed = self._plan_cache.get(query)
            if outcomes is not None:
                outcomes["plan"] = "miss" if parsed is None else "hit"
            if parsed is None:
                parsed = parse_query(query)
                self._plan_cache.put(query, parsed)
            query = parsed
        return normalize_query(query)

    def _compute(self, state: DatasetState, canonical: GroupByAvgQuery,
                 plan, outcomes: dict | None = None) -> ExplanationSummary:
        with self._flights_lock:
            self._computations += 1
        view = self._view(state, canonical, plan, outcomes)
        population = self._population(state, plan, view, outcomes)
        algorithm = CauSumX(state.table, state.dag, state.config)
        with trace.trace_span("engine.mine",
                              groups=view.m) if trace.enabled() else trace.NOOP:
            return algorithm.explain(
                canonical,
                grouping_attributes=state.grouping_attributes,
                treatment_attributes=state.treatment_attributes,
                view=view, estimator=population.estimator)

    def _view(self, state: DatasetState, canonical: GroupByAvgQuery,
              plan, outcomes: dict | None = None) -> AggregateView:
        key = (state.name, state.version, plan.fingerprint)
        view = self._view_cache.get(key)
        if outcomes is not None:
            outcomes["view"] = "miss" if view is None else "hit"
        if view is None:
            with trace.trace_span("engine.view_materialize",
                                  dataset=state.name):
                view = AggregateView(state.table, canonical,
                                     mask_cache=self._where_mask_cache(state))
            self._view_cache.put(key, view)
            if adaptive_enabled():
                # Feed the executed scan's estimated-vs-actual selectivities
                # into the corrector — the source of every later correction,
                # drift purge, and (via heat, separately) index promotion.
                GLOBAL_CORRECTOR.observe_plan(
                    self._incarnation(state), getattr(view, "scan_plan", None))
        return view

    def _where_mask_cache(self, state: DatasetState) -> MaskCache:
        """The per-dataset-version mask cache WHERE conjuncts route through.

        Different queries over one dataset repeat the same WHERE predicates;
        routing the planned scan through a shared
        :class:`~repro.dataframe.MaskCache` makes a repeated subexpression
        one cached AND instead of a kernel pass.  (Storage-backed tables
        skip it inside ``planned_select`` — shard pruning wins there.)

        The cache is bounded: each entry is one ``n_rows``-byte mask, so
        once a workload of ever-distinct predicates pushes past
        ``WHERE_MASK_CACHE_LIMIT`` entries the cache is flushed rather than
        allowed to grow for the life of the process (unlike the LRU levels,
        masks are cheap to recompute and expensive to keep).
        """
        with self._datasets_lock:
            entry = self._where_masks.get(state.name)
            if entry is not None:
                version, cache = entry
                if version == state.version:
                    if len(cache) > WHERE_MASK_CACHE_LIMIT:
                        cache.clear()
                    return cache
                if version > state.version:
                    # A reader still mid-flight on the previous data version
                    # (append_rows already installed the extended cache for
                    # the new one): serve it a private throwaway cache
                    # instead of clobbering the warm entry.
                    return MaskCache(state.table)
            cache = MaskCache(state.table)
            self._where_masks[state.name] = (state.version, cache)
            return cache

    def _population(self, state: DatasetState, plan, view: AggregateView,
                    outcomes: dict | None = None) -> _Population:
        key = (state.name, state.version, plan.where_key, plan.average)
        population = self._population_cache.get(key)
        if outcomes is not None:
            outcomes["population"] = "miss" if population is None else "hit"
        if population is None:
            estimator = self._make_estimator(state, view.table, plan.average)
            population = _Population(plan.filter, estimator)
            self._population_cache.put(key, population)
        return population

    @staticmethod
    def _make_estimator(state: DatasetState, table: Table,
                        average: str) -> CATEEstimator:
        return CauSumX.build_estimator(table, average, state.dag, state.config)

    def _invalidate(self, name: str) -> int:  # guarded-by: _datasets_lock
        """Drop every cache entry belonging to dataset ``name`` (any version)."""
        invalidated = 0
        for cache in (self._summary_cache, self._view_cache,
                      self._population_cache):
            invalidated += cache.purge(lambda key: key[0] == name)
        self._where_masks.pop(name, None)
        return invalidated


def _summary_nbytes(summary) -> int:
    """Approximate retained bytes of a summary: its pickled size.

    Deterministic, cheap relative to computing a summary, and proportional
    to what the cache actually keeps alive (patterns, estimates, metadata).
    """
    return len(pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL))
