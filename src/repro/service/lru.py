"""A small thread-safe LRU cache with hit/miss/eviction/invalidation stats.

Backs every cache level of the explanation engine (parsed plans, materialised
views, bound populations, finished summaries).  Deliberately minimal: plain
``OrderedDict`` + lock, no TTLs — entries are invalidated explicitly when a
dataset's data version moves (:meth:`purge`), and capacity evictions drop the
least recently *used* entry.

A cache may additionally participate in a shared
:class:`~repro.service.membudget.MemoryBudget`: constructed with ``budget=``
and ``weigher=`` it weighs every inserted value (bytes), stamps each
hit/insert with the budget's global recency clock, and lets the budget evict
globally-least-recent entries across *all* attached caches when the summed
bytes exceed the cap (the cross-engine memory budget of ROADMAP item (e)).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.analysis.lockwatch import named_lock


@dataclass(frozen=True)
class LRUStats:
    """A snapshot of :class:`LRUCache` accounting."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    entries: int
    capacity: int
    bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with bounded capacity and usage accounting.

    Parameters
    ----------
    capacity:
        Maximum number of entries (count-based, always enforced).
    budget / weigher:
        Optional shared :class:`~repro.service.membudget.MemoryBudget` and a
        ``value -> bytes`` weigher.  With both set, inserts are weighed and
        the budget may evict this cache's least-recent entries to keep the
        global byte total under its cap.
    """

    def __init__(self, capacity: int = 128, budget=None,
                 weigher: Callable | None = None):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.budget = budget
        self.weigher = weigher
        self._lock = named_lock("LRUCache._lock")
        self._entries: OrderedDict = OrderedDict()  # guarded-by: _lock
        self._weights: dict = {}  # guarded-by: _lock
        self._stamps: dict = {}  # guarded-by: _lock
        self._total_bytes = 0  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._invalidations = 0  # guarded-by: _lock
        if budget is not None:
            budget.attach(self)

    # ------------------------------------------------------------------ core ops

    def get(self, key: Hashable, default=None):
        """Look up ``key``, marking it most recently used.  Counts a hit/miss."""
        stamp = self.budget.tick() if self.budget is not None else None
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                if stamp is not None:
                    self._stamps[key] = stamp
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when over capacity."""
        weight = self.weigher(value) if self.weigher is not None else 0
        stamp = self.budget.tick() if self.budget is not None else None
        with self._lock:
            if key in self._entries:
                self._total_bytes -= self._weights.get(key, 0)
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._weights[key] = weight
            self._total_bytes += weight
            if stamp is not None:
                self._stamps[key] = stamp
            while len(self._entries) > self.capacity:
                self._drop_oldest_locked()
                self._evictions += 1
        if self.budget is not None:
            self.budget.rebalance()

    def peek(self, key: Hashable, default=None):
        """Look up ``key`` without touching recency or hit/miss accounting."""
        with self._lock:
            return self._entries.get(key, default)

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate`` (invalidation).

        Returns the number of entries removed.
        """
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for k in doomed:
                del self._entries[k]
                self._total_bytes -= self._weights.pop(k, 0)
                self._stamps.pop(k, None)
            self._invalidations += len(doomed)
            return len(doomed)

    def items(self) -> Iterable[tuple]:
        """A point-in-time snapshot of ``(key, value)`` pairs."""
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._weights.clear()
            self._stamps.clear()
            self._total_bytes = 0

    # ------------------------------------------------------------------ budget hooks

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def oldest_stamp(self):
        """Recency stamp of the LRU entry, or ``None`` when empty/unstamped."""
        with self._lock:
            for key in self._entries:  # first key = least recently used
                return self._stamps.get(key, 0)
            return None

    def evict_oldest(self):
        """Evict the LRU entry for the budget; returns its weight (or None)."""
        with self._lock:
            if not self._entries:
                return None
            weight = self._drop_oldest_locked()
            self._evictions += 1
            return weight

    def _drop_oldest_locked(self) -> int:  # guarded-by: _lock
        key, _ = self._entries.popitem(last=False)
        weight = self._weights.pop(key, 0)
        self._stamps.pop(key, None)
        self._total_bytes -= weight
        return weight

    # ------------------------------------------------------------------ dunder / stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> LRUStats:
        with self._lock:
            return LRUStats(hits=self._hits, misses=self._misses,
                            evictions=self._evictions,
                            invalidations=self._invalidations,
                            entries=len(self._entries), capacity=self.capacity,
                            bytes=self._total_bytes)
