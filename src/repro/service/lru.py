"""A small thread-safe LRU cache with hit/miss/eviction/invalidation stats.

Backs every cache level of the explanation engine (parsed plans, materialised
views, bound populations, finished summaries).  Deliberately minimal: plain
``OrderedDict`` + lock, no TTLs — entries are invalidated explicitly when a
dataset's data version moves (:meth:`purge`), and capacity evictions drop the
least recently *used* entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable


@dataclass(frozen=True)
class LRUStats:
    """A snapshot of :class:`LRUCache` accounting."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    entries: int
    capacity: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with bounded capacity and usage accounting."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: Hashable, default=None):
        """Look up ``key``, marking it most recently used.  Counts a hit/miss."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when over capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def peek(self, key: Hashable, default=None):
        """Look up ``key`` without touching recency or hit/miss accounting."""
        with self._lock:
            return self._entries.get(key, default)

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate`` (invalidation).

        Returns the number of entries removed.
        """
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for k in doomed:
                del self._entries[k]
            self._invalidations += len(doomed)
            return len(doomed)

    def items(self) -> Iterable[tuple]:
        """A point-in-time snapshot of ``(key, value)`` pairs."""
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> LRUStats:
        with self._lock:
            return LRUStats(hits=self._hits, misses=self._misses,
                            evictions=self._evictions,
                            invalidations=self._invalidations,
                            entries=len(self._entries), capacity=self.capacity)
