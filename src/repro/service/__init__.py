"""The explanation-serving layer: a persistent engine above the framework.

``repro.service`` turns the one-shot ``CauSumX.explain`` pipeline into a
long-lived, cache-backed service: datasets are registered once, queries are
canonicalised and fingerprinted, summaries are served through a multi-level
cache hierarchy with single-flighted computation, batches deduplicate and
parallelise, and new data arrives incrementally via versioned appends.  See
:class:`ExplanationEngine` for the full contract.
"""

from repro.service.engine import DatasetState, ExplanationEngine
from repro.service.lru import LRUCache, LRUStats
from repro.service.membudget import MemoryBudget
from repro.service.server import (OPS, ProtocolError, classify_error,
                                  dispatch_request, error_envelope,
                                  finalize_response, handle_request,
                                  parse_request, read_queries, run_batch,
                                  serve_loop)

__all__ = [
    "DatasetState",
    "ExplanationEngine",
    "LRUCache",
    "LRUStats",
    "MemoryBudget",
    "OPS",
    "ProtocolError",
    "classify_error",
    "dispatch_request",
    "error_envelope",
    "finalize_response",
    "handle_request",
    "parse_request",
    "read_queries",
    "run_batch",
    "serve_loop",
]
