"""Request-parsing and dispatch core shared by every engine front end.

Three entry points are wired into the CLI:

* :func:`serve_loop` — a JSON-lines request/response loop (``repro serve``).
  Each input line is either a bare SQL string (shorthand for an ``explain``
  request) or a JSON object::

      {"op": "explain", "query": "SELECT ...", "id": 7}
      {"op": "explain_plan", "query": "SELECT ..."}
      {"op": "batch", "queries": ["SELECT ...", ...]}
      {"op": "append_rows", "rows": [{"A": 1, ...}, ...]}
      {"op": "stats"}
      {"op": "snapshot"}        # persist warm state to the backing store
      {"op": "quit"}

  Every request yields exactly one JSON response line with ``"ok"`` set, the
  request's ``"id"`` echoed back (when given), and either the payload or an
  ``"error"`` string; ``quit`` is acknowledged with ``{"ok": true, "quit":
  true}`` before the loop stops.  The loop never crashes on a bad request.

* :func:`run_batch` — read a file of queries (one SQL statement per line,
  ``#`` comments allowed, or a JSON array of strings), serve them through
  :meth:`~repro.service.ExplanationEngine.explain_many`, and emit the JSON
  summaries (``repro batch``).

* The HTTP tier (:mod:`repro.net`) calls :func:`dispatch_request` /
  :func:`error_envelope` directly, so an HTTP response body is byte-for-byte
  the line the stdin loop would have written for the same request.

Errors are *structured*: every failure envelope carries ``"error_code"`` —
``bad_request`` (malformed JSON / SQL / arguments), ``unknown_op``,
``unknown_dataset``, or ``internal`` — so transports can map failures onto
their own status vocabulary (the HTTP tier uses 400/404/404/500) without
string-matching.  The stdin loop keeps the same ``ok``/``error`` envelope it
always had; ``error_code`` is an additional key.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterable

from repro.core import summary_to_dict
from repro.obs import trace
from repro.service.engine import ExplanationEngine

#: Every op the dispatch core understands (``quit`` is loop-only: the HTTP
#: tier refuses it with ``unknown_op`` and shuts down via signals instead).
OPS = ("explain", "explain_plan", "batch", "append_rows", "stats", "snapshot")


class ProtocolError(Exception):
    """A request failure with a machine-readable ``code``.

    ``code`` is one of ``bad_request`` / ``unknown_op`` / ``unknown_dataset``
    / ``internal`` for failures raised by the dispatch core; transports may
    define additional codes (the HTTP tier adds ``shed``, ``draining``, and
    ``deadline_exceeded``).
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def classify_error(exc: BaseException) -> str:
    """The ``error_code`` for an exception escaping an op handler.

    Value/key/type errors come from the request's own content (bad SQL, a
    schema mismatch, wrong argument shapes) and are the client's fault;
    anything else is an ``internal`` failure of the server.
    """
    if isinstance(exc, ProtocolError):
        return exc.code
    if isinstance(exc, (ValueError, KeyError, TypeError)):
        return "bad_request"
    return "internal"


def error_envelope(exc: BaseException) -> dict:
    """The ``{"ok": false, ...}`` response body for a failed request."""
    if isinstance(exc, ProtocolError):
        return {"ok": False, "error": str(exc), "error_code": exc.code}
    return {"ok": False, "error": f"{type(exc).__name__}: {exc}",
            "error_code": classify_error(exc)}


def parse_request(line: str) -> dict:
    """Parse one request line into a request dict.

    A bare SQL string is shorthand for ``{"op": "explain", "query": ...}``.
    Raises :class:`ProtocolError` (``bad_request``) on malformed input.
    """
    line = line.strip()
    if not line:
        raise ProtocolError("bad_request", "empty request")
    if not line.startswith("{"):
        return {"op": "explain", "query": line}
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(
            "bad_request", "request must be a JSON object or a SQL string")
    return request


def _require(request: dict, field: str):
    try:
        return request[field]
    except KeyError:
        raise ProtocolError(
            "bad_request",
            f"request op {request.get('op')!r} requires field {field!r}"
        ) from None


def dispatch_request(engine: ExplanationEngine, dataset: str, request: dict,
                     deadline=None) -> dict:
    """Execute one parsed request and return its success envelope.

    This is the dispatch core every front end shares: the stdin loop wraps it
    in :func:`handle_request`, the HTTP tier calls it directly.  Failures are
    raised (:class:`ProtocolError` for structured protocol failures, the
    original exception otherwise); use :func:`error_envelope` to format them.

    ``deadline`` is an optional cooperative-cancellation hook: any object
    with a ``check()`` method raising on expiry (see
    :class:`repro.net.Deadline`).  It is consulted at op boundaries — before
    the op starts and, for ``batch``, between queries — never mid-kernel, so
    a response that does come back is always a complete, correct one.
    """
    op = request.get("op", "explain")
    target = request.get("dataset", dataset)
    if op == "quit":
        return {"ok": True, "quit": True}
    if op not in OPS:
        raise ProtocolError("unknown_op", f"unknown op {op!r}")
    if deadline is not None:
        deadline.check(f"op {op!r}")
    if op in ("explain", "explain_plan", "batch", "append_rows"):
        try:
            engine.dataset_state(target)
        except KeyError as exc:
            raise ProtocolError("unknown_dataset", str(exc).strip('"\'')) \
                from exc
    if op == "explain":
        summary, info = engine.explain_with_info(target, _require(request, "query"))
        return {"ok": True, "result": summary_to_dict(summary),
                "cached": info["cached"], "coalesced": info["coalesced"],
                "fingerprint": info["fingerprint"],
                "version": info["version"]}
    if op == "explain_plan":
        return {"ok": True,
                "result": engine.explain_plan(target, _require(request, "query"))}
    if op == "batch":
        queries = list(_require(request, "queries"))
        if deadline is None:
            summaries = engine.explain_many(target, queries)
        else:
            # Cooperative cancellation between queries: each query is served
            # individually (the summary cache makes this equivalent to the
            # deduplicating batch path) so an expired deadline stops the
            # batch at the next boundary instead of after the whole batch.
            summaries = []
            for query in queries:
                deadline.check("batch query")
                summaries.append(engine.explain(target, query))
        return {"ok": True,
                "results": [summary_to_dict(s) for s in summaries]}
    if op == "append_rows":
        return {"ok": True,
                "result": engine.append_rows(target, _require(request, "rows"))}
    if op == "stats":
        return {"ok": True, "result": engine.stats()}
    # snapshot
    return {"ok": True, "result": engine.snapshot()}


def finalize_response(response: dict, request_id=None, trace_id=None,
                      duration_ms=None) -> dict:
    """Append the envelope tail fields in their one deterministic order.

    Every front end (stdin loop, HTTP tier) finishes its envelope here, so
    ``id`` → ``trace_id`` → ``duration_ms`` always appear in that order at
    the end of the body.  With tracing off, ``trace_id``/``duration_ms`` are
    ``None`` and nothing is appended — the body is byte-identical to a build
    without observability.  With tracing on, the fixed ordering means a
    byte-identity check only has to pop the two volatile trailing fields.
    """
    if request_id is not None:
        response["id"] = request_id
    if trace_id is not None:
        response["trace_id"] = trace_id
    if duration_ms is not None:
        response["duration_ms"] = round(duration_ms, 3)
    return response


def handle_request(engine: ExplanationEngine, dataset: str, line: str) -> dict:
    """Handle one request line and return the response dict.

    A ``quit`` request is acknowledged with ``{"ok": True, "quit": True}`` —
    the caller decides to stop on the ``"quit"`` marker.
    """
    request_id = None
    traced = trace.enabled()
    started = time.perf_counter() if traced else 0.0
    trace_id = trace.new_trace_id() if traced else None
    with trace.new_trace("serve.request", trace_id=trace_id):
        try:
            request = parse_request(line)
            request_id = request.get("id")
            response = dispatch_request(engine, dataset, request)
        except Exception as exc:  # noqa: BLE001 — protocol boundary, report and carry on
            response = error_envelope(exc)
    duration_ms = (time.perf_counter() - started) * 1000.0 if traced else None
    return finalize_response(response, request_id, trace_id, duration_ms)


def serve_loop(engine: ExplanationEngine, dataset: str,
               lines: Iterable[str], out: IO[str]) -> int:
    """Run the JSON-lines loop until EOF or a ``quit`` request.

    Returns the number of requests handled.
    """
    handled = 0
    for line in lines:
        if not line.strip():
            continue
        response = handle_request(engine, dataset, line)
        handled += 1
        out.write(json.dumps(response, default=str) + "\n")
        out.flush()
        if response.get("quit"):
            break
    return handled


def read_queries(text: str) -> list[str]:
    """Parse a batch-query file: a JSON array of strings, or one SQL per line."""
    stripped = text.strip()
    if stripped.startswith("["):
        queries = json.loads(stripped)
        if not isinstance(queries, list) or \
                not all(isinstance(q, str) for q in queries):
            raise ValueError("JSON query file must be an array of SQL strings")
        return queries
    return [line.strip() for line in text.splitlines()
            if line.strip() and not line.lstrip().startswith("#")]


def run_batch(engine: ExplanationEngine, dataset: str,
              queries: list[str], out: IO[str]) -> list[dict]:
    """Serve a list of queries and write one JSON array of summaries to ``out``."""
    summaries = engine.explain_many(dataset, queries)
    payload = [summary_to_dict(s) for s in summaries]
    json.dump(payload, out, indent=2, default=str)
    out.write("\n")
    out.flush()
    return payload
