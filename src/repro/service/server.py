"""Request-loop front ends for the explanation engine.

Two entry points, both wired into the CLI:

* :func:`serve_loop` — a JSON-lines request/response loop (``repro serve``).
  Each input line is either a bare SQL string (shorthand for an ``explain``
  request) or a JSON object::

      {"op": "explain", "query": "SELECT ...", "id": 7}
      {"op": "explain_plan", "query": "SELECT ..."}
      {"op": "batch", "queries": ["SELECT ...", ...]}
      {"op": "append_rows", "rows": [{"A": 1, ...}, ...]}
      {"op": "stats"}
      {"op": "snapshot"}        # persist warm state to the backing store
      {"op": "quit"}

  Every request yields exactly one JSON response line with ``"ok"`` set, the
  request's ``"id"`` echoed back (when given), and either the payload or an
  ``"error"`` string; ``quit`` is acknowledged with ``{"ok": true, "quit":
  true}`` before the loop stops.  The loop never crashes on a bad request.

* :func:`run_batch` — read a file of queries (one SQL statement per line,
  ``#`` comments allowed, or a JSON array of strings), serve them through
  :meth:`~repro.service.ExplanationEngine.explain_many`, and emit the JSON
  summaries (``repro batch``).
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.core import summary_to_dict
from repro.service.engine import ExplanationEngine


def handle_request(engine: ExplanationEngine, dataset: str, line: str) -> dict:
    """Handle one request line and return the response dict.

    A ``quit`` request is acknowledged with ``{"ok": True, "quit": True}`` —
    the caller decides to stop on the ``"quit"`` marker.
    """
    line = line.strip()
    if not line:
        return {"ok": False, "error": "empty request"}
    request_id = None
    try:
        if line.startswith("{"):
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object or a SQL string")
        else:
            request = {"op": "explain", "query": line}
        request_id = request.get("id")
        op = request.get("op", "explain")
        target = request.get("dataset", dataset)
        if op == "quit":
            response = {"ok": True, "quit": True}
            if request_id is not None:
                response["id"] = request_id
            return response
        if op == "explain":
            summary, info = engine.explain_with_info(target, request["query"])
            response = {"ok": True, "result": summary_to_dict(summary),
                        "cached": info["cached"], "coalesced": info["coalesced"],
                        "fingerprint": info["fingerprint"],
                        "version": info["version"]}
        elif op == "explain_plan":
            response = {"ok": True,
                        "result": engine.explain_plan(target, request["query"])}
        elif op == "batch":
            summaries = engine.explain_many(target, list(request["queries"]))
            response = {"ok": True,
                        "results": [summary_to_dict(s) for s in summaries]}
        elif op == "append_rows":
            response = {"ok": True,
                        "result": engine.append_rows(target, request["rows"])}
        elif op == "stats":
            response = {"ok": True, "result": engine.stats()}
        elif op == "snapshot":
            response = {"ok": True, "result": engine.snapshot()}
        else:
            raise ValueError(f"unknown op {op!r}")
    except Exception as exc:  # noqa: BLE001 — protocol boundary, report and carry on
        response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    if request_id is not None:
        response["id"] = request_id
    return response


def serve_loop(engine: ExplanationEngine, dataset: str,
               lines: Iterable[str], out: IO[str]) -> int:
    """Run the JSON-lines loop until EOF or a ``quit`` request.

    Returns the number of requests handled.
    """
    handled = 0
    for line in lines:
        if not line.strip():
            continue
        response = handle_request(engine, dataset, line)
        handled += 1
        out.write(json.dumps(response, default=str) + "\n")
        out.flush()
        if response.get("quit"):
            break
    return handled


def read_queries(text: str) -> list[str]:
    """Parse a batch-query file: a JSON array of strings, or one SQL per line."""
    stripped = text.strip()
    if stripped.startswith("["):
        queries = json.loads(stripped)
        if not isinstance(queries, list) or \
                not all(isinstance(q, str) for q in queries):
            raise ValueError("JSON query file must be an array of SQL strings")
        return queries
    return [line.strip() for line in text.splitlines()
            if line.strip() and not line.lstrip().startswith("#")]


def run_batch(engine: ExplanationEngine, dataset: str,
              queries: list[str], out: IO[str]) -> list[dict]:
    """Serve a list of queries and write one JSON array of summaries to ``out``."""
    summaries = engine.explain_many(dataset, queries)
    payload = [summary_to_dict(s) for s in summaries]
    json.dump(payload, out, indent=2, default=str)
    out.write("\n")
    out.flush()
    return payload
