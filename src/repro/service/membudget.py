"""A byte-capped memory budget shared across engines (ROADMAP item (e)).

Each :class:`~repro.service.ExplanationEngine` bounds its summary cache by
*entry count*, which says nothing about memory: a deployment serving many
datasets from many engines can blow past RAM with every individual cache
"under capacity".  :class:`MemoryBudget` closes that gap: caches attach to
one shared budget, every inserted value is weighed (bytes), and when the
*global* total exceeds the cap the budget evicts the globally
least-recently-used entry — whichever cache it lives in — until the total
fits.  Recency is compared across caches through a shared monotonic clock
that stamps each cache hit/insert.

The budget only ever *removes* cache entries, so it cannot change results —
an evicted summary is simply recomputed on the next request (and the
eviction is visible in ``engine.stats()["memory_budget"]``).
"""

from __future__ import annotations

import itertools

from repro.analysis.lockwatch import named_lock


class MemoryBudget:
    """Shared byte cap with cross-cache LRU eviction.

    Parameters
    ----------
    capacity_bytes:
        Global ceiling for the summed weight of all attached caches' entries.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._lock = named_lock("MemoryBudget._lock")
        self._caches: list = []  # guarded-by: _lock
        self._clock = itertools.count(1)
        self._evictions = 0  # guarded-by: _lock
        self._bytes_evicted = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ wiring

    def attach(self, cache) -> None:
        """Register a cache (called by ``LRUCache(budget=...)``)."""
        with self._lock:
            self._caches.append(cache)

    def tick(self) -> int:
        """Next value of the shared recency clock (thread-safe)."""
        return next(self._clock)

    # ------------------------------------------------------------------ accounting

    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes_locked()

    def _total_bytes_locked(self) -> int:  # guarded-by: _lock
        return sum(cache.total_bytes for cache in self._caches)

    def rebalance(self) -> int:
        """Evict globally-LRU entries until the total fits the cap.

        Called by attached caches after each insert.  Returns the number of
        entries evicted by this call.
        """
        evicted = 0
        with self._lock:
            while self._total_bytes_locked() > self.capacity_bytes:
                victim = None
                victim_stamp = None
                for cache in self._caches:
                    stamp = cache.oldest_stamp()
                    if stamp is None:
                        continue
                    if victim_stamp is None or stamp < victim_stamp:
                        victim, victim_stamp = cache, stamp
                if victim is None:
                    break  # nothing left to evict
                freed = victim.evict_oldest()
                if freed is None:
                    break
                self._evictions += 1
                self._bytes_evicted += freed
                evicted += 1
        return evicted

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        with self._lock:
            evictions = self._evictions
            bytes_evicted = self._bytes_evicted
            caches = len(self._caches)
        return {
            "capacity_bytes": self.capacity_bytes,
            "bytes": self.total_bytes(),
            "caches": caches,
            "evictions": evictions,
            "bytes_evicted": bytes_evicted,
        }
