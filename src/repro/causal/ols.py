"""Ordinary least squares with coefficient standard errors and p-values."""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class OLSResult:
    """Fitted OLS coefficients plus inferential statistics."""

    coefficients: np.ndarray
    std_errors: np.ndarray
    t_values: np.ndarray
    p_values: np.ndarray
    feature_names: tuple[str, ...]
    n_obs: int
    df_resid: int
    r_squared: float

    def coefficient(self, name: str) -> float:
        return float(self.coefficients[self.feature_names.index(name)])

    def std_error(self, name: str) -> float:
        return float(self.std_errors[self.feature_names.index(name)])

    def p_value(self, name: str) -> float:
        return float(self.p_values[self.feature_names.index(name)])


class ReusableDesign:
    """A preallocated ``[intercept | treatment | confounders]`` design matrix.

    CATE estimation fits the same regression once per candidate treatment,
    and only the treatment indicator (column 1) changes between fits.  This
    class allocates the full design buffer a single time — ones in column 0,
    the fixed confounder block in columns 2: — and each :meth:`fit` merely
    overwrites the treatment column before calling :func:`ols_fit`, instead
    of rebuilding the matrix with ``np.hstack`` per treatment.

    The buffer contents fed to :func:`ols_fit` are element-for-element what
    the ``hstack`` produced, so estimates are byte-identical to the old path.
    Buffers are thread-local: concurrent treatment miners sharing one bound
    sub-population each write into their own copy, so fits never race.
    """

    def __init__(self, confounders: np.ndarray, confounder_names: list[str]):
        confounders = np.asarray(confounders, dtype=np.float64)
        n = confounders.shape[0]
        template = np.empty((n, confounders.shape[1] + 2), dtype=np.float64)
        template[:, 0] = 1.0
        template[:, 2:] = confounders
        self._template = template
        self.feature_names = ["intercept", "__treatment__", *confounder_names]
        self._local = threading.local()

    def fit(self, treated: np.ndarray, outcome: np.ndarray) -> OLSResult:
        """Fit ``outcome ~ intercept + treated + confounders`` reusing the buffer."""
        buffer = getattr(self._local, "buffer", None)
        if buffer is None:
            buffer = self._template.copy()
            self._local.buffer = buffer
        buffer[:, 1] = treated  # bool -> float64 cast is exact
        return ols_fit(buffer, outcome, self.feature_names)


def ols_fit(design: np.ndarray, outcome: np.ndarray,
            feature_names: list[str] | None = None) -> OLSResult:
    """Fit ``outcome ~ design`` by least squares.

    Uses the pseudo-inverse so rank-deficient designs (e.g. collinear one-hot
    blocks) do not fail; standard errors for unidentifiable coefficients are
    large rather than raising.
    """
    design = np.asarray(design, dtype=np.float64)
    outcome = np.asarray(outcome, dtype=np.float64)
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-dimensional")
    n, p = design.shape
    if outcome.shape != (n,):
        raise ValueError("outcome length does not match design matrix")
    if feature_names is None:
        feature_names = [f"x{i}" for i in range(p)]
    if len(feature_names) != p:
        raise ValueError("feature_names length does not match design matrix")

    gram = design.T @ design
    gram_pinv = np.linalg.pinv(gram)
    coefficients = gram_pinv @ design.T @ outcome
    fitted = design @ coefficients
    residuals = outcome - fitted
    df_resid = max(n - np.linalg.matrix_rank(design), 1)
    sigma2 = float(residuals @ residuals) / df_resid
    covariance = sigma2 * gram_pinv
    variances = np.clip(np.diag(covariance), 0.0, None)
    std_errors = np.sqrt(variances)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = np.where(std_errors > 0, coefficients / std_errors, 0.0)
    p_values = 2.0 * stats.t.sf(np.abs(t_values), df_resid)

    total_ss = float(((outcome - outcome.mean()) ** 2).sum())
    resid_ss = float((residuals ** 2).sum())
    r_squared = 1.0 - resid_ss / total_ss if total_ss > 0 else 0.0

    return OLSResult(
        coefficients=coefficients,
        std_errors=std_errors,
        t_values=t_values,
        p_values=np.asarray(p_values),
        feature_names=tuple(feature_names),
        n_obs=n,
        df_resid=df_resid,
        r_squared=r_squared,
    )
