"""Observational causal inference: ATE/CATE estimation with backdoor adjustment."""

from repro.causal.effects import EffectEstimate
from repro.causal.ols import OLSResult, ols_fit
from repro.causal.estimators import (
    BoundSubpopulation,
    CATEEstimator,
    naive_difference_in_means,
    estimate_ate,
    estimate_cate,
)
from repro.causal.propensity import ipw_ate, propensity_scores
from repro.causal.matching import matching_ate
from repro.causal.bootstrap import BootstrapInterval, bootstrap_cate
from repro.causal.assumptions import overlap_holds, check_positivity

__all__ = [
    "matching_ate",
    "BootstrapInterval",
    "bootstrap_cate",
    "EffectEstimate",
    "OLSResult",
    "ols_fit",
    "BoundSubpopulation",
    "CATEEstimator",
    "naive_difference_in_means",
    "estimate_ate",
    "estimate_cate",
    "ipw_ate",
    "propensity_scores",
    "overlap_holds",
    "check_positivity",
]
