"""Checks for the identification assumptions of Section 3 (overlap / positivity)."""

from __future__ import annotations

import numpy as np


def overlap_holds(treatment_mask: np.ndarray) -> bool:
    """The overlap condition Eq. (4): both treated and control units must exist."""
    treatment_mask = np.asarray(treatment_mask, dtype=bool)
    n_treated = int(treatment_mask.sum())
    return 0 < n_treated < treatment_mask.size


def check_positivity(treatment_mask: np.ndarray, min_group_size: int = 1) -> bool:
    """Stricter overlap check requiring at least ``min_group_size`` units per arm."""
    treatment_mask = np.asarray(treatment_mask, dtype=bool)
    n_treated = int(treatment_mask.sum())
    n_control = int(treatment_mask.size - n_treated)
    return n_treated >= min_group_size and n_control >= min_group_size
