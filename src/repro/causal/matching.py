"""Nearest-neighbour matching estimator for treatment effects.

Matching is the classic alternative to regression adjustment (Rubin 1971,
referenced in Section 3 of the paper): every treated unit is matched to its
closest control unit in covariate space and the effect is the average of the
within-pair outcome differences.  It is provided as a cross-check for the
regression estimator used by CauSumX — on data where both are applicable they
should roughly agree, which the test suite verifies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.causal.assumptions import check_positivity
from repro.causal.effects import EffectEstimate
from repro.dataframe import Pattern, Table, design_matrix


def matching_ate(table: Table, treatment: Pattern, outcome: str,
                 adjustment: Sequence[str] = (), n_neighbors: int = 1,
                 min_group_size: int = 10, max_treated: int | None = 2000,
                 seed: int = 0) -> EffectEstimate:
    """ATT-style matching estimate of the effect of a treatment pattern.

    Parameters
    ----------
    table:
        The data.
    treatment:
        Pattern defining the treated group (control is its complement).
    outcome:
        Numeric outcome attribute.
    adjustment:
        Covariates to match on (one-hot encoded and standardised).  With an
        empty list the estimator degenerates to the difference in means.
    n_neighbors:
        Number of control matches per treated unit (averaged).
    max_treated:
        Optional cap on the number of treated units matched (random subsample),
        keeping the O(treated x control) distance computation bounded.
    """
    treated_mask = treatment.evaluate(table)
    outcome_values = table.column(outcome).values.astype(np.float64)
    valid = ~np.isnan(outcome_values)
    treated_mask = treated_mask & valid
    control_mask = ~treatment.evaluate(table) & valid

    n_treated = int(treated_mask.sum())
    n_control = int(control_mask.sum())
    if not check_positivity(np.concatenate([np.ones(n_treated, dtype=bool),
                                            np.zeros(n_control, dtype=bool)]),
                            min_group_size):
        return EffectEstimate.undefined(n_treated, n_control, estimator="matching")

    adjustment = [a for a in adjustment if a in table and a != outcome
                  and len(table.domain(a)) > 1]
    covariates, _ = design_matrix(table, adjustment)
    if covariates.shape[1]:
        std = covariates.std(axis=0)
        std[std == 0] = 1.0
        covariates = (covariates - covariates.mean(axis=0)) / std

    treated_idx = np.nonzero(treated_mask)[0]
    control_idx = np.nonzero(control_mask)[0]
    if max_treated is not None and treated_idx.size > max_treated:
        rng = np.random.default_rng(seed)
        treated_idx = rng.choice(treated_idx, size=max_treated, replace=False)

    if covariates.shape[1] == 0:
        differences = outcome_values[treated_idx] - outcome_values[control_idx].mean()
    else:
        control_cov = covariates[control_idx]
        differences = np.empty(treated_idx.size, dtype=np.float64)
        k = min(n_neighbors, control_idx.size)
        for i, t in enumerate(treated_idx):
            distances = np.linalg.norm(control_cov - covariates[t], axis=1)
            nearest = np.argpartition(distances, k - 1)[:k]
            differences[i] = outcome_values[t] - outcome_values[control_idx[nearest]].mean()

    effect = float(differences.mean())
    std_error = float(differences.std(ddof=1) / np.sqrt(differences.size)) \
        if differences.size > 1 else float("nan")
    if std_error and std_error > 0:
        from scipy import stats

        p_value = float(2 * stats.t.sf(abs(effect) / std_error, differences.size - 1))
    else:
        p_value = 1.0
    return EffectEstimate(effect, std_error, p_value, n_treated, n_control,
                          estimator="matching")
