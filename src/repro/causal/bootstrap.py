"""Bootstrap confidence intervals for CATE estimates.

The regression estimator reports an analytic standard error; the bootstrap
gives a distribution-free alternative used by the robustness tests and
available to library users who want interval estimates in explanation
summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.causal.estimators import CATEEstimator
from repro.dataframe import Pattern


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap confidence interval for a treatment effect."""

    point_estimate: float
    lower: float
    upper: float
    level: float
    n_resamples: int

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def excludes_zero(self) -> bool:
        """A bootstrap analogue of statistical significance."""
        return not self.contains(0.0)


def bootstrap_cate(estimator: CATEEstimator, treatment: Pattern,
                   subpopulation: Pattern | None = None, n_resamples: int = 200,
                   level: float = 0.95, seed: int = 0) -> BootstrapInterval:
    """Percentile bootstrap interval for ``CATE(treatment | subpopulation)``.

    Each resample draws rows with replacement from the (sub-population of the)
    estimator's table and re-runs the same regression-adjustment estimate.
    Resamples where the estimate is undefined (overlap violated by chance) are
    skipped.
    """
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("need at least 10 resamples")
    base_table = estimator.table if subpopulation is None or subpopulation.is_empty() \
        else estimator.table.select(subpopulation)
    point = estimator.estimate(treatment, subpopulation)

    rng = np.random.default_rng(seed)
    estimates = []
    for _ in range(n_resamples):
        indices = rng.integers(0, base_table.n_rows, size=base_table.n_rows)
        resample = base_table.take(indices)
        resample_estimator = CATEEstimator(
            resample, estimator.outcome, dag=estimator.dag,
            adjustment=estimator.adjustment, min_group_size=estimator.min_group_size)
        estimate = resample_estimator.estimate(treatment)
        if estimate.is_valid():
            estimates.append(estimate.value)

    if not estimates:
        return BootstrapInterval(point.value, float("nan"), float("nan"),
                                 level, n_resamples)
    alpha = (1.0 - level) / 2.0
    lower, upper = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapInterval(point.value, float(lower), float(upper), level,
                             n_resamples)
