"""Containers for causal-effect estimates."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EffectEstimate:
    """A (conditional) average treatment effect estimate.

    Attributes
    ----------
    value:
        The estimated effect size (difference in expected outcome between
        treated and control under adjustment).
    std_error:
        Standard error of the estimate.
    p_value:
        Two-sided p-value of the null hypothesis "effect = 0".
    n_treated / n_control:
        Number of treated and control units the estimate is based on.
    estimator:
        Name of the estimation strategy ("linear_regression", "ipw", "naive").
    """

    value: float
    std_error: float
    p_value: float
    n_treated: int
    n_control: int
    estimator: str = "linear_regression"

    @property
    def n_units(self) -> int:
        return self.n_treated + self.n_control

    def is_significant(self, alpha: float = 0.05) -> bool:
        """True if the effect is statistically significant at level ``alpha``."""
        return self.p_value < alpha

    def is_valid(self) -> bool:
        """True if the estimate is based on both treated and control units."""
        return self.n_treated > 0 and self.n_control > 0 and self.value == self.value

    @classmethod
    def undefined(cls, n_treated: int = 0, n_control: int = 0,
                  estimator: str = "linear_regression") -> "EffectEstimate":
        """An estimate that could not be computed (overlap violated or no data)."""
        return cls(value=float("nan"), std_error=float("nan"), p_value=1.0,
                   n_treated=n_treated, n_control=n_control, estimator=estimator)

    def __repr__(self) -> str:
        if not self.is_valid():
            return f"EffectEstimate(undefined, treated={self.n_treated}, control={self.n_control})"
        return (f"EffectEstimate(value={self.value:.4g}, p={self.p_value:.3g}, "
                f"treated={self.n_treated}, control={self.n_control})")
