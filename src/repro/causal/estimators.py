"""ATE / CATE estimators with backdoor adjustment (Section 3, Eq. 5).

The main entry point is :class:`CATEEstimator`, which mirrors the paper's use
of the DoWhy linear-regression estimator: the outcome is regressed on the
binary treatment indicator plus the one-hot-encoded adjustment set; the
coefficient of the treatment indicator is the (C)ATE, and its t-test p-value
is reported alongside.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.causal.assumptions import check_positivity
from repro.causal.effects import EffectEstimate
from repro.causal.ols import ols_fit
from repro.dataframe import Pattern, Table, design_matrix
from repro.graph import CausalDAG, backdoor_adjustment_set, parents_adjustment_set


def naive_difference_in_means(outcome: np.ndarray, treated: np.ndarray) -> EffectEstimate:
    """Unadjusted ATE: difference of group means with a Welch-style standard error."""
    outcome = np.asarray(outcome, dtype=np.float64)
    treated = np.asarray(treated, dtype=bool)
    valid = ~np.isnan(outcome)
    outcome, treated = outcome[valid], treated[valid]
    n_treated = int(treated.sum())
    n_control = int((~treated).sum())
    if n_treated == 0 or n_control == 0:
        return EffectEstimate.undefined(n_treated, n_control, estimator="naive")
    y1, y0 = outcome[treated], outcome[~treated]
    effect = float(y1.mean() - y0.mean())
    var = y1.var(ddof=1) / n_treated if n_treated > 1 else 0.0
    var += y0.var(ddof=1) / n_control if n_control > 1 else 0.0
    std_error = float(np.sqrt(var))
    if std_error > 0:
        from scipy import stats

        df = max(n_treated + n_control - 2, 1)
        p_value = float(2 * stats.t.sf(abs(effect) / std_error, df))
    else:
        p_value = 1.0
    return EffectEstimate(effect, std_error, p_value, n_treated, n_control,
                          estimator="naive")


class CATEEstimator:
    """Estimates CATE values of treatment patterns for sub-populations of a table.

    Parameters
    ----------
    table:
        The database instance ``D``.
    outcome:
        The aggregate (outcome) attribute ``A_avg``.
    dag:
        Causal DAG over the attributes; used to derive the adjustment set.
    adjustment:
        ``"parents"`` uses the parents of the treatment attributes (the CauSumX
        default, matching DoWhy with a known graph); ``"minimal"`` runs a
        minimum-size backdoor search; ``"none"`` performs no adjustment.
    sample_size:
        Optional cap on the number of tuples used for estimation (the paper's
        sampling optimisation; 1M tuples in the paper's configuration).
    min_group_size:
        Minimum number of treated and of control units required for a valid
        estimate; below this the estimate is reported as undefined.
    seed:
        Random seed for the sampling optimisation.
    """

    def __init__(self, table: Table, outcome: str, dag: CausalDAG | None = None,
                 adjustment: str = "parents", sample_size: int | None = None,
                 min_group_size: int = 10, seed: int = 0):
        if adjustment not in {"parents", "minimal", "none"}:
            raise ValueError(f"unknown adjustment strategy {adjustment!r}")
        self.table = table
        self.outcome = outcome
        self.dag = dag
        self.adjustment = adjustment
        self.sample_size = sample_size
        self.min_group_size = min_group_size
        self.seed = seed
        self._adjustment_cache: dict[tuple[str, ...], tuple[str, ...]] = {}

    # ------------------------------------------------------------------ adjustment sets

    def adjustment_set(self, treatment_attributes: Sequence[str]) -> list[str]:
        """Confounders ``Z`` to adjust for, given the treatment attributes."""
        key = tuple(sorted(treatment_attributes))
        if key in self._adjustment_cache:
            return list(self._adjustment_cache[key])
        if self.dag is None or self.adjustment == "none":
            result: list[str] = []
        elif self.adjustment == "parents":
            result = parents_adjustment_set(self.dag, list(key), self.outcome)
        else:
            found = backdoor_adjustment_set(self.dag, list(key), self.outcome, max_size=4)
            result = found if found is not None else parents_adjustment_set(
                self.dag, list(key), self.outcome)
        result = [a for a in result if a in self.table and a != self.outcome
                  and a not in key]
        self._adjustment_cache[key] = tuple(result)
        return result

    # ------------------------------------------------------------------ estimation

    def estimate(self, treatment: Pattern, subpopulation: Pattern | None = None,
                 extra_adjustment: Sequence[str] = ()) -> EffectEstimate:
        """Estimate ``CATE(treatment, outcome | subpopulation)``.

        ``treatment`` partitions the sub-population into treated (pattern holds)
        and control (pattern does not hold) units; the effect is the adjusted
        difference in expected outcome (Eq. 5) estimated by linear regression.
        """
        base = self.table if subpopulation is None or subpopulation.is_empty() \
            else self.table.select(subpopulation)
        if self.sample_size is not None and base.n_rows > self.sample_size:
            base = base.sample(self.sample_size, seed=self.seed)
        if base.n_rows == 0:
            return EffectEstimate.undefined()

        treated = treatment.evaluate(base)
        outcome_values = base.column(self.outcome).values.astype(np.float64)
        valid = ~np.isnan(outcome_values)
        if not valid.all():
            keep = np.nonzero(valid)[0]
            base = base.take(keep)
            treated = treated[keep]
            outcome_values = outcome_values[keep]
        n_treated = int(treated.sum())
        n_control = int(base.n_rows - n_treated)
        if not check_positivity(treated, self.min_group_size):
            return EffectEstimate.undefined(n_treated, n_control)

        adjustment_attrs = list(self.adjustment_set(treatment.attributes))
        for attr in extra_adjustment:
            if attr not in adjustment_attrs and attr in base and attr != self.outcome:
                adjustment_attrs.append(attr)
        # Attributes appearing in the sub-population pattern are constant within
        # the sub-population only when the pattern is an equality; keep them out
        # of the design matrix if they have a single value (no variance).
        adjustment_attrs = [a for a in adjustment_attrs
                            if len(base.domain(a)) > 1]

        confounders, confounder_names = design_matrix(base, adjustment_attrs)
        design = np.hstack([
            np.ones((base.n_rows, 1)),
            treated.astype(np.float64).reshape(-1, 1),
            confounders,
        ])
        names = ["intercept", "__treatment__", *confounder_names]
        result = ols_fit(design, outcome_values, names)
        return EffectEstimate(
            value=result.coefficient("__treatment__"),
            std_error=result.std_error("__treatment__"),
            p_value=result.p_value("__treatment__"),
            n_treated=n_treated,
            n_control=n_control,
            estimator="linear_regression",
        )

    def estimate_many(self, treatments: Sequence[Pattern],
                      subpopulation: Pattern | None = None) -> list[EffectEstimate]:
        """Estimate CATE for a batch of candidate treatment patterns."""
        return [self.estimate(t, subpopulation) for t in treatments]


def estimate_ate(table: Table, treatment: Pattern, outcome: str,
                 dag: CausalDAG | None = None, **kwargs) -> EffectEstimate:
    """Average treatment effect of a treatment pattern over the whole table (Eq. 1/5)."""
    estimator = CATEEstimator(table, outcome, dag=dag, **kwargs)
    return estimator.estimate(treatment)


def estimate_cate(table: Table, treatment: Pattern, outcome: str,
                  subpopulation: Pattern, dag: CausalDAG | None = None,
                  **kwargs) -> EffectEstimate:
    """Conditional average treatment effect within a sub-population (Eq. 2/5)."""
    estimator = CATEEstimator(table, outcome, dag=dag, **kwargs)
    return estimator.estimate(treatment, subpopulation)
