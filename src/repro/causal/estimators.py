"""ATE / CATE estimators with backdoor adjustment (Section 3, Eq. 5).

The main entry point is :class:`CATEEstimator`, which mirrors the paper's use
of the DoWhy linear-regression estimator: the outcome is regressed on the
binary treatment indicator plus the one-hot-encoded adjustment set; the
coefficient of the treatment indicator is the (C)ATE, and its t-test p-value
is reported alongside.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.causal.assumptions import check_positivity
from repro.causal.effects import EffectEstimate
from repro.causal.ols import ReusableDesign, ols_fit
from repro.dataframe import MaskCache, Pattern, Table, design_matrix
from repro.graph import CausalDAG, backdoor_adjustment_set, parents_adjustment_set
from repro.parallel import map_morsels


def naive_difference_in_means(outcome: np.ndarray, treated: np.ndarray) -> EffectEstimate:
    """Unadjusted ATE: difference of group means with a Welch-style standard error."""
    outcome = np.asarray(outcome, dtype=np.float64)
    treated = np.asarray(treated, dtype=bool)
    valid = ~np.isnan(outcome)
    outcome, treated = outcome[valid], treated[valid]
    n_treated = int(treated.sum())
    n_control = int((~treated).sum())
    if n_treated == 0 or n_control == 0:
        return EffectEstimate.undefined(n_treated, n_control, estimator="naive")
    y1, y0 = outcome[treated], outcome[~treated]
    effect = float(y1.mean() - y0.mean())
    var = y1.var(ddof=1) / n_treated if n_treated > 1 else 0.0
    var += y0.var(ddof=1) / n_control if n_control > 1 else 0.0
    std_error = float(np.sqrt(var))
    if std_error > 0:
        from scipy import stats

        df = max(n_treated + n_control - 2, 1)
        p_value = float(2 * stats.t.sf(abs(effect) / std_error, df))
    else:
        p_value = 1.0
    return EffectEstimate(effect, std_error, p_value, n_treated, n_control,
                          estimator="naive")


class CATEEstimator:
    """Estimates CATE values of treatment patterns for sub-populations of a table.

    Parameters
    ----------
    table:
        The database instance ``D``.
    outcome:
        The aggregate (outcome) attribute ``A_avg``.
    dag:
        Causal DAG over the attributes; used to derive the adjustment set.
    adjustment:
        ``"parents"`` uses the parents of the treatment attributes (the CauSumX
        default, matching DoWhy with a known graph); ``"minimal"`` runs a
        minimum-size backdoor search; ``"none"`` performs no adjustment.
    sample_size:
        Optional cap on the number of tuples used for estimation (the paper's
        sampling optimisation; 1M tuples in the paper's configuration).
    min_group_size:
        Minimum number of treated and of control units required for a valid
        estimate; below this the estimate is reported as undefined.
    seed:
        Random seed for the sampling optimisation.
    use_cache:
        Enable the shared pattern-evaluation engine: predicate masks are
        memoized in a :class:`~repro.dataframe.MaskCache` and sub-populations
        are *bound* once (selection, sampling, missing-outcome filtering, and
        design-matrix encoding are computed a single time) and reused for every
        treatment candidate.  Results are numerically identical with the cache
        on or off; the cache only removes redundant recomputation.
    bound_cache_size:
        Maximum number of bound sub-populations kept alive at once (LRU).
    """

    def __init__(self, table: Table, outcome: str, dag: CausalDAG | None = None,
                 adjustment: str = "parents", sample_size: int | None = None,
                 min_group_size: int = 10, seed: int = 0,
                 use_cache: bool = True, bound_cache_size: int = 64):
        if adjustment not in {"parents", "minimal", "none"}:
            raise ValueError(f"unknown adjustment strategy {adjustment!r}")
        self.table = table
        self.outcome = outcome
        self.dag = dag
        self.adjustment = adjustment
        self.sample_size = sample_size
        self.min_group_size = min_group_size
        self.seed = seed
        self.use_cache = use_cache
        self.bound_cache_size = bound_cache_size
        self.mask_cache: MaskCache | None = MaskCache(table) if use_cache else None
        #: Shared store of lattice atomic predicates, keyed by the lattice's
        #: generation parameters.  Treatment miners for different grouping
        #: patterns (and, in the serving engine, different queries over the
        #: same population) pass it to :class:`~repro.mining.PatternLattice`
        #: so candidate atoms are enumerated once per table instead of once
        #: per (grouping pattern, direction).
        self.atom_cache: dict = {}
        self._adjustment_cache: dict[tuple[str, ...], tuple[str, ...]] = {}
        self._adjustment_lock = threading.Lock()
        self._bound: OrderedDict[tuple, BoundSubpopulation] = OrderedDict()
        self._bound_lock = threading.Lock()

    # ------------------------------------------------------------------ adjustment sets

    def adjustment_set(self, treatment_attributes: Sequence[str]) -> list[str]:
        """Confounders ``Z`` to adjust for, given the treatment attributes."""
        key = tuple(sorted(treatment_attributes))
        with self._adjustment_lock:
            if key in self._adjustment_cache:
                return list(self._adjustment_cache[key])
        if self.dag is None or self.adjustment == "none":
            result: list[str] = []
        elif self.adjustment == "parents":
            result = parents_adjustment_set(self.dag, list(key), self.outcome)
        else:
            found = backdoor_adjustment_set(self.dag, list(key), self.outcome, max_size=4)
            result = found if found is not None else parents_adjustment_set(
                self.dag, list(key), self.outcome)
        result = [a for a in result if a in self.table and a != self.outcome
                  and a not in key]
        with self._adjustment_lock:
            self._adjustment_cache[key] = tuple(result)
        return result

    # ------------------------------------------------------------------ binding

    def bind(self, subpopulation: Pattern | None = None) -> "BoundSubpopulation":
        """Prepare a sub-population once so many treatments can be estimated cheaply.

        Selection of the sub-population, the sampling optimisation, and the
        missing-outcome filtering are performed a single time; every subsequent
        :meth:`BoundSubpopulation.estimate` call only evaluates the treatment
        mask (through the shared :class:`MaskCache` when enabled) and runs the
        regression.  Bound sub-populations are memoized per pattern in a small
        LRU so repeated lattice levels of the same grouping pattern reuse one
        binding.
        """
        key = () if subpopulation is None else subpopulation.predicates
        with self._bound_lock:
            bound = self._bound.get(key)
            if bound is not None:
                self._bound.move_to_end(key)
                return bound
        bound = BoundSubpopulation(self, subpopulation)
        with self._bound_lock:
            existing = self._bound.get(key)
            if existing is not None:
                return existing
            self._bound[key] = bound
            while len(self._bound) > self.bound_cache_size:
                self._bound.popitem(last=False)
        return bound

    # ------------------------------------------------------------------ estimation

    def estimate(self, treatment: Pattern, subpopulation: Pattern | None = None,
                 extra_adjustment: Sequence[str] = ()) -> EffectEstimate:
        """Estimate ``CATE(treatment, outcome | subpopulation)``.

        ``treatment`` partitions the sub-population into treated (pattern holds)
        and control (pattern does not hold) units; the effect is the adjusted
        difference in expected outcome (Eq. 5) estimated by linear regression.
        """
        if self.use_cache:
            return self.bind(subpopulation).estimate(treatment, extra_adjustment)
        base = self.table if subpopulation is None or subpopulation.is_empty() \
            else self.table.select(subpopulation)
        if self.sample_size is not None and base.n_rows > self.sample_size:
            base = base.sample(self.sample_size, seed=self.seed)
        if base.n_rows == 0:
            return EffectEstimate.undefined()

        treated = treatment.evaluate(base)
        outcome_values = base.column(self.outcome).values.astype(np.float64)
        valid = ~np.isnan(outcome_values)
        if not valid.all():
            keep = np.nonzero(valid)[0]
            base = base.take(keep)
            treated = treated[keep]
            outcome_values = outcome_values[keep]
        n_treated = int(treated.sum())
        n_control = int(base.n_rows - n_treated)
        if not check_positivity(treated, self.min_group_size):
            return EffectEstimate.undefined(n_treated, n_control)

        adjustment_attrs = list(self.adjustment_set(treatment.attributes))
        for attr in extra_adjustment:
            if attr not in adjustment_attrs and attr in base and attr != self.outcome:
                adjustment_attrs.append(attr)
        # Attributes appearing in the sub-population pattern are constant within
        # the sub-population only when the pattern is an equality; keep them out
        # of the design matrix if they have a single value (no variance).
        adjustment_attrs = [a for a in adjustment_attrs
                            if len(base.domain(a)) > 1]

        confounders, confounder_names = design_matrix(base, adjustment_attrs)
        design = np.hstack([
            np.ones((base.n_rows, 1)),
            treated.astype(np.float64).reshape(-1, 1),
            confounders,
        ])
        names = ["intercept", "__treatment__", *confounder_names]
        result = ols_fit(design, outcome_values, names)
        return EffectEstimate(
            value=result.coefficient("__treatment__"),
            std_error=result.std_error("__treatment__"),
            p_value=result.p_value("__treatment__"),
            n_treated=n_treated,
            n_control=n_control,
            estimator="linear_regression",
        )

    def estimate_many(self, treatments: Sequence[Pattern],
                      subpopulation: Pattern | None = None) -> list[EffectEstimate]:
        """Estimate CATE for a batch of candidate treatment patterns.

        With the cache enabled the sub-population is bound once and every
        treatment of the batch reuses the binding (one selection + one design
        matrix per adjustment set instead of one per treatment).

        The batch runs through the morsel pool
        (:func:`repro.parallel.map_morsels`): at width 1 it is exactly the
        serial list comprehension, and at any width the result is the same
        list in the same order — :meth:`BoundSubpopulation.estimate` is
        thread-safe (the mask cache locks, regression buffers are
        thread-local) and bit-deterministic, so summaries are byte-identical
        across pool widths.  Mining groupings already fan out over the pool;
        this nested call then runs serially inside a worker (no pool-in-pool)
        and in parallel when the outer layer is serial.
        """
        if not self.use_cache:
            return [self.estimate(t, subpopulation) for t in treatments]
        bound = self.bind(subpopulation)
        return map_morsels(bound.estimate, treatments)

    def cache_stats(self):
        """Statistics of the shared mask cache (``None`` when caching is off)."""
        return self.mask_cache.stats() if self.mask_cache is not None else None


class BoundSubpopulation:
    """A sub-population of a :class:`CATEEstimator`, prepared for batch estimation.

    Construction performs all treatment-independent work of
    :meth:`CATEEstimator.estimate` exactly once: evaluating the sub-population
    pattern, applying the sampling optimisation, and dropping tuples with a
    missing outcome.  Per adjustment-attribute tuple the confounder design
    matrix is also computed once and memoized — within one sub-population every
    treatment over the same attributes shares it verbatim, so the regression
    inputs (and therefore the estimates) are bitwise identical to the unbound
    path.

    The bound table is a :meth:`Table.take` slice, so its categorical columns
    share the parent vocabulary: treatment masks sliced from the full-table
    cache line up with the bound rows, and the memoized design matrices are
    built by fancy-indexing the inherited dictionary codes (no re-encoding of
    the sub-population).
    """

    def __init__(self, estimator: CATEEstimator, subpopulation: Pattern | None):
        self.estimator = estimator
        self.subpopulation = subpopulation
        table = estimator.table
        cache = estimator.mask_cache
        if subpopulation is None or subpopulation.is_empty():
            indices = np.arange(table.n_rows, dtype=np.int64)
            base = table
        else:
            mask = cache.pattern_mask(subpopulation) if cache is not None \
                else subpopulation.evaluate(table)
            indices = np.nonzero(mask)[0]
            base = table.take(indices)
        if estimator.sample_size is not None and base.n_rows > estimator.sample_size:
            rng = np.random.default_rng(estimator.seed)
            chosen = np.sort(rng.choice(base.n_rows, size=estimator.sample_size,
                                        replace=False))
            base = base.take(chosen)
            indices = indices[chosen]
        if base.n_rows:
            outcome_values = base.column(estimator.outcome).values.astype(np.float64)
            valid = ~np.isnan(outcome_values)
            if not valid.all():
                keep = np.nonzero(valid)[0]
                base = base.take(keep)
                indices = indices[keep]
                outcome_values = outcome_values[keep]
        else:
            outcome_values = np.empty(0, dtype=np.float64)
        self.base = base
        self.indices = indices
        self.outcome_values = outcome_values
        self._identity = base is table  # binding covers the whole table unchanged
        self._domain_sizes: dict[str, int] = {}
        self._design_cache: dict[tuple[str, ...], ReusableDesign] = {}

    @property
    def n_rows(self) -> int:
        return self.base.n_rows

    def treated_mask(self, treatment: Pattern) -> np.ndarray:
        """Boolean treatment mask over the bound (filtered) rows."""
        cache = self.estimator.mask_cache
        if cache is not None:
            mask = cache.pattern_mask(treatment)
            return mask if self._identity else mask[self.indices]
        return treatment.evaluate(self.base)

    def _domain_size(self, attribute: str) -> int:
        size = self._domain_sizes.get(attribute)
        if size is None:
            size = len(self.base.domain(attribute))
            self._domain_sizes[attribute] = size
        return size

    def _design(self, attributes: tuple[str, ...]) -> ReusableDesign:
        """The reusable design matrix for one adjustment-attribute tuple.

        The confounder block is encoded once and the full buffer is
        preallocated; per-treatment fits only rewrite the treatment column
        (see :class:`~repro.causal.ols.ReusableDesign`), so no ``np.hstack``
        runs per candidate.
        """
        entry = self._design_cache.get(attributes)
        if entry is None:
            confounders, names = design_matrix(self.base, list(attributes))
            entry = ReusableDesign(confounders, names)
            self._design_cache[attributes] = entry
        return entry

    def estimate(self, treatment: Pattern,
                 extra_adjustment: Sequence[str] = ()) -> EffectEstimate:
        """Estimate the CATE of one treatment within the bound sub-population."""
        if self.base.n_rows == 0:
            return EffectEstimate.undefined()
        estimator = self.estimator
        treated = self.treated_mask(treatment)
        n_treated = int(treated.sum())
        n_control = int(self.base.n_rows - n_treated)
        if not check_positivity(treated, estimator.min_group_size):
            return EffectEstimate.undefined(n_treated, n_control)

        adjustment_attrs = list(estimator.adjustment_set(treatment.attributes))
        for attr in extra_adjustment:
            if attr not in adjustment_attrs and attr in self.base \
                    and attr != estimator.outcome:
                adjustment_attrs.append(attr)
        adjustment_attrs = [a for a in adjustment_attrs if self._domain_size(a) > 1]

        design = self._design(tuple(adjustment_attrs))
        result = design.fit(treated, self.outcome_values)
        return EffectEstimate(
            value=result.coefficient("__treatment__"),
            std_error=result.std_error("__treatment__"),
            p_value=result.p_value("__treatment__"),
            n_treated=n_treated,
            n_control=n_control,
            estimator="linear_regression",
        )


def estimate_ate(table: Table, treatment: Pattern, outcome: str,
                 dag: CausalDAG | None = None, **kwargs) -> EffectEstimate:
    """Average treatment effect of a treatment pattern over the whole table (Eq. 1/5)."""
    estimator = CATEEstimator(table, outcome, dag=dag, **kwargs)
    return estimator.estimate(treatment)


def estimate_cate(table: Table, treatment: Pattern, outcome: str,
                  subpopulation: Pattern, dag: CausalDAG | None = None,
                  **kwargs) -> EffectEstimate:
    """Conditional average treatment effect within a sub-population (Eq. 2/5)."""
    estimator = CATEEstimator(table, outcome, dag=dag, **kwargs)
    return estimator.estimate(treatment, subpopulation)
