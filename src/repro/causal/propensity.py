"""Propensity-score (inverse probability weighting) estimator.

Provided as an alternative to the regression-adjustment estimator; the paper
mentions propensity weighting as the standard approach for continuous
treatments (Section 7).  Propensity scores are fit by logistic regression via
Newton-Raphson on the one-hot encoded adjustment set.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.causal.assumptions import check_positivity
from repro.causal.effects import EffectEstimate
from repro.dataframe import Pattern, Table, design_matrix


def _logistic_fit(design: np.ndarray, target: np.ndarray, max_iter: int = 50,
                  tol: float = 1e-8, ridge: float = 1e-6) -> np.ndarray:
    """Fit logistic-regression weights by ridge-stabilised Newton-Raphson."""
    n, p = design.shape
    beta = np.zeros(p, dtype=np.float64)
    for _ in range(max_iter):
        logits = design @ beta
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
        gradient = design.T @ (target - probs)
        weights = probs * (1.0 - probs)
        hessian = design.T @ (design * weights[:, None]) + ridge * np.eye(p)
        step = np.linalg.solve(hessian, gradient)
        beta = beta + step
        if float(np.abs(step).max()) < tol:
            break
    return beta


def propensity_scores(table: Table, treated: np.ndarray,
                      adjustment: Sequence[str]) -> np.ndarray:
    """Estimated probability of treatment given the adjustment attributes."""
    confounders, _ = design_matrix(table, list(adjustment))
    design = np.hstack([np.ones((table.n_rows, 1)), confounders])
    beta = _logistic_fit(design, treated.astype(np.float64))
    logits = design @ beta
    return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))


def ipw_ate(table: Table, treatment: Pattern, outcome: str,
            adjustment: Sequence[str] = (), clip: float = 0.01,
            min_group_size: int = 10) -> EffectEstimate:
    """Inverse-probability-weighted ATE of a treatment pattern."""
    treated = treatment.evaluate(table)
    outcome_values = table.column(outcome).values.astype(np.float64)
    valid = ~np.isnan(outcome_values)
    if not valid.all():
        keep = np.nonzero(valid)[0]
        table = table.take(keep)
        treated = treated[keep]
        outcome_values = outcome_values[keep]
    n_treated = int(treated.sum())
    n_control = int(table.n_rows - n_treated)
    if not check_positivity(treated, min_group_size):
        return EffectEstimate.undefined(n_treated, n_control, estimator="ipw")

    adjustment = [a for a in adjustment if a in table and len(table.domain(a)) > 1]
    if adjustment:
        scores = propensity_scores(table, treated, adjustment)
    else:
        scores = np.full(table.n_rows, treated.mean(), dtype=np.float64)
    scores = np.clip(scores, clip, 1.0 - clip)

    weights_treated = treated / scores
    weights_control = (~treated) / (1.0 - scores)
    mean_treated = float((weights_treated * outcome_values).sum() / weights_treated.sum())
    mean_control = float((weights_control * outcome_values).sum() / weights_control.sum())
    effect = mean_treated - mean_control

    # Approximate standard error via the weighted influence function.
    influence = (weights_treated * (outcome_values - mean_treated)
                 - weights_control * (outcome_values - mean_control))
    std_error = float(np.sqrt(np.var(influence, ddof=1) / table.n_rows))
    if std_error > 0:
        from scipy import stats

        p_value = float(2 * stats.norm.sf(abs(effect) / std_error))
    else:
        p_value = 1.0
    return EffectEstimate(effect, std_error, p_value, n_treated, n_control,
                          estimator="ipw")
