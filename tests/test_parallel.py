"""Tests for shard-parallel morsel-driven execution (``repro.parallel``).

The load-bearing property is *worker invariance*: whatever the pool width —
1 (exactly the serial code), 2, or 8 — a sharded scan, a planned scan, a
lazy column decode, and an aggregate view return identical rows, identical
plans, and identical answer tuples.  On top of that, clustered compaction
commits per-shard group-by partials that answer no-WHERE group-bys from the
manifest without opening a single shard archive.
"""

from __future__ import annotations

import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lockwatch
from repro.dataframe import MaskCache, Op, Pattern, Predicate, Table
from repro.parallel import (
    GLOBAL_PARALLEL_STATS,
    default_workers,
    in_worker,
    map_morsels,
    worker_count,
    workers,
)
from repro.plan import GLOBAL_PLANNER_STATS, oracle_mode
from repro.service import ExplanationEngine
from repro.sql import AggregateView, parse_query
from repro.storage import DatasetStore, StoredDataset

WIDTHS = (1, 2, 8)


def _people(n: int, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    countries = ["US", "DE", "FR", "JP", None]
    roles = ["eng", "mgr", "ops"]
    return Table.from_columns({
        "Country": [countries[i] for i in rng.integers(0, len(countries), n)],
        "Role": [roles[i] for i in rng.integers(0, len(roles), n)],
        "Age": np.where(rng.random(n) < 0.1, np.nan,
                        rng.integers(20, 70, n).astype(float)),
        # Integer-valued outcome: partial sums are exact in float64, so
        # partial-served averages can be compared with == against the
        # legacy whole-table group scan.
        "Salary": rng.integers(30, 200, n).astype(float),
        "allmiss": [None] * n,
    }, name="people")


# ---------------------------------------------------------------------- pool


class TestMorselPool:
    def test_width_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() == default_workers()
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert worker_count() == 3
        with workers(5):
            assert worker_count() == 5  # override beats the environment
        assert worker_count() == 3

    def test_rejects_bad_widths(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ValueError):
            worker_count()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            worker_count()
        with pytest.raises(ValueError):
            with workers(0):
                pass  # pragma: no cover

    def test_map_morsels_preserves_input_order(self):
        for width in WIDTHS:
            with workers(width):
                assert map_morsels(lambda x: x * x, range(20)) == \
                    [x * x for x in range(20)]

    def test_exceptions_propagate_in_input_order(self):
        def explode(x):
            if x % 3 == 1:
                raise ValueError(f"boom {x}")
            return x

        with workers(4):
            with pytest.raises(ValueError, match="boom 1"):
                map_morsels(explode, range(12))

    def test_nested_fan_out_runs_serially_without_deadlock(self):
        observed = []

        def inner(x):
            observed.append(in_worker())
            return x + 1

        def outer(x):
            # A worker fanning out again must not wait on its own pool.
            return sum(map_morsels(inner, range(3))) + x

        with workers(2):
            results = map_morsels(outer, range(6))
        assert results == [sum(range(1, 4)) + x for x in range(6)]
        assert all(observed)  # the nested morsels ran on pool threads

    def test_stats_accounting(self):
        GLOBAL_PARALLEL_STATS.reset()
        with workers(1):
            map_morsels(lambda x: x, range(4))
        with workers(3):
            map_morsels(lambda x: x, range(5))
        snapshot = GLOBAL_PARALLEL_STATS.snapshot()
        assert snapshot["batches"] == 2
        assert snapshot["serial_batches"] == 1
        assert snapshot["morsels"] == 9
        assert snapshot["max_workers_used"] == 3


# ----------------------------------------------------------- worker invariance


def _random_table(rng, n: int) -> Table:
    cats = ["a", "b", "c", None]
    return Table.from_columns({
        "cat": [cats[i] for i in rng.integers(0, len(cats), n)],
        "num": np.where(rng.random(n) < 0.25, np.nan,
                        rng.integers(-4, 5, n).astype(float)),
        "allmiss": [None] * n,
    }, name="random")


def _random_pattern(data) -> Pattern:
    predicates = []
    for _ in range(data.draw(st.integers(0, 3), label="n_predicates")):
        kind = data.draw(st.sampled_from(["cat", "num", "allmiss", "nomatch"]))
        if kind == "cat":
            predicates.append(Predicate(
                "cat", data.draw(st.sampled_from([Op.EQ, Op.NE])),
                data.draw(st.sampled_from(["a", "b", "zz"]))))
        elif kind == "allmiss":
            predicates.append(Predicate(
                "allmiss", data.draw(st.sampled_from(list(Op))), "a"))
        elif kind == "nomatch":
            # Empty-survivor case: no shard can match, every shard skips.
            predicates.append(Predicate("cat", Op.EQ, "absent-everywhere"))
        else:
            predicates.append(Predicate(
                "num", data.draw(st.sampled_from(list(Op))),
                data.draw(st.sampled_from([-4.5, 0.0, 2.5, float("nan")]))))
    return Pattern(predicates)


class TestWorkerInvariance:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_sharded_select_identical_across_widths(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        table = _random_table(rng, data.draw(st.integers(5, 80)))
        pattern = _random_pattern(data)
        # shard_rows >= n gives the single-shard case.
        shard_rows = data.draw(st.integers(3, 100), label="shard_rows")
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(f"{tmp}/d", "d", table,
                                           shard_rows=shard_rows)
            results = {}
            for width in WIDTHS:
                with workers(width):
                    planned = dataset.load_table().select(pattern)
                    with oracle_mode():
                        oracle = dataset.load_table().select(pattern)
                results[width] = (planned, oracle)
            serial_planned, serial_oracle = results[1]
            assert serial_planned == serial_oracle
            for width in WIDTHS[1:]:
                planned, oracle = results[width]
                assert planned == serial_planned
                assert oracle == serial_oracle

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_lazy_column_decode_identical_across_widths(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        table = _random_table(rng, data.draw(st.integers(10, 60)))
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(f"{tmp}/d", "d", table,
                                           shard_rows=7)
            for width in WIDTHS:
                with workers(width):
                    assert dataset.load_table() == table

    def test_view_identical_across_widths(self):
        table = _people(400)
        query = parse_query("SELECT Country, AVG(Salary) FROM people "
                            "GROUP BY Country")
        in_memory = AggregateView(table, query)
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(f"{tmp}/d", "d", table,
                                           shard_rows=37)
            for width in WIDTHS:
                with workers(width):
                    view = AggregateView(dataset.load_table(), query)
                    assert view.served_from_partials
                    assert view.groups == in_memory.groups
                    assert view.group_weights() == in_memory.group_weights()


class TestMiningWidthInvariance:
    """Mining lattice scans run through the pool; summaries must not notice.

    ``CATEEstimator.estimate_many`` fans whole lattice levels over
    ``map_morsels`` (serially inside a grouping worker, in parallel when the
    outer grouping layer is serial), so a full explanation — mining included
    — must serialize byte-identically at any pool width.
    """

    def test_explain_summary_identical_across_widths(self, so_bundle,
                                                     fast_config):
        import json

        from repro.core import CauSumX, summary_to_dict

        query = parse_query("SELECT Country, AVG(Salary) FROM SO "
                            "GROUP BY Country")
        payloads = {}
        for width in WIDTHS:
            with workers(width):
                summary = CauSumX(so_bundle.table, so_bundle.dag,
                                  fast_config).explain(
                    query,
                    grouping_attributes=so_bundle.grouping_attributes,
                    treatment_attributes=so_bundle.treatment_attributes)
            payload = summary_to_dict(summary)
            payload.pop("timings", None)
            payloads[width] = json.dumps(payload, sort_keys=True, default=str)
        for width in WIDTHS[1:]:
            assert payloads[width] == payloads[1]

    def test_estimate_many_identical_across_widths(self, so_bundle):
        import dataclasses
        import json

        from repro.causal import CATEEstimator

        def canon(estimates):
            # json keeps NaN as a literal, so undefined estimates compare
            # equal (dataclass == would fail on NaN != NaN).
            return json.dumps([dataclasses.asdict(e) for e in estimates],
                              sort_keys=True, default=str)

        table = so_bundle.table
        estimator = CATEEstimator(table, "Salary", dag=so_bundle.dag,
                                  min_group_size=5)
        treatments = [Pattern.of((attr, "==", value))
                      for attr in so_bundle.treatment_attributes
                      for value in table.domain(attr)[:3]]
        subpopulation = Pattern.of(("Country", "==", table.domain("Country")[0]))
        with workers(1):
            serial = canon(estimator.estimate_many(treatments, subpopulation))
        for width in WIDTHS[1:]:
            with workers(width):
                assert canon(estimator.estimate_many(
                    treatments, subpopulation)) == serial


# ------------------------------------------------------------- store-code memo


class TestStoreCodeMemo:
    def test_repeated_predicates_hit_the_memo(self):
        table = _people(300)
        pattern = Pattern.of(("Country", "==", "US"), ("Role", "!=", "mgr"))
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(f"{tmp}/d", "d", table,
                                           shard_rows=50)
            loaded = dataset.load_table()
            cache = MaskCache(loaded)
            before = GLOBAL_PLANNER_STATS.snapshot()
            cold, _ = loaded.plan_shard_select(pattern, mask_cache=cache)
            mid = GLOBAL_PLANNER_STATS.snapshot()
            warm, _ = loaded.plan_shard_select(pattern, mask_cache=cache)
            after = GLOBAL_PLANNER_STATS.snapshot()
        assert cold == warm
        cold_lookups = mid["store_code_lookups"] - before["store_code_lookups"]
        cold_cached = mid["store_code_cached"] - before["store_code_cached"]
        warm_lookups = after["store_code_lookups"] - mid["store_code_lookups"]
        warm_cached = after["store_code_cached"] - mid["store_code_cached"]
        assert cold_lookups == 2 and cold_cached == 0
        assert warm_lookups == 2 and warm_cached == 2

    def test_memo_disabled_without_cache(self):
        table = _people(100)
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(f"{tmp}/d", "d", table,
                                           shard_rows=30)
            loaded = dataset.load_table()
            before = GLOBAL_PLANNER_STATS.snapshot()
            loaded.plan_shard_select(Predicate("Country", Op.EQ, "US"))
            loaded.plan_shard_select(Predicate("Country", Op.EQ, "US"))
            after = GLOBAL_PLANNER_STATS.snapshot()
        assert after["store_code_lookups"] - \
            before["store_code_lookups"] == 2
        assert after["store_code_cached"] == before["store_code_cached"]


# ------------------------------------------------------------------- partials


class TestGroupByPartials:
    def test_clustered_compaction_serves_from_manifest(self):
        table = _people(500)
        query = parse_query("SELECT Country, AVG(Salary) FROM people "
                            "GROUP BY Country")
        in_memory = AggregateView(table, query)
        with tempfile.TemporaryDirectory() as tmp:
            store = DatasetStore.init(f"{tmp}/store")
            store.import_table("people", table, shard_rows=60)
            result = store.compact("people", cluster_by="Country")
            assert result["partial_groups"] > 0
            loaded = store.dataset("people").load_table()
            view = AggregateView(loaded, query)
            assert view.served_from_partials
            assert view.groups == in_memory.groups
            scan = loaded.scan_stats()
            # The whole answer came from manifest arithmetic: no shard
            # archive was ever opened, no row was read.
            assert scan["partials_served"] == 1
            assert scan["shards_open"] == 0

    def test_numeric_cluster_key_commits_no_partials(self):
        table = _people(200)
        with tempfile.TemporaryDirectory() as tmp:
            store = DatasetStore.init(f"{tmp}/store")
            store.import_table("people", table, shard_rows=50)
            result = store.compact("people", cluster_by="Salary")
            assert result["partial_groups"] == 0
            loaded = store.dataset("people").load_table()
            assert loaded._manifest.shards[0].group_partials is None

    def test_runtime_partials_match_manifest_partials(self):
        table = _people(300, seed=3)
        with tempfile.TemporaryDirectory() as tmp:
            store = DatasetStore.init(f"{tmp}/store")
            store.import_table("people", table, shard_rows=40)
            runtime = store.dataset("people").load_table() \
                .shard_groupby_partials(("Country",), "Salary")
            store.compact("people", cluster_by="Country")
            committed = store.dataset("people").load_table() \
                .shard_groupby_partials(("Country",), "Salary")
        # Clustering reorders rows, hence groups; the merged per-group
        # quantities are identical.
        assert sorted(runtime, key=repr) == sorted(committed, key=repr)

    def test_partials_refuse_inapplicable_queries(self):
        table = _people(100)
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(f"{tmp}/d", "d", table,
                                           shard_rows=30)
            loaded = dataset.load_table()
            assert loaded.shard_groupby_partials(("Age",), "Salary") is None
            assert loaded.shard_groupby_partials(("Country",), "Role") is None
            assert loaded.shard_groupby_partials((), "Salary") is None

    def test_where_clause_bypasses_partials(self):
        table = _people(200)
        query = parse_query("SELECT Country, AVG(Salary) FROM people "
                            "WHERE Role = 'eng' GROUP BY Country")
        in_memory = AggregateView(table, query)
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(f"{tmp}/d", "d", table,
                                           shard_rows=30)
            view = AggregateView(dataset.load_table(), query)
            assert not view.served_from_partials
            assert view.groups == in_memory.groups

    def test_engine_stats_surface_parallel_counters(self):
        engine = ExplanationEngine()
        stats = engine.stats()
        assert stats["parallel"]["workers"] == worker_count()
        for key in ("batches", "serial_batches", "morsels",
                    "max_workers_used", "partials_served"):
            assert key in stats["parallel"]


# ------------------------------------------------------------------ lockwatch


@pytest.fixture()
def watch():
    """Enabled lockwatch with a clean registry; always restored."""
    registry = lockwatch.enable()
    registry.reset()
    yield registry
    registry.reset()
    lockwatch.disable()


class TestConcurrencyLockOrder:
    def test_concurrent_select_append_compact_acyclic(self, watch, tmp_path):
        table = _people(240, seed=5)
        dataset = StoredDataset.create(tmp_path / "d", "d", table,
                                       shard_rows=40)
        pattern = Pattern.of(("Country", "==", "US"))
        batch = _people(40, seed=6)
        errors: list[BaseException] = []
        start = threading.Barrier(3)

        def scan():
            try:
                start.wait(timeout=30)
                for _ in range(5):
                    loaded = dataset.load_table()
                    loaded.select(pattern)
                    loaded.shard_groupby_partials(("Country",), "Salary")
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def append():
            try:
                start.wait(timeout=30)
                for _ in range(3):
                    dataset.append(batch)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def compact():
            try:
                start.wait(timeout=30)
                for _ in range(2):
                    dataset.compact(cluster_by="Country")
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        with workers(4):
            threads = [threading.Thread(target=fn)
                       for fn in (scan, append, compact)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors
        watch.assert_acyclic()
        assert watch.violations == []
