"""Unit tests for functional-dependency detection and attribute partition."""

from repro.dataframe import Table, fd_closure, fd_holds, grouping_attribute_partition


def test_fd_holds_true(simple_table):
    assert fd_holds(simple_table, ["Country"], "Continent")


def test_fd_holds_false(simple_table):
    assert not fd_holds(simple_table, ["Country"], "Gender")


def test_fd_reflexive(simple_table):
    assert fd_holds(simple_table, ["Country"], "Country")


def test_fd_with_multiple_lhs(simple_table):
    assert fd_holds(simple_table, ["Country", "Gender"], "Continent")


def test_fd_closure(simple_table):
    closure = fd_closure(simple_table, ["Country"], exclude=["Salary"])
    assert closure == ["Continent"]


def test_fd_closure_excludes_outcome():
    table = Table.from_columns({"g": ["a", "b"], "w": ["x", "y"], "o": [1.0, 2.0]})
    closure = fd_closure(table, ["g"], exclude=["o"])
    assert "o" not in closure
    assert "w" in closure


def test_fd_with_missing_values_consistent():
    table = Table.from_columns({"g": ["a", "a"], "w": [None, None]})
    assert fd_holds(table, ["g"], "w")


def test_fd_violated_by_missing_vs_value():
    table = Table.from_columns({"g": ["a", "a"], "w": [None, "x"]})
    assert not fd_holds(table, ["g"], "w")


def test_grouping_attribute_partition(simple_table):
    grouping, treatment = grouping_attribute_partition(simple_table, ["Country"],
                                                       "Salary")
    assert grouping == ["Continent"]
    assert "Country" not in treatment
    assert "Salary" not in treatment
    assert "Continent" not in treatment
    assert set(treatment) == {"Gender", "Age", "Role", "Education"}


def test_partition_no_fds():
    table = Table.from_columns({
        "purpose": ["car", "car", "tv"],
        "age": [20, 30, 40],
        "risk": [0.0, 1.0, 1.0],
    })
    grouping, treatment = grouping_attribute_partition(table, ["purpose"], "risk")
    assert grouping == []
    assert treatment == ["age"]
