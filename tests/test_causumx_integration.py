"""Integration tests: the full CauSumX pipeline and its variants."""

import pytest

from repro.core import CauSumX, brute_force, brute_force_lp, greedy_last_step
from repro.datasets import make_german, make_synthetic


class TestCauSumXOnStackOverflow:
    @pytest.fixture(scope="class")
    def summary(self, so_bundle, fast_config):
        algorithm = CauSumX(so_bundle.table, so_bundle.dag, fast_config)
        return algorithm.explain(so_bundle.query,
                                 grouping_attributes=so_bundle.grouping_attributes,
                                 treatment_attributes=so_bundle.treatment_attributes)

    def test_respects_size_constraint(self, summary, fast_config):
        assert 1 <= len(summary) <= fast_config.k

    def test_satisfies_coverage_constraint(self, summary, fast_config):
        assert summary.coverage >= fast_config.theta

    def test_incomparability(self, summary):
        coverages = [p.covered_groups for p in summary]
        assert len(coverages) == len(set(coverages))

    def test_each_pattern_has_a_treatment(self, summary):
        assert all(p.has_treatment() for p in summary)

    def test_grouping_patterns_use_fd_attributes(self, summary, so_bundle):
        allowed = set(so_bundle.grouping_attributes)
        for pattern in summary:
            assert set(pattern.grouping_pattern.attributes) <= allowed

    def test_treatment_patterns_use_treatment_attributes(self, summary, so_bundle):
        allowed = set(so_bundle.treatment_attributes)
        for pattern in summary:
            if pattern.positive:
                assert set(pattern.positive.pattern.attributes) <= allowed
            if pattern.negative:
                assert set(pattern.negative.pattern.attributes) <= allowed

    def test_positive_negative_signs(self, summary):
        for pattern in summary:
            if pattern.positive:
                assert pattern.positive.cate > 0
            if pattern.negative:
                assert pattern.negative.cate < 0

    def test_timings_recorded(self, summary):
        assert set(summary.timings) == {"grouping_patterns", "treatment_patterns",
                                        "selection"}
        assert all(v >= 0 for v in summary.timings.values())

    def test_qualitative_drivers_match_generator(self, summary):
        """Students / under-25 should appear among negative drivers somewhere."""
        negative_text = " ".join(repr(p.negative.pattern) for p in summary
                                 if p.negative is not None)
        assert ("Student" in negative_text) or ("Under 25" in negative_text) \
            or ("No degree" in negative_text) or ("55+" in negative_text)

    def test_sql_string_interface(self, so_bundle, fast_config):
        algorithm = CauSumX(so_bundle.table, so_bundle.dag, fast_config)
        summary = algorithm.explain(
            "SELECT Country, AVG(Salary) FROM SO GROUP BY Country",
            grouping_attributes=so_bundle.grouping_attributes,
            treatment_attributes=["Role", "Student"])
        assert len(summary) >= 1


class TestVariants:
    @pytest.fixture(scope="class")
    def bundle(self):
        return make_synthetic(n=300, n_grouping=2, n_treatment=2, seed=11)

    @pytest.fixture(scope="class")
    def tuned(self, bundle, fast_config):
        return fast_config.with_overrides(k=2, theta=0.5)

    def test_brute_force_runs_and_is_feasible(self, bundle, tuned):
        summary = brute_force(bundle.table, bundle.dag, tuned).explain(
            bundle.query, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        assert summary.feasible
        assert summary.coverage >= tuned.theta

    def test_brute_force_lp_runs(self, bundle, tuned):
        summary = brute_force_lp(bundle.table, bundle.dag, tuned).explain(
            bundle.query, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        assert len(summary) <= tuned.k

    def test_greedy_last_step_runs(self, bundle, tuned):
        summary = greedy_last_step(bundle.table, bundle.dag, tuned).explain(
            bundle.query, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        assert len(summary) <= tuned.k

    def test_brute_force_objective_at_least_causumx(self, bundle, tuned):
        """Brute-Force optimises exactly, so its objective dominates CauSumX's."""
        causumx = CauSumX(bundle.table, bundle.dag, tuned).explain(
            bundle.query, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        exact = brute_force(bundle.table, bundle.dag, tuned).explain(
            bundle.query, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        assert exact.total_explainability >= causumx.total_explainability - 1e-6 \
            or not causumx.feasible


class TestGermanNoFDs:
    def test_singleton_grouping_patterns_used(self, fast_config):
        bundle = make_german(n=500, seed=2)
        config = fast_config.with_overrides(k=4, theta=0.4,
                                            include_singleton_groups=True)
        summary = CauSumX(bundle.table, bundle.dag, config).explain(
            bundle.query, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        assert len(summary) >= 1
        # Every grouping pattern covers exactly one purpose (no FDs available).
        assert all(len(p.covered_groups) == 1 for p in summary)


class TestAutomaticAttributePartition:
    def test_explain_without_explicit_attribute_lists(self, so_bundle, fast_config):
        """The FD-based partition of Section 4.1 is applied automatically."""
        config = fast_config.with_overrides(k=2, theta=0.5)
        algorithm = CauSumX(so_bundle.table, so_bundle.dag, config)
        summary = algorithm.explain(so_bundle.query)
        assert len(summary) >= 1
        for pattern in summary:
            # Grouping attributes must be functionally determined by Country.
            assert "Country" not in pattern.grouping_pattern.attributes
            assert "Salary" not in pattern.grouping_pattern.attributes
