"""Tests for the on-disk sharded columnar store (``repro.storage``).

Covers the ISSUE 4 checklist: manifest versioning, atomic-commit crash
simulation (leftover temp files are ignored), mmap-backed table equality
with the in-memory table, hypothesis-based zone-map pruning correctness
against unpruned scans, engine warm restarts with byte-identical summaries,
and the cross-engine memory budget.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CauSumX, CauSumXConfig, summary_to_dict
from repro.dataframe import Column, LazyColumn, Op, Pattern, Predicate, Table
from repro.datasets import load_dataset
from repro.mining.treatments import TreatmentMinerConfig
from repro.service import ExplanationEngine, LRUCache, MemoryBudget
from repro.storage import (
    DatasetStore,
    ShardedTable,
    StorageError,
    StoredDataset,
    open_shard,
    write_shard,
)
from repro.storage.format import TMP_MARKER, load_manifest


def _table(n: int = 400, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    countries = ["US", "India", "China", "France", "Japan"]
    roles = ["Dev", "DS", "QA", None]
    return Table.from_columns({
        "Country": [countries[i] for i in rng.integers(0, len(countries), n)],
        "Role": [roles[i] for i in rng.integers(0, len(roles), n)],
        "Age": np.where(rng.random(n) < 0.05, np.nan,
                        rng.integers(18, 70, n).astype(float)),
        "Salary": rng.normal(100.0, 25.0, n),
    }, name="people")


@pytest.fixture
def store(tmp_path):
    return DatasetStore.init(tmp_path / "store")


class TestShardFiles:
    def test_write_and_mmap_read(self, tmp_path):
        arrays = {"a": np.arange(10, dtype=np.float64),
                  "b": np.arange(10, dtype=np.int32)}
        path = tmp_path / "s.npz"
        write_shard(path, arrays)
        loaded = open_shard(path)
        assert isinstance(loaded["a"], np.memmap)  # genuinely memory-mapped
        assert np.array_equal(loaded["a"], arrays["a"])
        assert np.array_equal(loaded["b"], arrays["b"])
        assert loaded["b"].dtype == np.int32

    def test_object_arrays_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            write_shard(tmp_path / "bad.npz",
                        {"x": np.array(["a", None], dtype=object)})


class TestRoundTrip:
    def test_loaded_table_equals_in_memory(self, store):
        table = _table()
        dataset = store.import_table("people", table, shard_rows=100)
        loaded = dataset.load_table()
        assert isinstance(loaded, ShardedTable)
        assert loaded.n_shards == 4
        assert all(isinstance(c, LazyColumn) and not c.materialized
                   for c in loaded.columns())
        assert loaded == table  # triggers materialization column by column
        # Sorted vocabularies match a fresh factorization exactly.
        for attribute in table.attributes:
            if not table.is_numeric(attribute):
                assert loaded.column(attribute).vocab == \
                    table.column(attribute).vocab
                assert np.array_equal(loaded.column(attribute).codes,
                                      table.column(attribute).codes)
        dataset.verify()  # fingerprints hold

    def test_single_shard_numeric_is_memmap(self, store):
        table = _table(50)
        loaded = store.import_table("p", table).load_table()
        assert isinstance(loaded.column("Salary").values, np.memmap)

    def test_manifest_versioning_per_append(self, store):
        table = _table(100)
        dataset = store.import_table("people", table)
        assert dataset.manifest.version == 0
        batch = _table(10, seed=1)
        dataset.append(batch)
        assert dataset.manifest.version == 1
        dataset.append(_table(5, seed=2), expected_version=1)
        assert dataset.manifest.version == 2
        with pytest.raises(StorageError):
            dataset.append(batch, expected_version=0)  # stale writer fenced
        reopened = StoredDataset(dataset.directory)
        assert reopened.manifest.version == 2
        assert reopened.manifest.n_rows == 115
        assert reopened.load_table() == \
            table.concat(_table(10, seed=1)).concat(_table(5, seed=2))

    def test_append_extends_interned_vocab_without_rewriting_shards(self, store):
        table = Table.from_columns({"c": ["b", "d"], "x": [1.0, 2.0]})
        dataset = store.import_table("t", table)
        first_shard = dataset.manifest.shards[0]
        before = (dataset.directory / first_shard.file).read_bytes()
        dataset.append(Table.from_columns({"c": ["a", "b"], "x": [3.0, 4.0]}))
        after = (dataset.directory / first_shard.file).read_bytes()
        assert before == after  # committed shards are immutable
        manifest = load_manifest(dataset.directory)
        assert manifest.vocabs["c"] == ["b", "d", "a"]  # append-only interning
        loaded = dataset.load_table()
        combined = table.concat(Table.from_columns({"c": ["a", "b"],
                                                    "x": [3.0, 4.0]}))
        assert loaded.column("c").vocab == ("a", "b", "d")  # sorted on load
        assert loaded == combined

    def test_kind_mismatch_rejected_but_all_missing_adopts(self, store):
        table = _table(30)
        dataset = store.import_table("people", table)
        bad = _table(5, seed=3)
        bad = Table([c if c.name != "Age" else Column("Age", ["x"] * 5)
                     for c in bad.columns()], name=bad.name)
        with pytest.raises(StorageError):
            dataset.append(bad)
        allmissing = _table(5, seed=4)
        allmissing = Table([c if c.name != "Role"
                            else Column("Role", [None] * 5, numeric=False)
                            for c in allmissing.columns()], name=allmissing.name)
        dataset.append(allmissing)
        assert dataset.load_table().n_rows == 35


class TestAtomicity:
    def test_leftover_temp_files_ignored_and_swept(self, store):
        table = _table(60)
        dataset = store.import_table("people", table, shard_rows=20)
        # Simulate a crashed writer: stray temp shard + temp manifest.
        junk_shard = dataset.directory / "shards" / \
            f"shard-000099.npz{TMP_MARKER}deadbeef"
        junk_shard.write_bytes(b"\x00garbage")
        junk_manifest = dataset.directory / f"MANIFEST.json{TMP_MARKER}cafe"
        junk_manifest.write_text("{not json")
        reopened = StoredDataset(dataset.directory)
        assert reopened.manifest.version == 0
        assert reopened.load_table() == table  # junk never observed
        # The next committed append sweeps the leftovers.
        reopened.append(_table(5, seed=9))
        assert not junk_shard.exists()
        assert not junk_manifest.exists()

    def test_uncommitted_shard_is_invisible(self, store):
        """A shard file without a manifest commit does not exist logically."""
        table = _table(40)
        dataset = store.import_table("people", table, shard_rows=20)
        extra = dataset.directory / "shards" / "shard-000077.npz"
        write_shard(extra, {"Country": np.zeros(3, dtype=np.int32),
                            "Role": np.zeros(3, dtype=np.int32),
                            "Age": np.zeros(3), "Salary": np.zeros(3)})
        reopened = StoredDataset(dataset.directory)
        assert reopened.manifest.n_rows == 40
        assert reopened.load_table().n_rows == 40

    def test_malformed_manifest_raises_storage_error(self, tmp_path):
        directory = tmp_path / "broken"
        (directory / "shards").mkdir(parents=True)
        (directory / "MANIFEST.json").write_text(json.dumps(
            {"format_version": 999, "name": "x", "version": 0, "schema": []}))
        with pytest.raises(StorageError):
            StoredDataset(directory)


class TestZoneMapPruning:
    def test_pruned_scan_skips_shards_and_matches_unpruned(self, store):
        rng = np.random.default_rng(1)
        n = 800
        # Sorted by Age so shards carry disjoint ranges (prunable).
        age = np.sort(rng.integers(18, 70, n).astype(float))
        table = Table.from_columns({
            "Age": age,
            "City": [f"c{i % 7}" for i in range(n)],
            "Pay": rng.normal(50, 10, n),
        })
        dataset = store.import_table("t", table, shard_rows=100)
        loaded = dataset.load_table()
        pattern = Pattern.of(("Age", "<", float(age[30])))
        result = loaded.select(pattern)
        assert result == table.select(pattern)
        stats = loaded.scan_stats()
        assert stats["scans"] == 1
        assert stats["shards_skipped"] >= 5  # most shards proved irrelevant
        unpruned = dataset.load_table(prune=False)
        assert unpruned.select(pattern) == result
        assert unpruned.scan_stats()["scans"] == 0

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_pruning_never_changes_results(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        n = data.draw(st.integers(20, 120))
        cats = ["a", "b", "c", "d", None]
        table = Table.from_columns({
            "cat": [cats[i] for i in rng.integers(0, len(cats), n)],
            "num": np.where(rng.random(n) < 0.2, np.nan,
                            rng.integers(-5, 6, n).astype(float)),
        })
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            dataset = StoredDataset.create(
                f"{tmp}/d", "d", table,
                shard_rows=data.draw(st.integers(5, 40)))
            loaded = dataset.load_table()
            predicates = []
            for _ in range(data.draw(st.integers(1, 2))):
                if data.draw(st.booleans()):
                    predicates.append(Predicate(
                        "cat", data.draw(st.sampled_from(list(Op))),
                        data.draw(st.sampled_from(["a", "b", "c", "d", "zz"]))))
                else:
                    predicates.append(Predicate(
                        "num", data.draw(st.sampled_from(list(Op))),
                        data.draw(st.integers(-7, 7))))
            pattern = Pattern(predicates)
            assert loaded.select(pattern) == table.select(pattern)

    def test_empty_survivor_set_yields_empty_table(self, store):
        table = Table.from_columns({"x": [1.0, 2.0, 3.0, 4.0],
                                    "c": ["a", "a", "b", "b"]})
        loaded = store.import_table("t", table, shard_rows=2).load_table()
        result = loaded.select(Pattern.of(("x", ">", 100)))
        assert result.n_rows == 0
        assert result.attributes == table.attributes
        assert result.column("c").vocab == table.column("c").vocab
        assert loaded.scan_stats()["shards_skipped"] == 2


def _config() -> CauSumXConfig:
    return CauSumXConfig(
        k=3, theta=0.6, apriori_threshold=0.15, sample_size=None,
        treatment=TreatmentMinerConfig(max_levels=2,
                                       max_values_per_attribute=8))


def _payload(summary) -> str:
    as_dict = summary_to_dict(summary)
    as_dict.pop("timings", None)
    return json.dumps(as_dict, sort_keys=True, default=str)


class TestWarmRestart:
    QUERY = "SELECT Country, AVG(Salary) FROM SO GROUP BY Country"

    @pytest.fixture(scope="class")
    def bundle(self):
        return load_dataset("stackoverflow", n=300, seed=0)

    def test_full_lifecycle_byte_identical(self, tmp_path, bundle):
        """import → serve → append → restart → byte-identical to in-memory."""
        store = DatasetStore.init(tmp_path / "store")
        bundle.to_store(store, config=_config(), shard_rows=100)

        engine = ExplanationEngine.from_store(store, max_workers=1)
        served = engine.explain("stackoverflow", self.QUERY)
        reference = CauSumX(bundle.table, bundle.dag, _config()).explain(
            self.QUERY, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        assert _payload(served) == _payload(reference)

        rows = [bundle.table.row(i) for i in range(8)]
        report = engine.append_rows("stackoverflow", rows)
        assert report["version"] == 1
        post_append = engine.explain("stackoverflow", self.QUERY)
        snapshot = engine.snapshot()
        assert snapshot["summaries"] >= 1

        # Restart: committed shards + registry + summary cache from disk only.
        restarted = ExplanationEngine.from_store(store, max_workers=1)
        summary, info = restarted.explain_with_info("stackoverflow", self.QUERY)
        assert info["cached"]  # warm: no recomputation
        assert _payload(summary) == _payload(post_append)
        # And the warm summary equals a fresh in-memory run on the full data.
        combined = bundle.table.concat(
            Table.from_rows(rows, schema=list(bundle.table.attributes)))
        fresh = CauSumX(combined, bundle.dag, _config()).explain(
            self.QUERY, grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=bundle.treatment_attributes)
        assert _payload(summary) == _payload(fresh)

    def test_snapshot_ignores_stale_versions(self, tmp_path, bundle):
        store = DatasetStore.init(tmp_path / "store")
        bundle.to_store(store, config=_config())
        engine = ExplanationEngine.from_store(store, max_workers=1)
        engine.explain("stackoverflow", self.QUERY)
        engine.snapshot()
        # Data moves on *after* the snapshot: restored entries must be dropped.
        store.dataset("stackoverflow").append(
            Table.from_rows([bundle.table.row(0)],
                            schema=list(bundle.table.attributes)))
        restarted = ExplanationEngine.from_store(store, max_workers=1)
        assert restarted.stats().get("restored_summaries", 0) == 0
        _, info = restarted.explain_with_info("stackoverflow", self.QUERY)
        assert not info["cached"]

    def test_snapshot_requires_store(self):
        engine = ExplanationEngine()
        with pytest.raises(ValueError):
            engine.snapshot()


class TestMemoryBudget:
    def test_cross_cache_global_lru_eviction(self):
        budget = MemoryBudget(capacity_bytes=100)
        a = LRUCache(10, budget=budget, weigher=len)
        b = LRUCache(10, budget=budget, weigher=len)
        a.put("a1", b"x" * 40)
        b.put("b1", b"x" * 40)
        a.put("a2", b"x" * 40)  # over cap: evicts a1 (globally oldest)
        assert "a1" not in a
        assert "b1" in b and "a2" in a
        b.get("b1")
        a.put("a3", b"x" * 40)  # over cap: a2 is now globally oldest
        assert "a2" not in a and "b1" in b
        stats = budget.stats()
        assert stats["evictions"] == 2
        assert stats["bytes"] <= 100
        assert stats["bytes_evicted"] == 80

    def test_engine_budget_eviction_surfaces_in_stats(self):
        bundle = load_dataset("stackoverflow", n=200, seed=0)
        budget = MemoryBudget(capacity_bytes=1)  # everything evicts
        engine = ExplanationEngine(max_workers=1, memory_budget=budget)
        engine.register_dataset("so", bundle.table, dag=bundle.dag,
                                config=_config(),
                                grouping_attributes=bundle.grouping_attributes,
                                treatment_attributes=bundle.treatment_attributes)
        engine.explain("so", "SELECT Country, AVG(Salary) FROM SO "
                             "GROUP BY Country")
        stats = engine.stats()
        assert stats["memory_budget"]["evictions"] >= 1
        assert stats["summary_cache"]["entries"] == 0
        # Correctness unaffected: the query just recomputes.
        engine.explain("so", "SELECT Country, AVG(Salary) FROM SO "
                             "GROUP BY Country")

    def test_unbudgeted_cache_reports_zero_bytes(self):
        cache = LRUCache(4)
        cache.put("k", "value")
        assert cache.stats().bytes == 0


class TestWriterSafety:
    def test_non_positive_shard_rows_rejected(self, store):
        with pytest.raises(StorageError):
            store.import_table("t", _table(10), shard_rows=0)
        with pytest.raises(StorageError):
            store.import_table("t2", _table(10), shard_rows=-1)

    def test_independent_handles_chain_appends(self, store):
        table = _table(20)
        dataset = store.import_table("people", table)
        other = StoredDataset(dataset.directory)  # separate handle, own lock
        dataset.append(_table(3, seed=1))
        other.append(_table(4, seed=2))  # re-reads committed state under flock
        dataset.append(_table(5, seed=3))
        final = StoredDataset(dataset.directory)
        assert final.manifest.version == 3
        assert final.manifest.n_rows == 32
        assert len({s.shard_id for s in final.manifest.shards}) == 4
        final.verify()  # every fingerprint matches its bytes

    def test_sorted_code_remap_is_shared_contract(self):
        from repro.dataframe.column import sorted_code_remap

        vocab, remap = sorted_code_remap(["b", "d", "a"])
        assert vocab == ("a", "b", "d")
        assert list(remap[:-1]) == [1, 2, 0] and remap[-1] == -1
        vocab, remap = sorted_code_remap(["a", "b"])
        assert vocab == ("a", "b") and remap is None
