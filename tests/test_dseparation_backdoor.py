"""Unit tests for d-separation and backdoor adjustment-set search."""

import pytest

from repro.graph import (
    CausalDAG,
    backdoor_adjustment_set,
    d_separated,
    parents_adjustment_set,
)
from repro.graph.backdoor import satisfies_backdoor


@pytest.fixture
def confounder_dag():
    """Classic confounding: Z -> T, Z -> Y, T -> Y."""
    return CausalDAG.from_dict({"T": ["Z"], "Y": ["T", "Z"], "Z": []})


@pytest.fixture
def collider_dag():
    """Collider: A -> C <- B."""
    return CausalDAG.from_dict({"C": ["A", "B"], "A": [], "B": []})


@pytest.fixture
def mediator_dag():
    """Chain: T -> M -> Y."""
    return CausalDAG.from_dict({"M": ["T"], "Y": ["M"], "T": []})


class TestDSeparation:
    def test_chain_blocked_by_mediator(self, mediator_dag):
        assert not d_separated(mediator_dag, "T", "Y")
        assert d_separated(mediator_dag, "T", "Y", given=["M"])

    def test_fork_blocked_by_common_cause(self, confounder_dag):
        assert not d_separated(confounder_dag, "T", "Y")
        # Conditioning on Z blocks the backdoor but the direct edge T->Y remains.
        assert not d_separated(confounder_dag, "T", "Y", given=["Z"])

    def test_collider_blocks_by_default(self, collider_dag):
        assert d_separated(collider_dag, "A", "B")

    def test_conditioning_on_collider_opens_path(self, collider_dag):
        assert not d_separated(collider_dag, "A", "B", given=["C"])

    def test_conditioning_on_collider_descendant_opens_path(self):
        dag = CausalDAG.from_dict({"C": ["A", "B"], "D": ["C"], "A": [], "B": []})
        assert d_separated(dag, "A", "B")
        assert not d_separated(dag, "A", "B", given=["D"])

    def test_same_node_never_separated(self, confounder_dag):
        assert not d_separated(confounder_dag, "T", "T")

    def test_disconnected_nodes_are_separated(self):
        dag = CausalDAG(["A", "B"])
        assert d_separated(dag, "A", "B")

    def test_chain_dag_fixture(self, chain_dag):
        # A and C are connected through B and through U.
        assert not d_separated(chain_dag, "A", "C")
        assert d_separated(chain_dag, "A", "C", given=["B", "U"])


class TestBackdoor:
    def test_parents_adjustment_set(self, confounder_dag):
        assert parents_adjustment_set(confounder_dag, "T", "Y") == ["Z"]

    def test_parents_adjustment_multi_treatment(self):
        dag = CausalDAG.from_dict({"T1": ["Z"], "T2": ["W"], "Y": ["T1", "T2", "Z", "W"]})
        assert parents_adjustment_set(dag, ["T1", "T2"], "Y") == ["W", "Z"]

    def test_minimal_backdoor_set(self, confounder_dag):
        assert backdoor_adjustment_set(confounder_dag, "T", "Y") == ["Z"]

    def test_backdoor_empty_when_no_confounding(self, mediator_dag):
        assert backdoor_adjustment_set(mediator_dag, "T", "Y") == []

    def test_backdoor_excludes_descendants(self, mediator_dag):
        # M is a descendant of T and must not be in a valid adjustment set.
        assert not satisfies_backdoor(mediator_dag, "T", "Y", ["M"])

    def test_satisfies_backdoor_confounder(self, confounder_dag):
        assert satisfies_backdoor(confounder_dag, "T", "Y", ["Z"])
        assert not satisfies_backdoor(confounder_dag, "T", "Y", [])

    def test_treatment_not_in_dag_yields_empty_set(self, confounder_dag):
        assert backdoor_adjustment_set(confounder_dag, "NotThere", "Y") == []
        assert parents_adjustment_set(confounder_dag, "NotThere", "Y") == []

    def test_m_structure_needs_no_adjustment(self):
        # M-bias graph: U1 -> Z <- U2, U1 -> T, U2 -> Y; empty set is valid,
        # and adjusting for Z alone would open the path.
        dag = CausalDAG.from_dict({
            "Z": ["U1", "U2"], "T": ["U1"], "Y": ["U2", "T"], "U1": [], "U2": []})
        assert backdoor_adjustment_set(dag, "T", "Y") == []
        assert not satisfies_backdoor(dag, "T", "Y", ["Z"])
