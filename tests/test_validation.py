"""Tests for the input-validation diagnostics."""

import pytest

from repro.core.validation import ValidationIssue, ValidationReport, validate_inputs
from repro.dataframe import Column, Table
from repro.graph import CausalDAG
from repro.sql import GroupByAvgQuery


def _codes(report):
    return {issue.code for issue in report.issues}


class TestValidateInputs:
    def test_clean_input_passes(self, so_bundle):
        report = validate_inputs(so_bundle.table, so_bundle.query, so_bundle.dag)
        assert report.ok()
        assert "invalid-query" not in _codes(report)

    def test_unknown_attribute_is_error(self, so_bundle):
        query = GroupByAvgQuery(group_by="Nope", average="Salary")
        report = validate_inputs(so_bundle.table, query, so_bundle.dag)
        assert not report.ok()
        assert "invalid-query" in _codes(report)

    def test_non_numeric_outcome_is_error(self, so_bundle):
        query = GroupByAvgQuery(group_by="Country", average="Gender")
        report = validate_inputs(so_bundle.table, query, so_bundle.dag)
        assert not report.ok()

    def test_single_group_view_is_error(self):
        table = Table.from_columns({"g": ["a", "a", "a"], "y": [1.0, 2.0, 3.0],
                                    "t": ["x", "y", "x"]})
        query = GroupByAvgQuery(group_by="g", average="y")
        report = validate_inputs(table, query)
        assert "degenerate-view" in _codes(report)
        assert not report.ok()

    def test_missing_dag_is_warning(self, so_bundle):
        report = validate_inputs(so_bundle.table, so_bundle.query, dag=None)
        assert report.ok()
        assert "no-dag" in _codes(report)

    def test_dag_attribute_coverage_warning(self, so_bundle):
        partial_dag = CausalDAG.from_dict({"Salary": ["Role"], "Role": []})
        report = validate_inputs(so_bundle.table, so_bundle.query, partial_dag)
        assert "attributes-missing-from-dag" in _codes(report)

    def test_outcome_without_parents_warning(self, so_bundle):
        dag = CausalDAG(list(so_bundle.table.attributes))
        report = validate_inputs(so_bundle.table, so_bundle.query, dag)
        assert "outcome-has-no-parents" in _codes(report)

    def test_dag_node_not_in_table_warning(self, so_bundle):
        dag = so_bundle.dag.copy()
        dag.add_edge("UnobservedThing", "Salary")
        report = validate_inputs(so_bundle.table, so_bundle.query, dag)
        assert "dag-nodes-missing-from-table" in _codes(report)

    def test_duplicate_tuples_warning(self):
        table = Table.from_columns({"g": ["a", "a", "b"], "t": [1, 1, 2],
                                    "y": [1.0, 1.0, 2.0]})
        query = GroupByAvgQuery(group_by="g", average="y")
        report = validate_inputs(table, query)
        assert "duplicate-tuples" in _codes(report)

    def test_missing_outcome_warning(self):
        table = Table([
            Column("g", ["a", "a", "b", "b"], numeric=False),
            Column("t", [1, 2, 1, 2], numeric=False),
            Column("y", [1.0, None, 2.0, 3.0], numeric=True),
        ])
        query = GroupByAvgQuery(group_by="g", average="y")
        report = validate_inputs(table, query)
        assert "missing-outcome-values" in _codes(report)

    def test_small_groups_warning(self, simple_table):
        query = GroupByAvgQuery(group_by="Country", average="Salary")
        report = validate_inputs(simple_table, query, min_group_size=10)
        assert "small-groups" in _codes(report)

    def test_no_grouping_attribute_warning(self):
        table = Table.from_columns({"purpose": ["a", "b", "a", "b"],
                                    "age": [20, 30, 40, 50],
                                    "risk": [0.0, 1.0, 1.0, 0.0]})
        query = GroupByAvgQuery(group_by="purpose", average="risk")
        report = validate_inputs(table, query)
        assert "no-grouping-attributes" in _codes(report)

    def test_no_treatment_attributes_error(self):
        table = Table.from_columns({"g": ["a", "b", "a", "b"], "y": [1.0, 2.0, 3.0, 4.0]})
        query = GroupByAvgQuery(group_by="g", average="y")
        report = validate_inputs(table, query)
        assert "no-treatment-attributes" in _codes(report)
        assert not report.ok()

    def test_errors_and_warnings_partition(self, so_bundle):
        report = validate_inputs(so_bundle.table, so_bundle.query, dag=None)
        assert set(report.errors) | set(report.warnings) == set(report.issues)


class TestValidationReport:
    def test_issue_is_hashable_and_frozen(self):
        issue = ValidationIssue("warning", "no-dag", "msg")
        assert issue in {issue}
        with pytest.raises(AttributeError):
            issue.severity = "error"

    def test_add_deduplicates_severity_code(self):
        report = ValidationReport()
        report.add("warning", "no-dag", "first message")
        report.add("warning", "no-dag", "second message")
        assert len(report.issues) == 1
        assert report.issues[0].message == "first message"
        # A different severity or code is a different finding.
        report.add("error", "no-dag", "escalated")
        report.add("warning", "small-groups", "other")
        assert len(report.issues) == 3

    def test_revalidation_does_not_grow_report(self, so_bundle):
        report = validate_inputs(so_bundle.table, so_bundle.query, dag=None)
        n_issues = len(report.issues)
        for issue in validate_inputs(so_bundle.table, so_bundle.query, dag=None).issues:
            report.add(issue.severity, issue.code, issue.message)
        assert len(report.issues) == n_issues
