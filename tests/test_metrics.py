"""Unit tests for the evaluation metrics."""

import pytest

from repro.causal import EffectEstimate
from repro.core import ExplanationPattern, ExplanationSummary
from repro.dataframe import Pattern, Table
from repro.metrics import (
    grouping_accuracy,
    kendall_tau,
    summary_quality,
    top_k_overlap,
    treatment_accuracy,
    tuple_set_precision_recall,
)
from repro.mining.grouping import GroupingPattern
from repro.mining.treatments import TreatmentCandidate


class TestPrecisionRecall:
    def test_perfect_match(self):
        assert tuple_set_precision_recall({1, 2}, {1, 2}) == (1.0, 1.0)

    def test_partial_overlap(self):
        precision, recall = tuple_set_precision_recall({1, 2, 3}, {2, 3, 4, 5})
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)

    def test_empty_sets(self):
        assert tuple_set_precision_recall(set(), set()) == (1.0, 1.0)
        assert tuple_set_precision_recall(set(), {1}) == (0.0, 0.0)

    def test_grouping_accuracy_on_table(self):
        table = Table.from_columns({"x": ["a", "a", "b", "c"]})
        predicted = [Pattern.of(("x", "=", "a"))]
        truth = [Pattern.of(("x", "=", "a")), Pattern.of(("x", "=", "b"))]
        result = grouping_accuracy(table, predicted, truth)
        assert result["precision"] == 1.0
        assert result["recall"] == pytest.approx(2 / 3)

    def test_treatment_accuracy_pairs(self):
        table = Table.from_columns({"x": ["a", "a", "b", "b"]})
        result = treatment_accuracy(table,
                                    [Pattern.of(("x", "=", "a"))],
                                    [Pattern.of(("x", "=", "a"))])
        assert result == {"precision": 1.0, "recall": 1.0}

    def test_treatment_accuracy_length_mismatch(self):
        table = Table.from_columns({"x": ["a"]})
        with pytest.raises(ValueError):
            treatment_accuracy(table, [Pattern()], [])


class TestRanking:
    def test_kendall_identical_rankings(self):
        scores = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert kendall_tau(scores, scores) == pytest.approx(1.0)

    def test_kendall_reversed_rankings(self):
        a = {"a": 1.0, "b": 2.0, "c": 3.0}
        b = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert kendall_tau(a, b) == pytest.approx(-1.0)

    def test_kendall_ignores_non_shared_items(self):
        a = {"a": 1.0, "b": 2.0, "z": 9.0}
        b = {"a": 1.0, "b": 2.0, "y": -1.0}
        assert kendall_tau(a, b) == pytest.approx(1.0)

    def test_kendall_single_item(self):
        assert kendall_tau({"a": 1.0}, {"a": 5.0}) == 1.0

    def test_kendall_constant_ranking(self):
        assert kendall_tau({"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 3.0}) == 0.0

    def test_top_k_overlap(self):
        assert top_k_overlap(["a", "b", "c"], ["b", "a", "d"], k=2) == 1.0
        assert top_k_overlap(["a", "b", "c"], ["c", "d", "e"], k=2) == 0.0
        with pytest.raises(ValueError):
            top_k_overlap(["a"], ["a"], k=0)


class TestSummaryQuality:
    def test_fields_present(self):
        grouping = GroupingPattern(Pattern.of(("x", "=", 1)), frozenset([("g",)]))
        candidate = TreatmentCandidate(Pattern.of(("t", "=", 1)),
                                       EffectEstimate(2.0, 0.5, 0.01, 20, 20))
        summary = ExplanationSummary([ExplanationPattern(grouping, candidate)],
                                     (("g",), ("h",)), k=3, theta=0.5,
                                     timings={"grouping_patterns": 0.1,
                                              "treatment_patterns": 0.2,
                                              "selection": 0.05},
                                     n_candidates=4)
        quality = summary_quality(summary)
        assert quality["n_patterns"] == 1
        assert quality["coverage"] == pytest.approx(0.5)
        assert quality["total_explainability"] == pytest.approx(2.0)
        assert quality["runtime_total"] == pytest.approx(0.35)
        assert quality["satisfies_constraints"]
