"""Unit tests for the ILP model, LP relaxation, rounding, exact and greedy solvers."""

import pytest

from repro.optimize import (
    CoverageILP,
    greedy_selection,
    randomized_rounding,
    solve_exact,
    solve_lp_relaxation,
)


class TestCoverageILP:
    def test_required_groups(self, coverage_problem):
        assert coverage_problem.m == 5
        assert coverage_problem.required_groups == 4  # ceil(0.8 * 5)

    def test_objective_and_coverage(self, coverage_problem):
        assert coverage_problem.objective_of([0, 1]) == pytest.approx(18.0)
        assert coverage_problem.covered_by([0, 1]) == frozenset(
            ["g1", "g2", "g3", "g4"])

    def test_feasibility_checks(self, coverage_problem):
        assert coverage_problem.is_feasible([0, 1])          # 4 groups covered
        assert not coverage_problem.is_feasible([0, 2])      # only 3 groups
        assert not coverage_problem.is_feasible([0, 1, 2])   # size > k

    def test_incomparability_enforced(self):
        problem = CoverageILP([1.0, 2.0], [frozenset(["g1"]), frozenset(["g1"])],
                              ["g1"], k=2, theta=1.0)
        assert not problem.is_feasible([0, 1])
        assert problem.is_feasible([1])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            CoverageILP([1.0], [], ["g1"], k=1, theta=0.5)
        with pytest.raises(ValueError):
            CoverageILP([1.0], [frozenset()], ["g1"], k=1, theta=1.5)
        with pytest.raises(ValueError):
            CoverageILP([1.0], [frozenset()], ["g1"], k=-1, theta=0.5)

    def test_coverage_clipped_to_universe(self):
        problem = CoverageILP([1.0], [frozenset(["g1", "not-a-group"])], ["g1"],
                              k=1, theta=1.0)
        assert problem.coverage[0] == frozenset(["g1"])

    def test_lp_arrays_shapes(self, coverage_problem):
        arrays = coverage_problem.lp_arrays()
        n_vars = coverage_problem.n_patterns + coverage_problem.m
        assert arrays["A_ub"].shape == (1 + coverage_problem.m + 1, n_vars)
        assert len(arrays["bounds"]) == n_vars


class TestLPRelaxation:
    def test_feasible_problem(self, coverage_problem):
        lp = solve_lp_relaxation(coverage_problem)
        assert lp.feasible
        # The LP objective upper-bounds every integral solution.
        exact = solve_exact(coverage_problem)
        assert lp.objective >= exact.objective - 1e-6

    def test_infeasible_problem(self):
        problem = CoverageILP([1.0], [frozenset(["g1"])], ["g1", "g2"], k=1, theta=1.0)
        lp = solve_lp_relaxation(problem)
        assert not lp.feasible

    def test_empty_candidates(self):
        problem = CoverageILP([], [], ["g1"], k=1, theta=1.0)
        lp = solve_lp_relaxation(problem)
        assert not lp.feasible


class TestRandomizedRounding:
    def test_returns_feasible_selection(self, coverage_problem):
        selection = randomized_rounding(coverage_problem, seed=0)
        assert selection is not None
        assert selection.feasible
        assert selection.size <= coverage_problem.k

    def test_infeasible_lp_returns_none(self):
        problem = CoverageILP([1.0], [frozenset(["g1"])], ["g1", "g2"], k=1, theta=1.0)
        assert randomized_rounding(problem) is None

    def test_deterministic_for_fixed_seed(self, coverage_problem):
        a = randomized_rounding(coverage_problem, seed=5)
        b = randomized_rounding(coverage_problem, seed=5)
        assert a.chosen == b.chosen

    def test_respects_incomparability(self):
        problem = CoverageILP([5.0, 4.0, 3.0],
                              [frozenset(["g1"]), frozenset(["g1"]), frozenset(["g2"])],
                              ["g1", "g2"], k=2, theta=1.0)
        selection = randomized_rounding(problem, seed=1)
        coverages = [problem.coverage[j] for j in selection.chosen]
        assert len(coverages) == len(set(coverages))


class TestExactSolver:
    def test_optimum_on_small_instance(self, coverage_problem):
        best = solve_exact(coverage_problem)
        # Optimal feasible pair is {0, 1}: weight 18, covers 4 groups.
        assert set(best.chosen) == {0, 1}
        assert best.objective == pytest.approx(18.0)

    def test_enumeration_agrees_with_branch_and_bound(self, coverage_problem):
        assert solve_exact(coverage_problem, "enumerate").objective == pytest.approx(
            solve_exact(coverage_problem, "branch_and_bound").objective)

    def test_infeasible_returns_none(self):
        problem = CoverageILP([1.0], [frozenset(["g1"])], ["g1", "g2"], k=1, theta=1.0)
        assert solve_exact(problem) is None

    def test_unknown_method_rejected(self, coverage_problem):
        with pytest.raises(ValueError):
            solve_exact(coverage_problem, "simulated-annealing")

    def test_exact_at_least_as_good_as_rounding(self, coverage_problem):
        exact = solve_exact(coverage_problem)
        rounded = randomized_rounding(coverage_problem, seed=0)
        assert exact.objective >= rounded.objective - 1e-9


class TestGreedy:
    def test_respects_size_constraint(self, coverage_problem):
        selection = greedy_selection(coverage_problem)
        assert selection.size <= coverage_problem.k

    def test_greedy_never_duplicates_coverage(self):
        problem = CoverageILP([5.0, 5.0, 1.0],
                              [frozenset(["g1"]), frozenset(["g1"]), frozenset(["g2"])],
                              ["g1", "g2"], k=3, theta=0.0)
        selection = greedy_selection(problem)
        coverages = [problem.coverage[j] for j in selection.chosen]
        assert len(coverages) == len(set(coverages))

    def test_greedy_may_miss_coverage_constraint(self):
        # Greedy prefers the heavy pattern and can end up below theta when k=1.
        problem = CoverageILP([100.0, 1.0, 1.0],
                              [frozenset(["g1"]),
                               frozenset(["g2"]),
                               frozenset(["g3"])],
                              ["g1", "g2", "g3"], k=1, theta=1.0)
        selection = greedy_selection(problem)
        assert not selection.feasible
        assert selection.chosen == (0,)

    def test_greedy_matches_set_based_reference(self):
        """The vectorized scorer reproduces the historical set-diff loop."""
        import itertools
        import random

        rng = random.Random(7)
        groups = [f"g{i}" for i in range(9)]
        for trial in range(20):
            n = rng.randint(1, 7)
            weights = [round(rng.uniform(0.0, 10.0), 3) for _ in range(n)]
            coverage = [frozenset(rng.sample(groups, rng.randint(0, 6)))
                        for _ in range(n)]
            problem = CoverageILP(weights, coverage, groups,
                                  k=rng.randint(1, 4), theta=0.5)
            expected = _reference_greedy(problem)
            assert greedy_selection(problem).chosen == expected, (trial, weights)

    def test_greedy_group_weights_change_preference(self):
        # Pattern 0 covers one huge group, pattern 1 covers two tiny ones.
        problem_uniform = CoverageILP(
            [1.0, 1.0], [frozenset(["big"]), frozenset(["t1", "t2"])],
            ["big", "t1", "t2"], k=1, theta=0.0)
        assert greedy_selection(problem_uniform).chosen == (1,)
        problem_weighted = CoverageILP(
            [1.0, 1.0], [frozenset(["big"]), frozenset(["t1", "t2"])],
            ["big", "t1", "t2"], k=1, theta=0.0,
            group_weights={"big": 1000.0, "t1": 1.0, "t2": 1.0})
        assert greedy_selection(problem_weighted).chosen == (0,)

    def test_coverage_matrix_and_weight_array(self):
        problem = CoverageILP([1.0], [frozenset(["g2"])], ["g1", "g2"],
                              k=1, theta=0.0, group_weights={"g2": 3.0})
        matrix = problem.coverage_matrix()
        assert matrix.tolist() == [[False, True]]
        assert problem.group_weight_array().tolist() == [1.0, 3.0]


def _reference_greedy(problem):
    """The pre-vectorization greedy loop, kept verbatim as a test oracle."""
    chosen, covered, taken = [], set(), set()
    max_weight = max([abs(w) for w in problem.weights], default=1.0) or 1.0
    m = max(problem.m, 1)
    while len(chosen) < problem.k:
        best_j, best_score = None, float("-inf")
        for j in range(problem.n_patterns):
            if j in chosen or problem.coverage[j] in taken:
                continue
            marginal = len(problem.coverage[j] - covered)
            score = problem.weights[j] / max_weight + marginal / m
            if score > best_score:
                best_score, best_j = score, j
        if best_j is None:
            break
        chosen.append(best_j)
        covered |= problem.coverage[best_j]
        taken.add(problem.coverage[best_j])
    return tuple(sorted(chosen))
