"""Unit tests for ATE/CATE estimation with backdoor adjustment."""

import numpy as np
import pytest

from repro.causal import (
    CATEEstimator,
    EffectEstimate,
    estimate_ate,
    estimate_cate,
    ipw_ate,
    naive_difference_in_means,
    overlap_holds,
    check_positivity,
)
from repro.dataframe import Column, Pattern, Table
from repro.graph import CausalDAG


class TestEffectEstimate:
    def test_validity(self):
        ok = EffectEstimate(1.0, 0.1, 0.01, 50, 50)
        assert ok.is_valid()
        assert ok.is_significant()
        assert ok.n_units == 100

    def test_undefined(self):
        bad = EffectEstimate.undefined(5, 0)
        assert not bad.is_valid()
        assert not bad.is_significant()


class TestAssumptions:
    def test_overlap(self):
        assert overlap_holds(np.array([True, False]))
        assert not overlap_holds(np.array([True, True]))
        assert not overlap_holds(np.array([False, False]))

    def test_positivity_min_size(self):
        mask = np.array([True] * 3 + [False] * 20)
        assert check_positivity(mask, min_group_size=3)
        assert not check_positivity(mask, min_group_size=5)


class TestNaive:
    def test_difference_in_means(self):
        outcome = np.array([1.0, 2.0, 5.0, 6.0])
        treated = np.array([False, False, True, True])
        estimate = naive_difference_in_means(outcome, treated)
        assert estimate.value == pytest.approx(4.0)
        assert estimate.estimator == "naive"

    def test_no_control_group(self):
        estimate = naive_difference_in_means(np.array([1.0, 2.0]),
                                             np.array([True, True]))
        assert not estimate.is_valid()

    def test_ignores_missing_outcomes(self):
        outcome = np.array([1.0, np.nan, 5.0, 7.0])
        treated = np.array([False, False, True, True])
        estimate = naive_difference_in_means(outcome, treated)
        assert estimate.value == pytest.approx(5.0)


class TestAdjustment:
    def test_adjusted_estimate_removes_confounding(self, confounded_table, confounded_dag):
        estimator = CATEEstimator(confounded_table, "Y", dag=confounded_dag)
        adjusted = estimator.estimate(Pattern.of(("T", "=", 1)))
        naive = naive_difference_in_means(
            confounded_table.column("Y").values,
            confounded_table.column("T").values == 1)
        assert adjusted.value == pytest.approx(5.0, abs=0.3)
        # The naive estimate is biased upward by the confounder Z.
        assert naive.value > adjusted.value + 0.3

    def test_cate_on_subpopulation(self, confounded_table, confounded_dag):
        effect = estimate_cate(confounded_table, Pattern.of(("T", "=", 1)), "Y",
                               subpopulation=Pattern.of(("G", "=", "even")),
                               dag=confounded_dag)
        assert effect.is_valid()
        assert effect.n_units <= 1000
        assert effect.value == pytest.approx(5.0, abs=0.5)

    def test_ate_helper(self, confounded_table, confounded_dag):
        effect = estimate_ate(confounded_table, Pattern.of(("T", "=", 1)), "Y",
                              dag=confounded_dag)
        assert effect.is_valid()

    def test_without_dag_no_adjustment(self, confounded_table):
        estimator = CATEEstimator(confounded_table, "Y", dag=None)
        assert estimator.adjustment_set(("T",)) == []

    def test_minimal_adjustment_strategy(self, confounded_table, confounded_dag):
        estimator = CATEEstimator(confounded_table, "Y", dag=confounded_dag,
                                  adjustment="minimal")
        assert estimator.adjustment_set(("T",)) == ["Z"]

    def test_unknown_adjustment_rejected(self, confounded_table):
        with pytest.raises(ValueError):
            CATEEstimator(confounded_table, "Y", adjustment="magic")

    def test_overlap_violation_returns_undefined(self, confounded_table, confounded_dag):
        estimator = CATEEstimator(confounded_table, "Y", dag=confounded_dag)
        # Every tuple satisfies Z >= 0, so there is no control group.
        estimate = estimator.estimate(Pattern.of(("Y", ">", -1e12)))
        assert not estimate.is_valid()

    def test_min_group_size_enforced(self, confounded_table, confounded_dag):
        estimator = CATEEstimator(confounded_table, "Y", dag=confounded_dag,
                                  min_group_size=10_000)
        estimate = estimator.estimate(Pattern.of(("T", "=", 1)))
        assert not estimate.is_valid()

    def test_sampling_estimate_close_to_full(self, confounded_table, confounded_dag):
        full = CATEEstimator(confounded_table, "Y", dag=confounded_dag)
        sampled = CATEEstimator(confounded_table, "Y", dag=confounded_dag,
                                sample_size=800, seed=1)
        t = Pattern.of(("T", "=", 1))
        assert sampled.estimate(t).value == pytest.approx(full.estimate(t).value,
                                                          abs=0.5)

    def test_missing_outcomes_are_dropped(self, confounded_dag):
        table = Table([
            Column("Z", [0, 1] * 50, numeric=False),
            Column("T", [0, 1] * 50, numeric=False),
            Column("Y", [float(i) if i % 3 else None for i in range(100)], numeric=True),
        ])
        estimator = CATEEstimator(table, "Y", dag=confounded_dag, min_group_size=5)
        estimate = estimator.estimate(Pattern.of(("T", "=", 1)))
        assert estimate.is_valid()

    def test_estimate_many(self, confounded_table, confounded_dag):
        estimator = CATEEstimator(confounded_table, "Y", dag=confounded_dag)
        results = estimator.estimate_many([Pattern.of(("T", "=", 1)),
                                           Pattern.of(("T", "=", 0))])
        assert len(results) == 2
        # Treating "T=0" flips the sign of the effect.
        assert results[0].value == pytest.approx(-results[1].value, rel=0.2)


class TestIPW:
    def test_ipw_close_to_regression(self, confounded_table):
        effect = ipw_ate(confounded_table, Pattern.of(("T", "=", 1)), "Y",
                         adjustment=["Z"])
        assert effect.estimator == "ipw"
        assert effect.value == pytest.approx(5.0, abs=0.6)

    def test_ipw_without_adjustment_is_naive_like(self, confounded_table):
        effect = ipw_ate(confounded_table, Pattern.of(("T", "=", 1)), "Y")
        naive = naive_difference_in_means(
            confounded_table.column("Y").values,
            confounded_table.column("T").values == 1)
        assert effect.value == pytest.approx(naive.value, abs=0.3)

    def test_ipw_overlap_violation(self, confounded_table):
        effect = ipw_ate(confounded_table, Pattern.of(("Y", ">", -1e12)), "Y")
        assert not effect.is_valid()
