"""Tests for the dictionary-encoded columnar core.

Two families of checks:

* randomized property tests (hypothesis) asserting the vectorized kernels —
  predicate masks, one-hot encoding, group-by factorization — match the old
  per-row semantics *exactly*, including None/NaN handling and mixed-type
  object columns;
* unit tests for the encoding invariants themselves: deterministic vocab
  order, slice-stable codes, the bool-column semantics unification, and the
  ``GroupResult.label`` separator fix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe import (
    MISSING_CODE,
    Column,
    GroupByIndex,
    Op,
    Pattern,
    Predicate,
    Table,
    one_hot,
)
from repro.sql import AggregateView, GroupByAvgQuery
from repro.sql.view import GroupResult

ALL_OPS = [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]

# ---------------------------------------------------------------------- strategies

categorical_values = st.one_of(
    st.sampled_from(["a", "b", "c", "dd", ""]), st.none())
mixed_values = st.one_of(
    st.sampled_from(["a", "b", "c"]), st.integers(-3, 3), st.none(),
    st.just(float("nan")))
numeric_values = st.one_of(
    st.floats(-50, 50, allow_nan=False), st.none(), st.just(float("nan")))


# ---------------------------------------------------------------------- references


def reference_mask(values, op: Op, target) -> np.ndarray:
    """Pre-refactor per-row categorical predicate semantics."""
    valid = np.array([v is not None for v in values], dtype=bool)
    if op is Op.EQ:
        comparison = np.array([v == target for v in values], dtype=bool)
    elif op is Op.NE:
        comparison = np.array([v != target for v in values], dtype=bool)
    else:
        comparison = np.array(
            [v is not None and _ordered(v, op, target) for v in values],
            dtype=bool)
    return comparison & valid


def _ordered(value, op: Op, target) -> bool:
    if op is Op.LT:
        return value < target
    if op is Op.GT:
        return value > target
    if op is Op.LE:
        return value <= target
    return value >= target


def reference_one_hot(column, categories) -> np.ndarray:
    matrix = np.zeros((len(column), len(categories)), dtype=np.float64)
    index = {c: j for j, c in enumerate(categories)}
    for i, value in enumerate(column.values):
        j = index.get(value)
        if j is not None:
            matrix[i, j] = 1.0
    return matrix


# ---------------------------------------------------------------------- predicates


@given(data=st.lists(categorical_values, min_size=1, max_size=50),
       target=st.sampled_from(["a", "b", "c", "dd", "", "absent"]),
       op=st.sampled_from(ALL_OPS))
@settings(max_examples=200)
def test_categorical_kernels_match_per_row_semantics(data, target, op):
    table = Table([Column("x", data, numeric=False),
                   Column("y", [1.0] * len(data), numeric=True)])
    mask = Predicate("x", op, target).evaluate(table)
    expected = reference_mask(table.column("x").values, op, target)
    assert mask.dtype == bool
    assert np.array_equal(mask, expected)


@given(data=st.lists(mixed_values, min_size=1, max_size=50),
       target=st.one_of(st.sampled_from(["a", "b"]), st.integers(-3, 3)),
       op=st.sampled_from([Op.EQ, Op.NE]))
@settings(max_examples=200)
def test_mixed_type_object_columns_eq_ne(data, target, op):
    """Mixed str/int object columns: EQ/NE masks match per-row comparison."""
    table = Table([Column("x", data, numeric=False),
                   Column("y", [0.0] * len(data), numeric=True)])
    mask = Predicate("x", op, target).evaluate(table)
    expected = reference_mask(table.column("x").values, op, target)
    assert np.array_equal(mask, expected)


@given(data=st.lists(numeric_values, min_size=1, max_size=50),
       target=st.floats(-50, 50, allow_nan=False),
       op=st.sampled_from(ALL_OPS))
@settings(max_examples=200)
def test_numeric_kernels_missing_never_match(data, target, op):
    table = Table([Column("x", data, numeric=True)])
    mask = Predicate("x", op, target).evaluate(table)
    values = table.column("x").values
    for i, v in enumerate(values):
        if np.isnan(v):
            assert not mask[i]
        else:
            assert mask[i] == _compare_float(float(v), op, target)


def _compare_float(value: float, op: Op, target: float) -> bool:
    if op is Op.EQ:
        return value == target
    if op is Op.NE:
        return value != target
    return _ordered(value, op, target)


def test_value_absent_from_vocabulary():
    table = Table.from_columns({"x": ["a", "b", None]})
    assert list(Predicate("x", Op.EQ, "zzz").evaluate(table)) == [False] * 3
    # NE against an absent value matches every non-missing row.
    assert list(Predicate("x", Op.NE, "zzz").evaluate(table)) == [True, True, False]


# ---------------------------------------------------------------------- bool columns


def test_bool_columns_are_numeric_and_consistent():
    """Satellite regression: evaluate and evaluate_value agree on bool columns."""
    flags = [True, False, True, None]
    table = Table([Column("flag", flags)])
    assert table.column("flag").numeric  # _infer_numeric treats bool as numeric
    for target in (True, False, 1, 0, 1.0):
        for op in ALL_OPS:
            predicate = Predicate("flag", op, target)
            mask = predicate.evaluate(table)
            scalar = [predicate.evaluate_value(v) for v in flags]
            assert list(mask) == scalar, (op, target)


def test_ordered_predicate_on_slice_ignores_absent_unorderable_vocab():
    """Inherited vocab values absent from a slice must not poison ordered ops."""
    table = Table([Column("m", ["a", "b", 5], numeric=False),
                   Column("y", [0.0, 0.0, 0.0], numeric=True)])
    sliced = table.take(np.array([0, 1]))  # the int 5 stays only in the vocab
    assert list(Predicate("m", Op.LT, "b").evaluate(sliced)) == [True, False]
    # A present un-orderable value still raises, like per-row evaluation did.
    with pytest.raises(TypeError):
        Predicate("m", Op.LT, "b").evaluate(table)


def test_discretize_preserves_overflow_bin_for_large_magnitudes():
    from repro.dataframe import discretize_column

    table = Table.from_columns({"x": [1e20, 2e20, 3e20, 4e20, 5e20]})
    column = discretize_column(table, "x", n_bins=2)
    assert column.values[0] == "<= 3e+20"
    assert column.values[3] == "> 3e+20"
    assert column.values[4] == "> 3e+20"


def test_bool_scalar_against_non_numeric_target_falls_back_to_equality():
    assert not Predicate("a", Op.EQ, "yes").evaluate_value(True)
    assert Predicate("a", Op.NE, "yes").evaluate_value(True)
    assert not Predicate("a", Op.EQ, "yes").evaluate_value(5)


def test_bool_scalar_matches_numeric_scalar():
    assert Predicate("x", Op.EQ, 1).evaluate_value(True)
    assert Predicate("x", Op.EQ, True).evaluate_value(1.0)
    assert not Predicate("x", Op.LT, True).evaluate_value(True)
    assert Predicate("x", Op.GE, False).evaluate_value(True)


# ---------------------------------------------------------------------- encoding invariants


def test_vocab_is_sorted_and_codes_decode():
    column = Column("x", ["b", "a", None, "c", "a"], numeric=False)
    assert column.vocab == ("a", "b", "c")
    assert list(column.codes) == [1, 0, MISSING_CODE, 2, 0]
    assert list(column.values) == ["b", "a", None, "c", "a"]


def test_as_float_uses_dense_rank_of_present_values():
    column = Column("x", ["b", "a", "b", None], numeric=False)
    assert list(column.as_float()[:3]) == [1.0, 0.0, 1.0]
    assert np.isnan(column.as_float()[3])
    # Dense re-ranking is relative to *present* values, even after slicing.
    sliced = column.take(np.array([0, 2, 3]))  # only "b" and None remain
    assert list(sliced.as_float()[:2]) == [0.0, 0.0]


def test_take_preserves_vocabulary():
    column = Column("x", ["b", "a", "c", "a"], numeric=False)
    sliced = column.take(np.array([0, 3]))
    assert sliced.vocab == column.vocab
    assert list(sliced.codes) == [1, 0]
    assert sliced.unique() == ["a", "b"]  # active domain shrinks with the slice


@given(data=st.lists(categorical_values, min_size=1, max_size=40),
       mask_bits=st.lists(st.booleans(), min_size=40, max_size=40))
@settings(max_examples=100)
def test_select_sliced_tables_keep_vocabularies_consistent(data, mask_bits):
    table = Table([Column("x", data, numeric=False),
                   Column("y", list(range(len(data))), numeric=True)])
    mask = np.array(mask_bits[:len(data)], dtype=bool)
    sliced = table.select(mask)
    parent = table.column("x")
    child = sliced.column("x")
    assert child.vocab == parent.vocab
    assert np.array_equal(child.codes, parent.codes[mask])
    # The active domain equals the decoded values present in the slice.
    present = [v for v, keep in zip(parent.values, mask) if keep and v is not None]
    assert child.unique() == sorted(set(present))


@given(data=st.lists(categorical_values, min_size=1, max_size=40))
@settings(max_examples=100)
def test_one_hot_matches_per_row_reference(data):
    table = Table([Column("x", data, numeric=False),
                   Column("y", [0.0] * len(data), numeric=True)])
    for drop_first in (False, True):
        matrix, names = one_hot(table, "x", drop_first=drop_first)
        column = table.column("x")
        categories = column.unique()
        if drop_first and len(categories) > 1:
            categories = categories[1:]
        assert np.array_equal(matrix, reference_one_hot(column, categories))
        assert names == [f"x={c}" for c in categories]


def test_one_hot_numeric_column():
    table = Table.from_columns({"x": [1.0, 2.0, 1.0, None]})
    matrix, names = one_hot(table, "x", drop_first=False)
    assert names == ["x=1.0", "x=2.0"]
    assert matrix.tolist() == [[1, 0], [0, 1], [1, 0], [0, 0]]


def test_value_counts_from_codes():
    column = Column("x", ["b", "a", "b", None], numeric=False)
    assert column.value_counts() == {"a": 1, "b": 2}
    assert Column("x", [2.0, 1.0, 2.0, None]).value_counts() == {1.0: 1, 2.0: 2}


# ---------------------------------------------------------------------- group-by index


@given(keys=st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=40),
       outcomes=st.lists(st.one_of(st.floats(-10, 10, allow_nan=False),
                                   st.just(float("nan"))),
                         min_size=40, max_size=40))
@settings(max_examples=100)
def test_group_index_matches_dict_reference(keys, outcomes):
    n = len(keys)
    outcomes = outcomes[:n]
    table = Table([Column("g", keys, numeric=False),
                   Column("y", outcomes, numeric=True)])
    index = table.group_index(["g"])
    # Reference: per-row dict grouping.
    expected_rows: dict = {}
    for i, k in enumerate(keys):
        expected_rows.setdefault((k,), []).append(i)
    assert set(index.keys) == set(expected_rows)
    assert list(index.keys) == list(expected_rows)  # first-occurrence order
    by_key = index.indices_by_key()
    for key, rows in expected_rows.items():
        assert list(by_key[key]) == rows
    # Averages ignore NaN; sizes count every row.
    values = table.column("y").values
    for gid, key in enumerate(index.keys):
        rows = np.asarray(expected_rows[key])
        valid = values[rows][~np.isnan(values[rows])]
        averages, _ = index.averages(values)
        if valid.size:
            assert averages[gid] == pytest.approx(valid.mean())
        else:
            assert np.isnan(averages[gid])
        assert index.sizes[gid] == len(rows)


def test_group_index_composite_keys():
    table = Table.from_columns({
        "a": ["x", "x", "y", "y", "x"],
        "b": [1, 2, 1, 1, None],
        "y": [1.0, 2.0, 3.0, 4.0, 5.0],
    })
    index = table.group_index(["a", "b"])
    assert index.n_groups == 4
    by_key = index.indices_by_key()
    assert list(by_key[("y", 1)]) == [2, 3]
    # The missing numeric key forms its own NaN-keyed singleton group, exactly
    # like the old dict-based grouping did.
    nan_groups = [k for k in by_key if isinstance(k[1], float) and np.isnan(k[1])]
    assert len(nan_groups) == 1
    assert list(by_key[nan_groups[0]]) == [4]


def test_group_index_all_true():
    table = Table.from_columns({"g": ["a", "a", "b"], "y": [1.0, 2.0, 3.0]})
    index = table.group_index(["g"])
    mask = np.array([True, False, True])
    covered = index.all_true(mask)
    by_gid = dict(zip(index.keys, covered))
    assert not by_gid[("a",)]
    assert by_gid[("b",)]


def test_covered_groups_matches_per_group_scan():
    table = Table.from_columns({
        "Country": ["US", "US", "DE", "DE", "FR"],
        "Continent": ["NA", "NA", "EU", "EU", "EU"],
        "Salary": [1.0, 2.0, 3.0, 4.0, 5.0],
    })
    view = AggregateView(table, GroupByAvgQuery(group_by="Country",
                                                average="Salary"))
    covered = view.covered_groups(Pattern.of(("Continent", "=", "EU")))
    assert covered == frozenset({("DE",), ("FR",)})


# ---------------------------------------------------------------------- label escaping


def test_group_result_label_escapes_separator():
    collision_a = GroupResult(key=("a/b", "c"), average=0.0, size=1)
    collision_b = GroupResult(key=("a", "b/c"), average=0.0, size=1)
    assert collision_a.label() != collision_b.label()
    plain = GroupResult(key=("US", "Male"), average=0.0, size=1)
    assert plain.label() == "US/Male"  # unchanged when parts are clean
    backslash = GroupResult(key=("a\\", "/b"), average=0.0, size=1)
    assert backslash.label() == "a\\\\/\\/b"
