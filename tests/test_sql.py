"""Unit tests for the query layer: parsing, validation, and view materialisation."""

import pytest

from repro.dataframe import Pattern
from repro.sql import AggregateView, GroupByAvgQuery, parse_query


class TestQueryConstruction:
    def test_single_group_by_string(self):
        query = GroupByAvgQuery(group_by="Country", average="Salary")
        assert query.group_by == ("Country",)

    def test_average_cannot_be_group_by(self):
        with pytest.raises(ValueError):
            GroupByAvgQuery(group_by=["Salary"], average="Salary")

    def test_empty_group_by_rejected(self):
        with pytest.raises(ValueError):
            GroupByAvgQuery(group_by=[], average="Salary")

    def test_validate_unknown_attribute(self, simple_table):
        query = GroupByAvgQuery(group_by="Missing", average="Salary")
        with pytest.raises(KeyError):
            query.validate(simple_table)

    def test_validate_non_numeric_average(self, simple_table):
        query = GroupByAvgQuery(group_by="Country", average="Gender")
        with pytest.raises(TypeError):
            query.validate(simple_table)

    def test_to_sql_round_trips_through_parser(self):
        query = GroupByAvgQuery(group_by=["Country"], average="Salary",
                                where=Pattern.of(("Age", ">", 25)), table_name="SO")
        reparsed = parse_query(query.to_sql())
        assert reparsed.group_by == query.group_by
        assert reparsed.average == query.average
        assert len(reparsed.where) == 1


class TestParser:
    def test_basic_query(self):
        query = parse_query("SELECT Country, AVG(Salary) FROM SO GROUP BY Country")
        assert query.group_by == ("Country",)
        assert query.average == "Salary"
        assert query.table_name == "SO"

    def test_lowercase_keywords(self):
        query = parse_query("select g, avg(y) from t group by g")
        assert query.average == "y"

    def test_multiple_group_by(self):
        query = parse_query("SELECT a, b, AVG(y) FROM t GROUP BY a, b")
        assert query.group_by == ("a", "b")

    def test_where_clause(self):
        query = parse_query(
            "SELECT g, AVG(y) FROM t WHERE age > 30 AND country = 'US' GROUP BY g")
        assert len(query.where) == 2
        values = {p.attribute: p.value for p in query.where}
        assert values["age"] == 30
        assert values["country"] == "US"

    def test_trailing_semicolon(self):
        assert parse_query("SELECT g, AVG(y) FROM t GROUP BY g;").average == "y"

    def test_missing_avg_rejected(self):
        with pytest.raises(ValueError):
            parse_query("SELECT g, SUM(y) FROM t GROUP BY g")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_query("DELETE FROM t")


class TestAggregateView:
    def test_groups_and_averages(self, small_view):
        assert small_view.m == 3
        us = small_view.group(("US",))
        assert us.average == pytest.approx(131.5)
        assert us.size == 2

    def test_group_keys_sorted(self, small_view):
        assert small_view.group_keys() == [("China",), ("India",), ("US",)]

    def test_rows_of_group_and_group_table(self, small_view):
        rows = small_view.rows_of_group(("India",))
        assert len(rows) == 2
        sub = small_view.group_table(("India",))
        assert set(sub.column("Country").values) == {"India"}

    def test_covered_groups_full_coverage(self, small_view):
        covered = small_view.covered_groups(Pattern.of(("Continent", "=", "Asia")))
        assert covered == frozenset({("India",), ("China",)})

    def test_covered_groups_requires_all_tuples(self, small_view):
        # Gender=Male does not hold for every tuple of any country.
        covered = small_view.covered_groups(Pattern.of(("Gender", "=", "Male")))
        assert covered == frozenset()

    def test_empty_pattern_covers_everything(self, small_view):
        assert small_view.covered_groups(Pattern()) == frozenset(small_view.group_keys())

    def test_coverage_fraction(self, small_view):
        assert small_view.coverage_fraction([("US",)]) == pytest.approx(1 / 3)

    def test_where_filter_applied(self, simple_table):
        query = GroupByAvgQuery(group_by="Country", average="Salary",
                                where=Pattern.of(("Continent", "=", "Asia")))
        view = AggregateView(simple_table, query)
        assert view.m == 2

    def test_as_rows(self, small_view):
        rows = small_view.as_rows()
        assert rows[0]["Country"] == "China"
        assert "avg_Salary" in rows[0]
