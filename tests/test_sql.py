"""Unit tests for the query layer: parsing, validation, and view materialisation."""

import pytest

from repro.dataframe import Pattern
from repro.sql import (
    AggregateView,
    GroupByAvgQuery,
    normalize_query,
    parse_query,
    query_fingerprint,
)


class TestQueryConstruction:
    def test_single_group_by_string(self):
        query = GroupByAvgQuery(group_by="Country", average="Salary")
        assert query.group_by == ("Country",)

    def test_average_cannot_be_group_by(self):
        with pytest.raises(ValueError):
            GroupByAvgQuery(group_by=["Salary"], average="Salary")

    def test_empty_group_by_rejected(self):
        with pytest.raises(ValueError):
            GroupByAvgQuery(group_by=[], average="Salary")

    def test_validate_unknown_attribute(self, simple_table):
        query = GroupByAvgQuery(group_by="Missing", average="Salary")
        with pytest.raises(KeyError):
            query.validate(simple_table)

    def test_validate_non_numeric_average(self, simple_table):
        query = GroupByAvgQuery(group_by="Country", average="Gender")
        with pytest.raises(TypeError):
            query.validate(simple_table)

    def test_to_sql_round_trips_through_parser(self):
        query = GroupByAvgQuery(group_by=["Country"], average="Salary",
                                where=Pattern.of(("Age", ">", 25)), table_name="SO")
        reparsed = parse_query(query.to_sql())
        assert reparsed.group_by == query.group_by
        assert reparsed.average == query.average
        assert len(reparsed.where) == 1


class TestParser:
    def test_basic_query(self):
        query = parse_query("SELECT Country, AVG(Salary) FROM SO GROUP BY Country")
        assert query.group_by == ("Country",)
        assert query.average == "Salary"
        assert query.table_name == "SO"

    def test_lowercase_keywords(self):
        query = parse_query("select g, avg(y) from t group by g")
        assert query.average == "y"

    def test_multiple_group_by(self):
        query = parse_query("SELECT a, b, AVG(y) FROM t GROUP BY a, b")
        assert query.group_by == ("a", "b")

    def test_where_clause(self):
        query = parse_query(
            "SELECT g, AVG(y) FROM t WHERE age > 30 AND country = 'US' GROUP BY g")
        assert len(query.where) == 2
        values = {p.attribute: p.value for p in query.where}
        assert values["age"] == 30
        assert values["country"] == "US"

    def test_trailing_semicolon(self):
        assert parse_query("SELECT g, AVG(y) FROM t GROUP BY g;").average == "y"

    def test_missing_avg_rejected(self):
        with pytest.raises(ValueError):
            parse_query("SELECT g, SUM(y) FROM t GROUP BY g")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_query("DELETE FROM t")

    def test_duplicate_group_by_rejected(self):
        with pytest.raises(ValueError, match="duplicate GROUP BY.*g"):
            parse_query("SELECT g, AVG(y) FROM t GROUP BY g, g")

    def test_negative_literal(self):
        query = parse_query("SELECT g, AVG(y) FROM t WHERE delta > -5 GROUP BY g")
        assert query.where.predicates[0].value == -5

    def test_parenthesized_literals(self):
        query = parse_query(
            "SELECT g, AVG(y) FROM t WHERE a = (30) AND b <= ((-2.5)) GROUP BY g")
        values = {p.attribute: p.value for p in query.where}
        assert values["a"] == 30 and isinstance(values["a"], int)
        assert values["b"] == -2.5

    def test_bad_condition_reports_offending_text(self):
        with pytest.raises(ValueError, match=r"age >>"):
            parse_query("SELECT g, AVG(y) FROM t WHERE age >> 30 GROUP BY g")

    def test_empty_parenthesized_literal_reports_condition(self):
        with pytest.raises(ValueError, match=r"a = \(\)"):
            parse_query("SELECT g, AVG(y) FROM t WHERE a = () GROUP BY g")


class TestNormalization:
    def test_group_by_order_canonicalised(self):
        query = parse_query("SELECT b, a, AVG(y) FROM t GROUP BY b, a")
        assert normalize_query(query).group_by == ("a", "b")

    def test_idempotent_returns_same_object(self):
        query = parse_query("SELECT a, b, AVG(y) FROM t GROUP BY a, b")
        assert normalize_query(query) is query

    def test_integral_float_literal_collapsed(self):
        query = parse_query("SELECT g, AVG(y) FROM t WHERE age > 30.0 GROUP BY g")
        normalized = normalize_query(query)
        value = normalized.where.predicates[0].value
        assert value == 30 and isinstance(value, int)

    def test_fingerprint_equivalent_spellings_agree(self):
        a = parse_query("SELECT b, a, AVG(y) FROM t WHERE age > 30.0 GROUP BY b, a")
        b = parse_query("SELECT a, b, AVG(y) FROM s WHERE age > (30) GROUP BY a, b")
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_fingerprint_distinguishes_queries(self):
        a = parse_query("SELECT g, AVG(y) FROM t GROUP BY g")
        b = parse_query("SELECT g, AVG(z) FROM t GROUP BY g")
        c = parse_query("SELECT g, AVG(y) FROM t WHERE y > 1 GROUP BY g")
        assert len({query_fingerprint(a), query_fingerprint(b),
                    query_fingerprint(c)}) == 3

    def test_fingerprint_distinguishes_value_types(self):
        a = parse_query("SELECT g, AVG(y) FROM t WHERE a = '30' GROUP BY g")
        b = parse_query("SELECT g, AVG(y) FROM t WHERE a = 30 GROUP BY g")
        assert query_fingerprint(a) != query_fingerprint(b)


class TestAggregateView:
    def test_groups_and_averages(self, small_view):
        assert small_view.m == 3
        us = small_view.group(("US",))
        assert us.average == pytest.approx(131.5)
        assert us.size == 2

    def test_group_keys_sorted(self, small_view):
        assert small_view.group_keys() == [("China",), ("India",), ("US",)]

    def test_rows_of_group_and_group_table(self, small_view):
        rows = small_view.rows_of_group(("India",))
        assert len(rows) == 2
        sub = small_view.group_table(("India",))
        assert set(sub.column("Country").values) == {"India"}

    def test_covered_groups_full_coverage(self, small_view):
        covered = small_view.covered_groups(Pattern.of(("Continent", "=", "Asia")))
        assert covered == frozenset({("India",), ("China",)})

    def test_covered_groups_requires_all_tuples(self, small_view):
        # Gender=Male does not hold for every tuple of any country.
        covered = small_view.covered_groups(Pattern.of(("Gender", "=", "Male")))
        assert covered == frozenset()

    def test_empty_pattern_covers_everything(self, small_view):
        assert small_view.covered_groups(Pattern()) == frozenset(small_view.group_keys())

    def test_coverage_fraction(self, small_view):
        assert small_view.coverage_fraction([("US",)]) == pytest.approx(1 / 3)

    def test_where_filter_applied(self, simple_table):
        query = GroupByAvgQuery(group_by="Country", average="Salary",
                                where=Pattern.of(("Continent", "=", "Asia")))
        view = AggregateView(simple_table, query)
        assert view.m == 2

    def test_as_rows(self, small_view):
        rows = small_view.as_rows()
        assert rows[0]["Country"] == "China"
        assert "avg_Salary" in rows[0]
