"""Tests for the explanation-serving subsystem (``repro.service``)."""

import io
import json
import threading

import pytest

from repro.core import CauSumX, CauSumXConfig, summary_to_dict
from repro.dataframe import Table
from repro.mining.treatments import TreatmentMinerConfig
from repro.service import (
    ExplanationEngine,
    LRUCache,
    handle_request,
    read_queries,
    run_batch,
    serve_loop,
)


def _summary_payload(summary) -> str:
    """Canonical bytes of a summary, ignoring wall-clock timings."""
    payload = summary_to_dict(summary)
    payload.pop("timings", None)
    return json.dumps(payload, sort_keys=True, default=str)


def small_config(**overrides) -> CauSumXConfig:
    config = CauSumXConfig(
        k=3, theta=0.5, apriori_threshold=0.1, sample_size=None,
        min_group_size=5,
        treatment=TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                       significance_level=0.05,
                                       max_values_per_attribute=8),
    )
    return config.with_overrides(**overrides) if overrides else config


@pytest.fixture(scope="module")
def so_small(so_bundle):
    """A small stackoverflow slice shared by the engine tests."""
    return so_bundle


@pytest.fixture()
def engine(so_small):
    engine = ExplanationEngine(max_workers=2, summary_cache_size=8)
    engine.register_bundle(so_small, config=small_config())
    return engine


BASE_QUERY = "SELECT Country, AVG(Salary) FROM SO GROUP BY Country"


class TestLRUCache:
    def test_hit_miss_eviction_accounting(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b" (LRU after the "a" hit)
        assert cache.get("b") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 2, 1)
        assert stats.entries == 2

    def test_purge_counts_invalidations(self):
        cache = LRUCache(capacity=8)
        for i in range(4):
            cache.put(("d1" if i % 2 else "d2", i), i)
        assert cache.purge(lambda key: key[0] == "d1") == 2
        assert cache.stats().invalidations == 2
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestRegistration:
    def test_unknown_dataset_raises(self, engine):
        with pytest.raises(KeyError, match="unknown dataset"):
            engine.explain("nope", BASE_QUERY)

    def test_reregistration_bumps_version(self, engine, so_small):
        assert engine.dataset_state("stackoverflow").version == 0
        engine.register_bundle(so_small, config=small_config())
        assert engine.dataset_state("stackoverflow").version == 1


class TestServing:
    def test_summary_matches_one_shot(self, engine, so_small):
        served = engine.explain("stackoverflow", BASE_QUERY)
        fresh = CauSumX(so_small.table, so_small.dag, small_config()).explain(
            BASE_QUERY,
            grouping_attributes=so_small.grouping_attributes,
            treatment_attributes=so_small.treatment_attributes)
        assert _summary_payload(served) == _summary_payload(fresh)

    def test_repeat_hits_summary_cache(self, engine):
        first, info_first = engine.explain_with_info("stackoverflow", BASE_QUERY)
        second, info_second = engine.explain_with_info("stackoverflow", BASE_QUERY)
        assert second is first
        assert not info_first["cached"] and info_second["cached"]
        assert engine.computations == 1

    def test_equivalent_spellings_share_cache_entry(self, engine):
        first = engine.explain("stackoverflow", BASE_QUERY)
        second = engine.explain(
            "stackoverflow",
            "select Country, avg(Salary) from ANYNAME group by Country;")
        assert second is first
        assert engine.computations == 1

    def test_views_and_populations_shared_across_queries(self, engine):
        engine.explain("stackoverflow", BASE_QUERY)
        # Same (empty WHERE, Salary) population, different group-by.
        engine.explain("stackoverflow",
                       "SELECT Continent, AVG(Salary) FROM SO GROUP BY Continent")
        stats = engine.stats()
        assert stats["population_cache"]["entries"] == 1
        assert stats["population_cache"]["hits"] >= 1
        assert stats["computations"] == 2

    def test_explain_many_deduplicates(self, engine):
        queries = [BASE_QUERY, BASE_QUERY,
                   "SELECT Continent, AVG(Salary) FROM SO GROUP BY Continent",
                   BASE_QUERY]
        summaries = engine.explain_many("stackoverflow", queries)
        assert len(summaries) == 4
        assert summaries[0] is summaries[1] is summaries[3]
        assert engine.computations == 2
        assert engine.stats()["batch_deduped"] == 2

    def test_summary_cache_opt_out_recomputes(self, engine):
        engine.explain("stackoverflow", BASE_QUERY, use_summary_cache=False)
        engine.explain("stackoverflow", BASE_QUERY, use_summary_cache=False)
        assert engine.computations == 2


class TestConcurrency:
    def test_single_flight_same_fingerprint(self, engine):
        """Two threads issuing the same fingerprint share one computation."""
        barrier = threading.Barrier(2)
        results, infos, errors = {}, {}, []

        def request(slot):
            try:
                barrier.wait(timeout=30)
                summary, info = engine.explain_with_info("stackoverflow", BASE_QUERY)
                results[slot] = summary
                infos[slot] = info
            except Exception as exc:  # pragma: no cover - surfaced by assertions
                errors.append(exc)

        threads = [threading.Thread(target=request, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert engine.computations == 1
        assert results[0] is results[1]
        # Exactly one of the two either coalesced onto the leader's flight or
        # (if it arrived after completion) hit the summary cache.
        followers = [i for i in infos.values() if i["cached"] or i["coalesced"]]
        assert len(followers) == 1

    def test_mask_cache_stats_consistent_under_race(self, engine):
        barrier = threading.Barrier(2)

        def request():
            barrier.wait(timeout=30)
            engine.explain("stackoverflow", BASE_QUERY)

        threads = [threading.Thread(target=request) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        mask_stats = engine.stats()["mask_caches"]
        assert mask_stats["entries"] > 0
        # Every request either hit or missed; the counters never drift.
        assert mask_stats["hits"] + mask_stats["misses"] >= mask_stats["entries"]

    def test_lockwatch_acquisition_graph_stays_acyclic(self, so_small):
        """Exercise the engine's full lock surface (explains, appends, stats
        snapshots) under an instrumented registry and assert the recorded
        acquisition-order graph has no cycle — the machine-checked form of
        the engine's three-lock discipline."""
        from repro.analysis import lockwatch

        registry = lockwatch.enable()
        registry.reset()
        try:
            # Built while enabled, so every named_lock is a WatchedLock.
            engine = ExplanationEngine(max_workers=2, summary_cache_size=8)
            engine.register_bundle(so_small, config=small_config())
            rows = so_small.table.take(range(10)).to_rows()
            barrier = threading.Barrier(3)
            errors = []

            def run(action):
                try:
                    barrier.wait(timeout=30)
                    action()
                except Exception as exc:  # pragma: no cover - assertion below
                    errors.append(exc)

            actions = [
                lambda: engine.explain("stackoverflow", BASE_QUERY),
                lambda: engine.append_rows("stackoverflow", rows),
                lambda: engine.stats(),
            ]
            threads = [threading.Thread(target=run, args=(a,)) for a in actions]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            # The engine really nests acquisitions (e.g. mutation -> datasets
            # in append_rows), so the graph must be non-trivial — and acyclic.
            assert registry.edges()
            assert registry.violations == []
            registry.assert_acyclic()
        finally:
            registry.reset()
            lockwatch.disable()


class TestAppendRows:
    def test_append_invalidates_and_matches_fresh_run(self, engine, so_small):
        before = engine.explain("stackoverflow", BASE_QUERY)
        new_rows = so_small.table.take(range(40)).to_rows()
        report = engine.append_rows("stackoverflow", new_rows)
        assert report["version"] == 1
        assert report["appended_rows"] == 40
        assert report["invalidated"] > 0
        assert report["masks_carried"] > 0

        after = engine.explain("stackoverflow", BASE_QUERY)
        combined = so_small.table.concat(
            Table.from_rows(new_rows, schema=list(so_small.table.attributes)))
        fresh = CauSumX(combined, so_small.dag, small_config()).explain(
            BASE_QUERY,
            grouping_attributes=so_small.grouping_attributes,
            treatment_attributes=so_small.treatment_attributes)
        assert _summary_payload(after) == _summary_payload(fresh)
        # The pre-append summary must not be served post-append.
        assert after is not before
        assert engine.computations == 2

    def test_append_schema_mismatch_rejected(self, engine):
        with pytest.raises(ValueError, match="schema"):
            engine.append_rows("stackoverflow", [{"Wrong": 1}])

    def test_append_empty_rows_is_noop(self, engine):
        report = engine.append_rows("stackoverflow", [])
        assert report["appended_rows"] == 0
        assert engine.dataset_state("stackoverflow").version == 0

    def test_append_kind_mismatch_rejected(self, engine, so_small):
        row = dict(so_small.table.row(0))
        row["Salary"] = "a lot"  # categorical value into the numeric outcome
        with pytest.raises(ValueError, match="numeric column kind"):
            engine.append_rows("stackoverflow", [row])

    def test_append_row_missing_numeric_attribute_keeps_column_numeric(
            self, engine, so_small):
        row = dict(so_small.table.row(0))
        del row["Salary"]  # omitted numeric outcome must become NaN, not None
        report = engine.append_rows("stackoverflow", [row])
        assert report["appended_rows"] == 1
        table = engine.dataset_state("stackoverflow").table
        assert table.is_numeric("Salary")
        # The engine still serves the dataset afterwards.
        assert engine.explain("stackoverflow", BASE_QUERY) is not None


class TestServerProtocol:
    def test_bare_sql_line_is_explain(self, engine):
        response = handle_request(engine, "stackoverflow", BASE_QUERY)
        assert response["ok"]
        assert response["result"]["k"] == 3
        assert response["cached"] is False

    def test_json_explain_with_id(self, engine):
        request = json.dumps({"op": "explain", "query": BASE_QUERY, "id": 42})
        response = handle_request(engine, "stackoverflow", request)
        assert response["ok"] and response["id"] == 42

    def test_stats_and_append_ops(self, engine, so_small):
        rows = so_small.table.take(range(5)).to_rows()
        append = handle_request(engine, "stackoverflow", json.dumps(
            {"op": "append_rows", "rows": rows}))
        assert append["ok"] and append["result"]["appended_rows"] == 5
        stats = handle_request(engine, "stackoverflow", json.dumps({"op": "stats"}))
        assert stats["ok"]
        assert stats["result"]["datasets"]["stackoverflow"]["version"] == 1

    def test_bad_requests_report_errors(self, engine):
        assert not handle_request(engine, "stackoverflow", "{not json")["ok"]
        assert not handle_request(engine, "stackoverflow",
                                  json.dumps({"op": "teleport"}))["ok"]
        bad_sql = handle_request(engine, "stackoverflow",
                                 "SELECT broken FROM nowhere")
        assert not bad_sql["ok"] and "ValueError" in bad_sql["error"]

    def test_serve_loop_quit_and_responses(self, engine):
        lines = [
            BASE_QUERY,
            json.dumps({"op": "stats", "id": 1}),
            json.dumps({"op": "quit", "id": 2}),
            BASE_QUERY,  # never reached
        ]
        out = io.StringIO()
        handled = serve_loop(engine, "stackoverflow", lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert handled == 3
        assert len(responses) == 3
        assert all(r["ok"] for r in responses)
        # Every request gets exactly one response: quit is acknowledged too.
        for volatile in ("trace_id", "duration_ms"):  # present under REPRO_TRACE=1
            responses[2].pop(volatile, None)
        assert responses[2] == {"ok": True, "quit": True, "id": 2}

    def test_read_queries_formats(self):
        assert read_queries("# comment\nSELECT a FROM t\n\nSELECT b FROM t\n") == \
            ["SELECT a FROM t", "SELECT b FROM t"]
        assert read_queries('["SELECT a FROM t"]') == ["SELECT a FROM t"]
        with pytest.raises(ValueError):
            read_queries('[{"not": "a string"}]')

    def test_run_batch_writes_json(self, engine):
        out = io.StringIO()
        payload = run_batch(engine, "stackoverflow", [BASE_QUERY, BASE_QUERY], out)
        assert len(payload) == 2
        assert json.loads(out.getvalue())[0]["k"] == 3
        assert engine.computations == 1
