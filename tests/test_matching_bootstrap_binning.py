"""Tests for the matching estimator, bootstrap intervals, and discretisation utilities."""

import numpy as np
import pytest

from repro.causal import CATEEstimator, bootstrap_cate, matching_ate
from repro.dataframe import (
    Pattern,
    Table,
    bin_edges,
    bin_label,
    discretize,
    discretize_column,
)


class TestMatching:
    def test_matching_recovers_effect_under_confounding(self, confounded_table):
        effect = matching_ate(confounded_table, Pattern.of(("T", "=", 1)), "Y",
                              adjustment=["Z"])
        assert effect.estimator == "matching"
        assert effect.value == pytest.approx(5.0, abs=0.6)

    def test_matching_agrees_with_regression(self, confounded_table, confounded_dag):
        regression = CATEEstimator(confounded_table, "Y", dag=confounded_dag).estimate(
            Pattern.of(("T", "=", 1)))
        matched = matching_ate(confounded_table, Pattern.of(("T", "=", 1)), "Y",
                               adjustment=["Z"])
        assert matched.value == pytest.approx(regression.value, abs=0.7)

    def test_matching_without_covariates_is_difference_in_means(self, confounded_table):
        effect = matching_ate(confounded_table, Pattern.of(("T", "=", 1)), "Y")
        y = confounded_table.column("Y").values
        t = confounded_table.column("T").values == 1
        assert effect.value == pytest.approx(float(y[t].mean() - y[~t].mean()), abs=1e-6)

    def test_matching_overlap_violation(self, confounded_table):
        effect = matching_ate(confounded_table, Pattern.of(("Y", ">", -1e12)), "Y")
        assert not effect.is_valid()

    def test_max_treated_cap(self, confounded_table):
        effect = matching_ate(confounded_table, Pattern.of(("T", "=", 1)), "Y",
                              adjustment=["Z"], max_treated=100, seed=1)
        assert effect.is_valid()
        assert effect.value == pytest.approx(5.0, abs=1.0)


class TestBootstrap:
    @pytest.fixture(scope="class")
    def small_confounded(self):
        rng = np.random.default_rng(3)
        n = 400
        z = rng.integers(0, 2, n)
        t = (rng.random(n) < 0.3 + 0.3 * z).astype(int)
        y = 5.0 * t + 2.0 * z + rng.normal(0, 1, n)
        return Table.from_columns({
            "Z": [int(v) for v in z], "T": [int(v) for v in t],
            "Y": [float(v) for v in y]})

    def test_interval_contains_truth(self, small_confounded, confounded_dag):
        estimator = CATEEstimator(small_confounded, "Y", dag=confounded_dag)
        interval = bootstrap_cate(estimator, Pattern.of(("T", "=", 1)),
                                  n_resamples=60, seed=0)
        assert interval.lower < 5.0 < interval.upper
        assert interval.excludes_zero()
        assert interval.contains(interval.point_estimate)

    def test_interval_width_positive(self, small_confounded, confounded_dag):
        estimator = CATEEstimator(small_confounded, "Y", dag=confounded_dag)
        interval = bootstrap_cate(estimator, Pattern.of(("T", "=", 1)),
                                  n_resamples=40, seed=1)
        assert interval.width > 0

    def test_invalid_parameters(self, small_confounded, confounded_dag):
        estimator = CATEEstimator(small_confounded, "Y", dag=confounded_dag)
        with pytest.raises(ValueError):
            bootstrap_cate(estimator, Pattern.of(("T", "=", 1)), n_resamples=3)
        with pytest.raises(ValueError):
            bootstrap_cate(estimator, Pattern.of(("T", "=", 1)), level=1.5)


class TestBinning:
    def test_quantile_edges_split_evenly(self):
        values = np.arange(100, dtype=float)
        edges = bin_edges(values, 4, "quantile")
        assert len(edges) == 3
        assert edges[1] == pytest.approx(49.5)

    def test_width_edges(self):
        values = np.array([0.0, 10.0])
        assert bin_edges(values, 2, "width") == [5.0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            bin_edges(np.array([1.0]), 1)
        with pytest.raises(ValueError):
            bin_edges(np.array([1.0]), 3, "kmeans")

    def test_bin_label_boundaries(self):
        edges = [10.0, 20.0]
        assert bin_label(5.0, edges) == "<= 10"
        assert bin_label(15.0, edges) == "(10, 20]"
        assert bin_label(25.0, edges) == "> 20"
        assert bin_label(None, edges) is None

    def test_discretize_column(self, so_bundle):
        column = discretize_column(so_bundle.table, "Salary", n_bins=3)
        assert not column.numeric
        assert column.name == "Salary_bin"
        assert 2 <= len(column.unique()) <= 3

    def test_discretize_column_requires_numeric(self, so_bundle):
        with pytest.raises(TypeError):
            discretize_column(so_bundle.table, "Country")

    def test_discretize_table_keep_and_drop(self, so_bundle):
        kept = discretize(so_bundle.table, ["Salary"], n_bins=3)
        assert "Salary" in kept and "Salary_bin" in kept
        dropped = discretize(so_bundle.table, ["Salary"], n_bins=3,
                             keep_original=False)
        assert "Salary" not in dropped and "Salary_bin" in dropped
        assert dropped.n_rows == so_bundle.table.n_rows

    def test_binned_attribute_usable_as_treatment(self, so_bundle, confounded_dag):
        """Binned continuous attributes can serve as equality treatments (Section 7)."""
        table = discretize(so_bundle.table, ["Salary"], n_bins=3)
        pattern = Pattern.of(("Salary_bin", "=", table.domain("Salary_bin")[0]))
        assert 0 < pattern.support(table) < table.n_rows
