"""Tests for the shared pattern-evaluation engine (mask cache + bound estimation)."""

import numpy as np
import pytest

from repro.causal import CATEEstimator
from repro.core import CauSumX, CauSumXConfig, render_summary
from repro.dataframe import MaskCache, Op, Pattern, Predicate, Table
from repro.mining.lattice import PatternLattice
from repro.mining.treatments import TreatmentMinerConfig, mine_top_treatment


@pytest.fixture
def cache(simple_table) -> MaskCache:
    return MaskCache(simple_table)


class TestMaskCache:
    def test_predicate_mask_matches_direct_evaluation(self, simple_table, cache):
        for predicate in (Predicate("Country", Op.EQ, "US"),
                          Predicate("Age", Op.GT, 28),
                          Predicate("Gender", Op.NE, "Male")):
            np.testing.assert_array_equal(cache.predicate_mask(predicate),
                                          predicate.evaluate(simple_table))

    def test_hit_miss_accounting(self, cache):
        predicate = Predicate("Country", Op.EQ, "US")
        assert cache.stats().requests == 0
        cache.predicate_mask(predicate)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (0, 1, 1)
        cache.predicate_mask(predicate)
        cache.predicate_mask(Predicate("Country", Op.EQ, "US"))  # same key, new object
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (2, 1, 1)
        assert stats.bytes > 0
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_repeated_lookup_returns_same_readonly_array(self, cache):
        predicate = Predicate("Continent", Op.EQ, "Asia")
        first = cache.predicate_mask(predicate)
        second = cache.predicate_mask(predicate)
        assert first is second
        with pytest.raises(ValueError):
            first[0] = False

    def test_pattern_mask_is_and_of_predicates(self, simple_table, cache):
        pattern = Pattern.of(("Continent", "==", "Asia"), ("Gender", "==", "Female"),
                             ("Age", "<=", 30))
        np.testing.assert_array_equal(cache.pattern_mask(pattern),
                                      pattern.evaluate(simple_table))
        # All three predicates were cached individually by the composition.
        assert cache.stats().entries == 3
        np.testing.assert_array_equal(cache.pattern_mask(pattern),
                                      pattern.evaluate(simple_table))
        assert cache.stats().hits >= 3

    def test_empty_pattern_matches_everything(self, simple_table, cache):
        assert cache.pattern_mask(Pattern()).all()
        assert cache.support(Pattern()) == simple_table.n_rows

    def test_support_and_indices(self, simple_table, cache):
        pattern = Pattern.of(("Continent", "==", "Asia"))
        assert cache.support(pattern) == pattern.support(simple_table)
        np.testing.assert_array_equal(cache.indices(pattern),
                                      np.nonzero(pattern.evaluate(simple_table))[0])

    def test_clear_resets_everything(self, cache):
        cache.predicate_mask(Predicate("Country", Op.EQ, "US"))
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries, stats.bytes) == (0, 0, 0, 0)

    def test_random_patterns_against_direct_evaluation(self, so_bundle):
        rng = np.random.default_rng(11)
        table = so_bundle.table
        cache = MaskCache(table)
        attrs = ["Country", "Gender", "Education", "Student", "Role"]
        for _ in range(25):
            chosen = rng.choice(attrs, size=rng.integers(1, 4), replace=False)
            assignment = {a: table.domain(a)[rng.integers(len(table.domain(a)))]
                          for a in chosen}
            pattern = Pattern.equalities(assignment)
            np.testing.assert_array_equal(cache.pattern_mask(pattern),
                                          pattern.evaluate(table))


class TestLatticePruning:
    def test_zero_and_low_support_atoms_pruned(self):
        table = Table.from_columns({
            "t": ["a"] * 30 + ["b"] * 30 + ["rare"],
            "y": [float(i) for i in range(61)],
        })
        unpruned = PatternLattice(table, ["t"]).atomic_predicates()
        pruned = PatternLattice(table, ["t"], mask_cache=MaskCache(table),
                                min_support=10).atomic_predicates()
        assert {p.value for p in unpruned} == {"a", "b", "rare"}
        assert {p.value for p in pruned} == {"a", "b"}


def _assert_same_estimate(left, right):
    for field in ("value", "std_error", "p_value"):
        l, r = getattr(left, field), getattr(right, field)
        assert (l == r) or (np.isnan(l) and np.isnan(r)), (field, left, right)
    assert left.n_treated == right.n_treated
    assert left.n_control == right.n_control


class TestBoundEstimation:
    def test_cached_estimates_equal_uncached(self, so_bundle):
        treatments = [Pattern.equalities({"Gender": "Male"}),
                      Pattern.equalities({"Education": "PhD"}),
                      Pattern.equalities({"Student": "Yes", "Gender": "Male"})]
        subpops = [None, Pattern.equalities({"Continent": "Europe"}),
                   Pattern.equalities({"GDP": "High"})]
        for sample_size in (None, 300):
            cached = CATEEstimator(so_bundle.table, "Salary", dag=so_bundle.dag,
                                   sample_size=sample_size, use_cache=True)
            plain = CATEEstimator(so_bundle.table, "Salary", dag=so_bundle.dag,
                                  sample_size=sample_size, use_cache=False)
            for subpop in subpops:
                for a, b in zip(cached.estimate_many(treatments, subpop),
                                plain.estimate_many(treatments, subpop)):
                    _assert_same_estimate(a, b)

    def test_missing_outcome_rows_handled_identically(self):
        rng = np.random.default_rng(3)
        n = 200
        table = Table.from_columns({
            "g": [str(v) for v in rng.integers(0, 2, n)],
            "t": [str(v) for v in rng.integers(0, 3, n)],
            "y": [float(v) if v > 0.2 else None for v in rng.random(n)],
        })
        treatment = Pattern.of(("t", "==", "1"))
        subpop = Pattern.of(("g", "==", "0"))
        cached = CATEEstimator(table, "y", min_group_size=2, use_cache=True)
        plain = CATEEstimator(table, "y", min_group_size=2, use_cache=False)
        _assert_same_estimate(cached.estimate(treatment, subpop),
                              plain.estimate(treatment, subpop))

    def test_bind_is_memoized(self, so_bundle):
        estimator = CATEEstimator(so_bundle.table, "Salary", use_cache=True)
        subpop = Pattern.equalities({"Continent": "Asia"})
        assert estimator.bind(subpop) is estimator.bind(subpop)
        assert estimator.bind(None) is estimator.bind(Pattern())

    def test_bound_cache_is_lru(self, so_bundle):
        estimator = CATEEstimator(so_bundle.table, "Salary", use_cache=True,
                                  bound_cache_size=2)
        first = estimator.bind(Pattern.equalities({"Continent": "Asia"}))
        estimator.bind(Pattern.equalities({"Continent": "Europe"}))
        estimator.bind(Pattern.equalities({"GDP": "High"}))  # evicts the oldest
        assert estimator.bind(Pattern.equalities({"Continent": "Asia"})) is not first

    def test_mine_top_treatment_same_result_with_and_without_cache(self, so_bundle):
        config = TreatmentMinerConfig(max_levels=2, min_group_size=10,
                                      max_values_per_attribute=8)
        grouping = Pattern.equalities({"Continent": "Europe"})
        results = {}
        for use_cache in (False, True):
            estimator = CATEEstimator(so_bundle.table, "Salary", dag=so_bundle.dag,
                                      use_cache=use_cache)
            results[use_cache] = mine_top_treatment(
                estimator, grouping, ["Gender", "Education", "Student"],
                "+", so_bundle.dag, config)
        assert (results[True] is None) == (results[False] is None)
        if results[True] is not None:
            assert results[True].pattern == results[False].pattern
            _assert_same_estimate(results[True].estimate, results[False].estimate)


class TestExplainInvariance:
    @pytest.fixture(scope="class")
    def small_bundle(self):
        from repro.datasets import make_stackoverflow

        return make_stackoverflow(n=500, seed=5)

    @pytest.fixture(scope="class")
    def invariance_config(self) -> CauSumXConfig:
        return CauSumXConfig(
            k=3, theta=0.75, apriori_threshold=0.1, sample_size=None,
            min_group_size=10,
            treatment=TreatmentMinerConfig(max_levels=2, min_group_size=10,
                                           significance_level=0.05,
                                           max_values_per_attribute=6),
        )

    def _explain(self, bundle, config):
        return CauSumX(bundle.table, bundle.dag, config).explain(
            bundle.query,
            grouping_attributes=bundle.grouping_attributes,
            treatment_attributes=["Gender", "Education", "Student", "Role"])

    @staticmethod
    def _signature(summary):
        return [(repr(p.grouping_pattern),
                 repr(p.positive.pattern) if p.positive else None,
                 p.positive.cate if p.positive else None,
                 repr(p.negative.pattern) if p.negative else None,
                 p.negative.cate if p.negative else None)
                for p in summary]

    def test_summary_invariant_under_cache_and_parallelism(self, small_bundle,
                                                           invariance_config):
        reference = self._explain(small_bundle,
                                  invariance_config.with_overrides(use_mask_cache=False))
        for overrides in ({"use_mask_cache": True, "n_jobs": 1},
                          {"use_mask_cache": True, "n_jobs": 2},
                          {"use_mask_cache": False, "n_jobs": 2}):
            summary = self._explain(small_bundle,
                                    invariance_config.with_overrides(**overrides))
            assert self._signature(summary) == self._signature(reference), overrides
            assert render_summary(summary) == render_summary(reference), overrides

    def test_n_jobs_minus_one_uses_all_cpus(self, small_bundle, invariance_config):
        summary = self._explain(
            small_bundle, invariance_config.with_overrides(n_jobs=-1))
        reference = self._explain(small_bundle, invariance_config)
        assert self._signature(summary) == self._signature(reference)

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ValueError):
            CauSumXConfig(n_jobs=0)
        with pytest.raises(ValueError):
            CauSumXConfig(n_jobs=-2)
