"""Tests for the top-k treatment API (Section 4.2 UI feature) and WHERE-clause queries."""

import pytest

from repro.causal import CATEEstimator
from repro.core import CauSumX
from repro.dataframe import Pattern
from repro.mining import TreatmentMinerConfig, mine_top_k_treatments, mine_top_treatment
from repro.sql import AggregateView, GroupByAvgQuery


@pytest.fixture(scope="module")
def estimator(synthetic_bundle):
    return CATEEstimator(synthetic_bundle.table, "O", dag=synthetic_bundle.dag,
                         min_group_size=5)


@pytest.fixture(scope="module")
def miner_config():
    return TreatmentMinerConfig(max_levels=2, min_group_size=5,
                                significance_level=1.0, keep_fraction=0.6)


class TestTopK:
    def test_returns_at_most_k(self, estimator, synthetic_bundle, miner_config):
        top = mine_top_k_treatments(estimator, Pattern(),
                                    synthetic_bundle.treatment_attributes, k=3,
                                    direction="+", dag=synthetic_bundle.dag,
                                    config=miner_config)
        assert 1 <= len(top) <= 3

    def test_sorted_descending_by_cate(self, estimator, synthetic_bundle, miner_config):
        top = mine_top_k_treatments(estimator, Pattern(),
                                    synthetic_bundle.treatment_attributes, k=5,
                                    direction="+", dag=synthetic_bundle.dag,
                                    config=miner_config)
        cates = [c.cate for c in top]
        assert cates == sorted(cates, reverse=True)
        assert all(c > 0 for c in cates)

    def test_negative_direction_sorted_ascending(self, estimator, synthetic_bundle,
                                                 miner_config):
        top = mine_top_k_treatments(estimator, Pattern(),
                                    synthetic_bundle.treatment_attributes, k=5,
                                    direction="-", dag=synthetic_bundle.dag,
                                    config=miner_config)
        cates = [c.cate for c in top]
        assert cates == sorted(cates)
        assert all(c < 0 for c in cates)

    def test_top_1_matches_algorithm2(self, estimator, synthetic_bundle, miner_config):
        top = mine_top_k_treatments(estimator, Pattern(),
                                    synthetic_bundle.treatment_attributes, k=1,
                                    direction="+", dag=synthetic_bundle.dag,
                                    config=miner_config)
        single = mine_top_treatment(estimator, Pattern(),
                                    synthetic_bundle.treatment_attributes, "+",
                                    synthetic_bundle.dag, miner_config)
        assert top[0].cate == pytest.approx(single.cate)

    def test_invalid_arguments(self, estimator, synthetic_bundle, miner_config):
        with pytest.raises(ValueError):
            mine_top_k_treatments(estimator, Pattern(),
                                  synthetic_bundle.treatment_attributes, k=0)
        with pytest.raises(ValueError):
            mine_top_k_treatments(estimator, Pattern(),
                                  synthetic_bundle.treatment_attributes, k=2,
                                  direction="*")


class TestWhereClause:
    def test_view_respects_where(self, so_bundle):
        query = GroupByAvgQuery(group_by="Country", average="Salary",
                                where=Pattern.of(("Continent", "=", "Europe")))
        view = AggregateView(so_bundle.table, query)
        assert 0 < view.m < AggregateView(so_bundle.table, so_bundle.query).m

    def test_causumx_explains_filtered_view(self, so_bundle, fast_config):
        query = GroupByAvgQuery(group_by="Country", average="Salary",
                                where=Pattern.of(("Continent", "=", "Europe")))
        config = fast_config.with_overrides(k=2, theta=0.5)
        summary = CauSumX(so_bundle.table, so_bundle.dag, config).explain(
            query, grouping_attributes=so_bundle.grouping_attributes,
            treatment_attributes=["Role", "Student", "AgeBand", "Education"])
        view = AggregateView(so_bundle.table, query)
        assert set(summary.all_groups) == set(view.group_keys())
        assert len(summary) >= 1
