"""Unit tests for the dataset generators and registry."""

import numpy as np
import pytest

from repro.dataframe import fd_holds
from repro.datasets import list_datasets, load_dataset
from repro.sql import AggregateView

ALL_DATASETS = ["synthetic", "stackoverflow", "adult", "german", "accidents", "cps"]
SMALL = {"synthetic": {"n": 200}, "stackoverflow": {"n": 300}, "adult": {"n": 300},
         "german": {"n": 300}, "accidents": {"n": 300}, "cps": {"n": 300}}


class TestRegistry:
    def test_all_generators_registered(self):
        assert set(list_datasets()) == set(ALL_DATASETS)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")


@pytest.mark.parametrize("name", ALL_DATASETS)
class TestEveryDataset:
    def test_shape_and_query_validity(self, name):
        bundle = load_dataset(name, **SMALL[name])
        assert bundle.table.n_rows == SMALL[name]["n"]
        bundle.query.validate(bundle.table)
        view = AggregateView(bundle.table, bundle.query)
        assert view.m >= 2

    def test_dag_covers_outcome(self, name):
        bundle = load_dataset(name, **SMALL[name])
        assert bundle.query.average in bundle.dag
        assert bundle.dag.parents(bundle.query.average)

    def test_grouping_attributes_have_fds(self, name):
        bundle = load_dataset(name, **SMALL[name])
        for attr in bundle.grouping_attributes or []:
            assert fd_holds(bundle.table, list(bundle.query.group_by), attr), \
                f"{attr} is not functionally determined by the group-by attributes"

    def test_treatment_attributes_exist(self, name):
        bundle = load_dataset(name, **SMALL[name])
        for attr in bundle.treatment_attributes or []:
            assert attr in bundle.table

    def test_deterministic_with_seed(self, name):
        a = load_dataset(name, seed=5, **SMALL[name])
        b = load_dataset(name, seed=5, **SMALL[name])
        assert a.table == b.table

    def test_different_seeds_differ(self, name):
        a = load_dataset(name, seed=1, **SMALL[name])
        b = load_dataset(name, seed=2, **SMALL[name])
        assert a.table != b.table

    def test_describe_reports_table3_columns(self, name):
        stats = load_dataset(name, **SMALL[name]).describe()
        assert {"name", "tuples", "attributes", "max_values_per_attribute"} <= set(stats)


class TestSyntheticGroundTruth:
    def test_outcome_is_alternating_sum(self):
        bundle = load_dataset("synthetic", n=50, n_treatment=3, seed=0)
        t1 = np.array(list(bundle.table.column("T1").values), dtype=float)
        t2 = np.array(list(bundle.table.column("T2").values), dtype=float)
        t3 = np.array(list(bundle.table.column("T3").values), dtype=float)
        expected = t1 - t2 + t3
        assert np.allclose(bundle.table.column("O").values, expected)

    def test_grouping_attributes_bucket_g(self):
        bundle = load_dataset("synthetic", n=100, n_grouping=2, seed=0)
        assert fd_holds(bundle.table, ["G"], "G1")
        assert fd_holds(bundle.table, ["G"], "G2")
        assert len(bundle.table.domain("G1")) == 2
        assert len(bundle.table.domain("G2")) == 3

    def test_noise_parameter(self):
        noiseless = load_dataset("synthetic", n=100, noise=0.0, seed=0)
        noisy = load_dataset("synthetic", n=100, noise=1.0, seed=0)
        assert not np.allclose(noiseless.table.column("O").values,
                               noisy.table.column("O").values)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("synthetic", n=1)
        with pytest.raises(ValueError):
            load_dataset("synthetic", n_grouping=0)


class TestStackOverflowSemantics:
    def test_economic_attributes_follow_country(self, so_bundle):
        assert fd_holds(so_bundle.table, ["Country"], "Continent")
        assert fd_holds(so_bundle.table, ["Country"], "GDP")

    def test_high_gdp_countries_earn_more(self, so_bundle):
        table = so_bundle.table
        from repro.dataframe import Pattern

        high = table.select(Pattern.of(("GDP", "=", "High"))).avg("Salary")
        low = table.select(Pattern.of(("GDP", "=", "Low"))).avg("Salary")
        assert high > low

    def test_students_earn_less(self, so_bundle):
        from repro.dataframe import Pattern

        students = so_bundle.table.select(Pattern.of(("Student", "=", "Yes")))
        others = so_bundle.table.select(Pattern.of(("Student", "=", "No")))
        assert students.avg("Salary") < others.avg("Salary")

    def test_executives_earn_more_than_qa(self, so_bundle):
        from repro.dataframe import Pattern

        execs = so_bundle.table.select(Pattern.of(("Role", "=", "C-suite executive")))
        qa = so_bundle.table.select(Pattern.of(("Role", "=", "QA developer")))
        assert execs.avg("Salary") > qa.avg("Salary")


class TestAccidentsSemantics:
    @pytest.fixture(scope="class")
    def accidents(self):
        return load_dataset("accidents", n=2000, seed=0)

    def test_city_determines_region(self, accidents):
        assert fd_holds(accidents.table, ["City"], "Region")

    def test_snow_raises_severity(self, accidents):
        from repro.dataframe import Pattern

        snow = accidents.table.select(Pattern.of(("Weather", "=", "Snow")))
        clear = accidents.table.select(Pattern.of(("Weather", "=", "Clear")))
        assert snow.avg("Severity") > clear.avg("Severity")

    def test_traffic_signals_reduce_severity(self, accidents):
        from repro.dataframe import Pattern

        signal = accidents.table.select(Pattern.of(("TrafficSignal", "=", "Yes")))
        none = accidents.table.select(Pattern.of(("TrafficSignal", "=", "No")))
        assert signal.avg("Severity") < none.avg("Severity")

    def test_snow_more_common_in_midwest_than_south(self, accidents):
        from repro.dataframe import Pattern

        midwest = accidents.table.select(Pattern.of(("Region", "=", "Midwest")))
        south = accidents.table.select(Pattern.of(("Region", "=", "South")))
        midwest_snow = midwest.value_counts("Weather").get("Snow", 0) / midwest.n_rows
        south_snow = south.value_counts("Weather").get("Snow", 0) / max(south.n_rows, 1)
        assert midwest_snow > south_snow
