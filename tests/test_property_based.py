"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dataframe import Column, Op, Pattern, Predicate, Table, fd_holds
from repro.graph import CausalDAG, d_separated
from repro.optimize import CoverageILP, greedy_selection, randomized_rounding, solve_exact


# --------------------------------------------------------------------------- strategies

values = st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b", "c"]))
categorical_lists = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=40)
numeric_lists = st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=40)


@st.composite
def small_tables(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    g = draw(st.lists(st.sampled_from(["x", "y", "z"]), min_size=n, max_size=n))
    w = [v.upper() for v in g]  # functionally determined by g
    t = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    y = draw(st.lists(st.floats(-10, 10, allow_nan=False), min_size=n, max_size=n))
    return Table([
        Column("g", g, numeric=False),
        Column("w", w, numeric=False),
        Column("t", [int(v) for v in t], numeric=False),
        Column("y", [float(v) for v in y], numeric=True),
    ])


@st.composite
def coverage_problems(draw):
    m = draw(st.integers(min_value=1, max_value=6))
    groups = [f"g{i}" for i in range(m)]
    l = draw(st.integers(min_value=1, max_value=6))
    coverage = [frozenset(draw(st.lists(st.sampled_from(groups), max_size=m)))
                for _ in range(l)]
    weights = draw(st.lists(st.floats(0, 100, allow_nan=False), min_size=l, max_size=l))
    k = draw(st.integers(min_value=1, max_value=l))
    theta = draw(st.floats(0.0, 1.0))
    return CoverageILP(weights, coverage, groups, k=k, theta=theta)


# --------------------------------------------------------------------------- dataframe

@given(data=categorical_lists)
def test_column_unique_is_sorted_and_deduplicated(data):
    unique = Column("x", data).unique()
    assert unique == sorted(set(data))


@given(data=numeric_lists)
def test_column_value_counts_sum_to_length(data):
    counts = Column("x", data).value_counts()
    assert sum(counts.values()) == len(data)


@given(table=small_tables(), value=st.integers(0, 3))
@settings(max_examples=50)
def test_select_returns_only_matching_rows(table, value):
    pattern = Pattern.of(("t", "=", value))
    selected = table.select(pattern)
    assert selected.n_rows == pattern.support(table)
    if selected.n_rows:
        assert all(v == value for v in selected.column("t").values)


@given(table=small_tables())
@settings(max_examples=50)
def test_pattern_conjunction_is_intersection(table):
    p1 = Predicate("g", Op.EQ, "x")
    p2 = Predicate("t", Op.GE, 2)
    conjunction = Pattern([p1, p2]).evaluate(table)
    assert (conjunction == (p1.evaluate(table) & p2.evaluate(table))).all()


@given(table=small_tables())
@settings(max_examples=50)
def test_empty_pattern_support_is_table_size(table):
    assert Pattern().support(table) == table.n_rows


@given(table=small_tables())
@settings(max_examples=50)
def test_constructed_fd_always_detected(table):
    assert fd_holds(table, ["g"], "w")


@given(table=small_tables())
@settings(max_examples=30)
def test_groupby_avg_partitions_all_rows(table):
    results = table.groupby_avg(["g"], "y")
    assert sum(count for _, _, count in results) == table.n_rows


@given(table=small_tables())
@settings(max_examples=30)
def test_groupby_avg_matches_manual_average(table):
    for key, avg, _ in table.groupby_avg(["g"], "y"):
        manual = table.select(Pattern.of(("g", "=", key[0]))).avg("y")
        assert np.isclose(avg, manual)


@given(table=small_tables(), seed=st.integers(0, 100))
@settings(max_examples=30)
def test_sample_never_exceeds_requested_size(table, seed):
    sampled = table.sample(5, seed=seed)
    assert sampled.n_rows <= max(5, table.n_rows if table.n_rows <= 5 else 5)
    assert sampled.attributes == table.attributes


# --------------------------------------------------------------------------- graphs

@given(edges=st.lists(st.tuples(st.sampled_from("ABCDE"), st.sampled_from("ABCDE")),
                      max_size=10))
@settings(max_examples=100)
def test_dag_construction_never_creates_cycles(edges):
    dag = CausalDAG("ABCDE")
    for parent, child in edges:
        if parent == child:
            continue
        try:
            dag.add_edge(parent, child)
        except ValueError:
            continue
    order = {node: i for i, node in enumerate(dag.topological_order())}
    assert all(order[p] < order[c] for p, c in dag.edges)


@given(edges=st.lists(st.tuples(st.sampled_from("ABCD"), st.sampled_from("ABCD")),
                      max_size=8))
@settings(max_examples=60)
def test_dsep_is_symmetric(edges):
    dag = CausalDAG("ABCD")
    for parent, child in edges:
        if parent == child:
            continue
        try:
            dag.add_edge(parent, child)
        except ValueError:
            continue
    assert d_separated(dag, "A", "B", ["C"]) == d_separated(dag, "B", "A", ["C"])


# --------------------------------------------------------------------------- optimisation

@given(problem=coverage_problems())
@settings(max_examples=60, deadline=None)
def test_exact_solution_respects_all_constraints(problem):
    selection = solve_exact(problem)
    if selection is not None:
        assert selection.size <= problem.k
        assert len(selection.covered_groups) >= problem.required_groups
        assert selection.feasible


@given(problem=coverage_problems())
@settings(max_examples=60, deadline=None)
def test_exact_dominates_greedy_objective(problem):
    exact = solve_exact(problem)
    greedy = greedy_selection(problem)
    if exact is not None and greedy.feasible:
        assert exact.objective >= greedy.objective - 1e-9


@given(problem=coverage_problems(), seed=st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_rounding_never_exceeds_k(problem, seed):
    selection = randomized_rounding(problem, seed=seed)
    if selection is not None:
        assert selection.size <= problem.k


@given(problem=coverage_problems())
@settings(max_examples=40, deadline=None)
def test_exact_none_implies_rounding_infeasible_or_none(problem):
    """If no exact feasible solution exists the rounding result is never feasible."""
    if solve_exact(problem) is None:
        rounded = randomized_rounding(problem, seed=0)
        assert rounded is None or not rounded.feasible
